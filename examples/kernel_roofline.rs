//! Roofline probe for the fig4 value kernels: wall time next to the
//! traffic and arithmetic it implies, per SIMD tier, fused vs unfused.
//!
//! For the Figure 4 setting (algebraic z = 3 load tabulated to 2^18
//! entries, adaptive-exponential utility, 48-point capacity grid) the
//! fast B-pass walks every admission level for every lane — ~12.6M
//! lane-evaluations per sweep, each reading one 8-byte pmf entry and
//! spending ~33 flops (range reduction + 12-coefficient polynomial +
//! Neumaier update). That is ~4 flop/byte: comfortably compute-bound on
//! any machine whose caches hold a 2 MiB table, which is why widening
//! the datapath (AVX2 → AVX-512) and shortening the polynomial pay off
//! while cutting table traffic does not. See EXPERIMENTS.md § "Roofline
//! and energy".
//!
//! Energy is read from the optional RAPL probe when `/sys/class/powercap`
//! is present and readable; otherwise the column prints `n/a`.
//!
//! ```text
//! cargo run --release --example kernel_roofline
//! ```

use bevra::analysis::{sweep_grid, sweep_grid_fused, DiscreteModel, PiEval};
use bevra::load::{Algebraic, Tabulated, PAPER_MEAN_LOAD};
use bevra::num::simd;
use bevra::obs::energy::EnergyProbe;
use bevra::utility::AdaptiveExp;
use std::sync::Arc;
use std::time::Instant;

/// Estimated flops per lane-evaluation of the fast π kernel: ~6 for the
/// range reduction, ~14 for the degree-12 polynomial (Estrin), ~4 for
/// the reconstruction and weight, ~9 for the Neumaier update.
const FLOPS_PER_LANE_EVAL: f64 = 33.0;

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (PAPER_MEAN_LOAD / 20.0, 10.0 * PAPER_MEAN_LOAD);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

fn main() {
    let alg = Algebraic::from_mean(3.0, PAPER_MEAN_LOAD).expect("fig4 family");
    let load = Arc::new(Tabulated::from_model(&alg, 1e-9, 1 << 18));
    let model = DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper());
    let cs = grid(48);

    // The algebraic z = 3 tail decays too slowly for the early-exit bound
    // to fire, so every lane walks the whole table: the eval count is the
    // full rectangle, not an estimate.
    let lane_evals = (load.len() as u64 - 1) * cs.len() as u64;
    let bytes = lane_evals as f64 * 8.0; // one pmf read per lane-eval
    let flops = lane_evals as f64 * FLOPS_PER_LANE_EVAL;
    println!(
        "fig4 sweep: {} lanes x {} levels = {:.2}M lane-evals, {:.0} MiB pmf traffic, {:.2} GF, {:.1} flop/byte",
        cs.len(),
        load.len() - 1,
        lane_evals as f64 / 1e6,
        bytes / (1024.0 * 1024.0),
        flops / 1e9,
        flops / bytes,
    );
    let probe = EnergyProbe::open();
    match &probe {
        Some(p) => println!("energy: RAPL probe open ({} package domain(s))", p.domain_count()),
        None => println!("energy: no readable RAPL hierarchy (column prints n/a)"),
    }
    println!();
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "configuration", "ms/sweep", "ns/point", "ns/lane-eval", "GF/s", "J/sweep"
    );

    let detected = simd::detected();
    let restore = simd::level();
    let tiers: Vec<simd::Level> = [simd::Level::Scalar, simd::Level::Avx2, simd::Level::Avx512]
        .into_iter()
        .filter(|t| t.runnable_at(detected))
        .collect();

    let row = |name: &str, f: &dyn Fn() -> f64| {
        // Warm once, then time three sweeps and keep the fastest.
        let _ = f();
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let sink = f();
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(sink);
        }
        let joules = probe.as_ref().and_then(|p| {
            let r = p.begin()?;
            let _ = std::hint::black_box(f());
            r.joules()
        });
        let ns = best * 1e9;
        println!(
            "{:<26} {:>10.2} {:>12.0} {:>14.2} {:>10.2} {:>10}",
            name,
            best * 1e3,
            ns / cs.len() as f64,
            ns / lane_evals as f64,
            flops / ns,
            joules.map_or_else(|| "n/a".to_string(), |j| format!("{j:.3}")),
        );
    };

    for &tier in &tiers {
        simd::force_level(tier);
        let label = format!("unfused-fast @ {}", tier.as_str());
        row(&label, &|| sweep_grid(&model, &cs, PiEval::Fast).best_effort[47]);
    }
    for &tier in &tiers {
        simd::force_level(tier);
        let label = format!("fused-fast   @ {}", tier.as_str());
        row(&label, &|| sweep_grid_fused(&model, &cs, PiEval::Fast).best_effort[47]);
    }
    simd::force_level(restore);

    println!();
    println!(
        "note: identical B[47] bits across tiers is the dispatch contract; run with\n\
         BEVRA_SIMD=scalar|avx2|avx512 to pin the whole process to one tier."
    );
}
