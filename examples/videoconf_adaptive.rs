//! Videoconference scenario: an adaptive application under fluctuating
//! load, with quality judged by its *worst* episode (§5.1 sampling) and
//! with blocked calls that retry (§5.2).
//!
//! ```sh
//! cargo run --release --example videoconf_adaptive
//! ```

use bevra::analysis::retrying::GeometricFamily;
use bevra::prelude::*;
use std::sync::Arc;

fn main() {
    let kbar = PAPER_MEAN_LOAD;
    let load = Arc::new(Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 20));
    let capacity = 1.5 * kbar;

    println!("Adaptive videoconferencing on a C = {capacity} link, exponential load (k̄ = {kbar})\n");

    // How picky is the audience? S = 1 is the paper's basic model (quality =
    // a single snapshot); larger S means quality is the worst of S load
    // episodes during the call.
    println!("{:<26} {:>10} {:>10} {:>8} {:>10}", "audience sensitivity", "B_S(C)", "R_S(C)", "δ_S", "Δ_S");
    for (desc, s) in [("forgiving (S=1)", 1u32), ("average (S=5)", 5), ("critical (S=10)", 10)] {
        let sm = SamplingModel::new(
            DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()),
            s,
        );
        println!(
            "{:<26} {:>10.4} {:>10.4} {:>8.4} {:>10.2}",
            desc,
            sm.best_effort(capacity),
            sm.reservation(capacity),
            sm.performance_gap(capacity),
            sm.bandwidth_gap(capacity).unwrap_or(f64::NAN)
        );
    }

    println!(
        "\nThe more the audience cares about worst-case quality, the more a\n\
         reservation architecture is worth: admission control caps the worst\n\
         load an admitted call can ever see.\n"
    );

    // Busy-hour blocking with redial: §5.2. The exponential load is so
    // variable that even C = 2·k̄ sees Erlang-scale blocking; much below
    // that the retry storm feeds itself and the fixed point (rightly)
    // diverges.
    println!("Redial behaviour at a busy hour (C = 2·k̄):");
    let congested = 2.0 * kbar;
    for alpha in [0.0, 0.1, 0.3] {
        let rm = RetryModel::new(
            GeometricFamily::new(1e-12, 1 << 20),
            AdaptiveExp::paper(),
            kbar,
            alpha,
        );
        let out = rm.evaluate(congested).expect("fixed point converges");
        println!(
            "  redial annoyance α = {alpha:<4}: blocking {:>6.3}, avg retries {:>5.2}, \
             effective load {:>6.1}, per-call utility {:>6.4}",
            out.blocking, out.retries, out.effective_mean, out.reservation
        );
    }
    println!(
        "\nRedialing inflates the offered load (the retry storm feeds itself)\n\
         and each redial costs the caller α in satisfaction — the residual\n\
         disutility of a reservation network that looks 'fully utilized'."
    );
}
