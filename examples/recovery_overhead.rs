//! Measure what the resilience runtime costs when nothing goes wrong —
//! and what recovery costs when something does.
//!
//! Runs the committed-pin ~1M-flow fleet (the `tests/determinism.rs`
//! configuration) four ways and reports wall time:
//!
//! 1. **baseline** — no checkpointing, no faults;
//! 2. **checkpointed** — `FleetCheckpoint` attached (store cost on the
//!    fault-free path);
//! 3. **transient rescue** — one injected lane panic, rescued by the
//!    recovery supervisor to the identical digest (restart cost);
//! 4. **resume** — a run killed at the checkpoint barrier, then resumed
//!    from disk (restore cost vs. recompute).
//!
//! ```text
//! cargo run --release --example recovery_overhead
//! ```
//!
//! Every variant must land on the same merged digest — the example
//! asserts it, so the timings can't quietly compare different work.

use bevra::prelude::*;
use bevra::sim::{ckpt::FleetCheckpoint, Fleet, FleetConfig, QueueKind, SimReport};
use bevra_engine::CacheMode;
use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
use std::sync::Arc;
use std::time::Instant;

fn fleet_config() -> FleetConfig {
    FleetConfig {
        base: SimConfig {
            capacity: 3000.0,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::new(2500.0, RateMixing::Fixed, 5000.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 5.0,
            horizon: 100.0,
            seed: 0xF1EE7,
            max_events: None,
        },
        lanes: 4,
    }
}

fn timed(label: &str, run: impl FnOnce() -> SimReport) -> (f64, SimReport) {
    let start = Instant::now();
    let merged = run();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{label:<28} {secs:>7.3} s   {:>9.0} events/s   digest {:016x}",
        merged.events as f64 / secs,
        merged.digest()
    );
    (secs, merged)
}

fn main() {
    bevra_check::chaos::silence_injected_panics();
    let dir = std::env::temp_dir().join(format!("bevra-recovery-ovh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("~1M-flow fleet (4 lanes, 4 shards, wheel queue), release build:\n");

    let (base_s, baseline) =
        timed("baseline", || Fleet::new(fleet_config()).run_on(4, QueueKind::Wheel).merged);

    let (ckpt_s, ckpt) = timed("checkpointed (fault-free)", || {
        Fleet::new(fleet_config())
            .with_checkpoint(FleetCheckpoint::new(&dir, CacheMode::ReadWrite))
            .run_on(4, QueueKind::Wheel)
            .merged
    });

    let (rescue_s, rescued) = timed("transient lane panic", || {
        let _guard = install(
            FaultPlan::seeded(0)
                .rule(FaultRule::at_key(FaultKind::Panic, "sim/lane", 2).with_n(1)),
        );
        let report = Fleet::new(fleet_config()).run_on(4, QueueKind::Wheel);
        assert!(report.health.restarts >= 1, "the injected panic was never rescued");
        report.merged
    });

    // Kill at the checkpoint barrier (all four lanes already stored),
    // then time only the resumed run.
    {
        let _guard = install(
            FaultPlan::seeded(0).rule(FaultRule::at_key(FaultKind::Panic, "sim/fleet-ckpt", 0)),
        );
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fleet::new(fleet_config())
                .with_checkpoint(FleetCheckpoint::new(&dir, CacheMode::ReadWrite))
                .run_on(4, QueueKind::Wheel)
        }));
        assert!(killed.is_err(), "the fleet-ckpt kill site must fire");
    }
    let (resume_s, resumed) = timed("resume from checkpoint", || {
        Fleet::new(fleet_config())
            .with_checkpoint(FleetCheckpoint::new(&dir, CacheMode::ReadWrite))
            .run_on(4, QueueKind::Wheel)
            .merged
    });

    for (label, r) in
        [("checkpointed", &ckpt), ("rescued", &rescued), ("resumed", &resumed)]
    {
        assert_eq!(
            r.digest(),
            baseline.digest(),
            "{label} run drifted from the baseline digest"
        );
    }
    println!(
        "\ncheckpoint overhead {:+.1}%   rescue overhead {:+.1}%   resume {:.1}x faster than recompute",
        (ckpt_s / base_s - 1.0) * 100.0,
        (rescue_s / base_s - 1.0) * 100.0,
        base_s / resume_s,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
