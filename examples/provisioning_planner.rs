//! Provisioning planner: the paper's §4 welfare model as an operator tool.
//!
//! Given a forecast load distribution, an application mix, and a bandwidth
//! price, decide (a) how much capacity to buy under each architecture and
//! (b) how large a complexity premium a reservation-capable network is
//! worth — the equalizing price ratio γ(p).
//!
//! ```sh
//! cargo run --release --example provisioning_planner [price]
//! ```

use bevra::analysis::SampledValue;
use bevra::prelude::*;
use std::sync::Arc;

fn plan(name: &str, load: &Arc<Tabulated>, utility: impl Utility + Clone, price: f64) {
    let kbar = load.mean();
    let model = DiscreteModel::new(Arc::clone(load), utility);
    let sv_b = SampledValue::build(|c| model.total_best_effort(c), kbar, 300.0 * kbar, 600);
    let sv_r = SampledValue::build(|c| model.total_reservation(c), kbar, 300.0 * kbar, 600);
    let wb = sv_b.welfare(price);
    let wr = sv_r.welfare(price);
    let gamma = equalizing_price_ratio(|ph| sv_r.welfare(ph).welfare, wb.welfare, price)
        .unwrap_or(f64::NAN);
    println!("  {name}:");
    println!(
        "    best-effort : provision C = {:>8.1}  → welfare {:>9.2}",
        wb.capacity, wb.welfare
    );
    println!(
        "    reservation : provision C = {:>8.1}  → welfare {:>9.2}",
        wr.capacity, wr.welfare
    );
    println!(
        "    verdict     : reservations worth up to a {:.1}% bandwidth-cost premium (γ = {:.4})",
        (gamma - 1.0) * 100.0,
        gamma
    );
}

fn main() {
    let price: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let kbar = PAPER_MEAN_LOAD;
    println!("Provisioning plan at bandwidth price p = {price} (mean load {kbar})\n");

    let poisson = Arc::new(Tabulated::from_model(&Poisson::new(kbar), 1e-12, 1 << 20));
    let geo = Arc::new(Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 20));
    let alg = Arc::new(Tabulated::from_model(
        &Algebraic::from_mean(3.0, kbar).expect("calibrates"),
        1e-9,
        1 << 20,
    ));

    println!("== Telephony-like rigid applications ==");
    plan("poisson load     ", &poisson, Rigid::unit(), price);
    plan("exponential load ", &geo, Rigid::unit(), price);
    plan("algebraic load   ", &alg, Rigid::unit(), price);

    println!("\n== Adaptive audio/video applications ==");
    plan("poisson load     ", &poisson, AdaptiveExp::paper(), price);
    plan("exponential load ", &geo, AdaptiveExp::paper(), price);
    plan("algebraic load   ", &alg, AdaptiveExp::paper(), price);

    println!(
        "\nThe paper's conclusion in one screen: with well-behaved (Poisson/\n\
         exponential) loads and adaptive applications the premium collapses —\n\
         buy bandwidth, skip the complexity. Heavy-tailed load keeps the\n\
         reservation premium alive at every price."
    );
}
