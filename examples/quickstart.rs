//! Quickstart: compare a best-effort-only link with a reservation-capable
//! one under the paper's three load models.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bevra::prelude::*;

fn main() {
    let kbar = PAPER_MEAN_LOAD; // the paper's calibration: mean load 100
    let capacity = 150.0; // moderately overprovisioned: 1.5× the mean

    println!("Best-effort vs reservations at C = {capacity}, mean load {kbar}\n");
    println!(
        "{:<14} {:<10} {:>10} {:>10} {:>8} {:>12}",
        "load", "apps", "B(C)", "R(C)", "δ(C)", "Δ(C)"
    );

    let loads: Vec<(&str, Tabulated)> = vec![
        ("poisson", Tabulated::from_model(&Poisson::new(kbar), 1e-12, 1 << 20)),
        ("exponential", Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, 1 << 20)),
        (
            "algebraic z=3",
            Tabulated::from_model(
                &Algebraic::from_mean(3.0, kbar).expect("calibrates for z=3"),
                1e-9,
                1 << 20,
            ),
        ),
    ];

    for (name, load) in loads {
        for adaptive in [false, true] {
            let (b, r, d) = if adaptive {
                let m = DiscreteModel::new(load.clone(), AdaptiveExp::paper());
                (m.best_effort(capacity), m.reservation(capacity), bandwidth_gap(&m, capacity))
            } else {
                let m = DiscreteModel::new(load.clone(), Rigid::unit());
                (m.best_effort(capacity), m.reservation(capacity), bandwidth_gap(&m, capacity))
            };
            println!(
                "{:<14} {:<10} {:>10.4} {:>10.4} {:>8.4} {:>12.2}",
                name,
                if adaptive { "adaptive" } else { "rigid" },
                b,
                r,
                r - b,
                d.unwrap_or(f64::NAN),
            );
        }
    }

    println!(
        "\nReading: δ is the utility a reservation network adds; Δ is how much \
         extra capacity a best-effort network needs to match it. Note the \
         algebraic row: Δ grows *linearly* with C — the paper's case for \
         reservations under heavy-tailed load."
    );
}
