//! Close the loop: run the flow-level simulator, extract its empirical
//! occupancy distribution, feed that back into the analytical model, and
//! compare predictions with direct measurements.
//!
//! ```sh
//! cargo run --release --example simulator_validation
//! ```

use bevra::prelude::*;
use std::sync::Arc;

fn validate(name: &str, mixing: RateMixing) {
    let offered = 40.0; // erlangs
    let capacity = 50.0;
    let cfg = SimConfig {
        capacity,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::new(offered, mixing, 80.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 200.0,
        horizon: 30_000.0,
        seed: 2024,
        max_events: None,
    };
    let be = Simulation::new(cfg.clone()).run();

    // Analytical model on the simulator's own measured occupancy.
    let occupancy = be.occupancy();
    let model = DiscreteModel::new(occupancy.clone(), AdaptiveExp::paper());
    let b_pred = model.best_effort(capacity);

    // Reservation run at the analytic k_max.
    let kmax = model.k_max(capacity).unwrap_or(capacity as u64);
    let mut rcfg = cfg;
    rcfg.discipline = Discipline::Reservation { k_max: kmax, retry: None };
    let rv = Simulation::new(rcfg).run();
    let r_pred = model.reservation(capacity);

    println!("== {name} arrivals ==");
    println!(
        "  occupancy: mean {:>7.2}, variance {:>9.2}  ({} flows completed)",
        occupancy.mean(),
        occupancy.variance(),
        be.completed
    );
    println!(
        "  best-effort  utility: simulated {:>7.4} ± {:.4}   model {:>7.4}",
        be.utility_at_admission.mean(),
        be.utility_at_admission.ci95(),
        b_pred
    );
    println!(
        "  reservation  utility: simulated {:>7.4} ± {:.4}   model {:>7.4}  (k_max = {kmax}, blocking {:.4})",
        rv.utility_at_admission.mean(),
        rv.utility_at_admission.ci95(),
        r_pred,
        rv.blocking_rate()
    );
    println!(
        "  worst-episode utility (per flow): {:>7.4}  (the §5.1 sampling effect, \
         vs {:.4} at admission)\n",
        be.utility_worst.mean(),
        be.utility_at_admission.mean()
    );
}

fn main() {
    println!(
        "Simulator ↔ analysis validation: the same mixed-Poisson construction\n\
         produces the paper's three load families mechanistically.\n"
    );
    validate("fixed-rate (Poisson occupancy)", RateMixing::Fixed);
    validate("exponentially-mixed (geometric occupancy)", RateMixing::Exponential);
    validate(
        "Pareto-mixed (power-law occupancy)",
        RateMixing::Pareto { z: 2.5, cap: 1e4 },
    );
    println!(
        "In every case the analytical B/R evaluated on the *measured*\n\
         occupancy distribution lands inside the simulation's confidence\n\
         band — the paper's static model is the right reduction of the\n\
         dynamic system."
    );
}
