//! Beyond the paper: does the architecture comparison survive on a
//! multi-link network? Flows cross a 3-hop parking-lot topology; best-effort
//! shares are max-min fair, reservations must clear every link on the path.
//!
//! ```sh
//! cargo run --release --example network_extension
//! ```

use bevra::net::evaluate::{best_effort_utility, reservation_utility};
use bevra::net::{parking_lot, single_link};
use bevra::prelude::*;

fn main() {
    println!("Single-link sanity check (matches the paper's fixed-load model):");
    let (t, flows) = single_link(10.0, 25);
    let u = Rigid::unit();
    let b = best_effort_utility(&t, &flows, &u);
    let r = reservation_utility(&t, &flows, &u);
    println!(
        "  C = 10, k = 25 rigid flows: best-effort total {:.1}, reservation total {:.1}\n",
        b.total, r.total
    );

    println!("3-hop parking lot, capacity 10 per link, rigid applications:");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "long", "short/hop", "BE total", "RSV total", "RSV edge"
    );
    for (long, short) in [(2, 4), (5, 8), (10, 12), (20, 20)] {
        let (t, flows) = parking_lot(3, 10.0, long, short);
        let b = best_effort_utility(&t, &flows, &Rigid::unit());
        let r = reservation_utility(&t, &flows, &Rigid::unit());
        println!(
            "{:>6} {:>10} {:>12.1} {:>12.1} {:>9.1}%",
            long,
            short,
            b.total,
            r.total,
            if b.total > 0.0 { (r.total / b.total - 1.0) * 100.0 } else { f64::INFINITY }
        );
    }

    println!("\nSame sweep with adaptive applications:");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "long", "short/hop", "BE total", "RSV total", "RSV edge"
    );
    for (long, short) in [(2, 4), (5, 8), (10, 12), (20, 20)] {
        let (t, flows) = parking_lot(3, 10.0, long, short);
        let u = AdaptiveExp::paper();
        let b = best_effort_utility(&t, &flows, &u);
        let r = reservation_utility(&t, &flows, &u);
        println!(
            "{:>6} {:>10} {:>12.2} {:>12.2} {:>9.1}%",
            long,
            short,
            b.total,
            r.total,
            (r.total / b.total - 1.0) * 100.0
        );
    }

    println!(
        "\nTwo lessons. For rigid applications the single-link result\n\
         generalizes: admission control is the difference between total\n\
         collapse and full utility. For adaptive applications the network\n\
         setting adds a twist the single-link model hides: unit-demand path\n\
         reservations spend several links' worth of capacity on each\n\
         multi-hop flow, so in deep overload naive per-link admission can\n\
         *underperform* best-effort max-min sharing — reservation granularity\n\
         matters once routes are longer than one hop."
    );
}
