//! Seeded random sampling from load models — the bridge to the simulator.
//!
//! [`TabulatedSampler`] draws from any [`crate::Tabulated`] distribution in
//! O(1) per sample via Walker's alias method; the continuous samplers invert
//! closed-form cdfs. All samplers take a caller-provided [`rand::RngExt`]
//! so the simulator stays fully deterministic under a fixed seed.

use crate::tabulated::Tabulated;
use rand::RngExt;

/// O(1) discrete sampler using Walker's alias method.
///
/// Construction is O(n); each draw consumes one uniform for the bucket and
/// one for the coin flip. Exactly reproduces the tabulated pmf.
#[derive(Debug, Clone)]
pub struct TabulatedSampler {
    /// Acceptance probability per bucket.
    prob: Vec<f64>,
    /// Alias target per bucket.
    alias: Vec<u32>,
}

impl TabulatedSampler {
    /// Build the alias tables for `dist`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution has more than `u32::MAX` support points
    /// (far beyond anything this workspace constructs).
    #[must_use]
    pub fn new(dist: &Tabulated) -> Self {
        let n = dist.len();
        assert!(n <= u32::MAX as usize, "support too large for alias sampler");
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scale pmf to mean 1 across buckets.
        let scaled: Vec<f64> = dist.iter().map(|(_, p)| p * n as f64).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut scaled = scaled;
        // NOTE: peek in the loop guard, pop in the body — a guard built on
        // `(small.pop(), large.pop())` would discard an element when
        // exactly one stack is empty.
        while let (Some(s), Some(l)) = (small.last().copied(), large.last().copied()) {
            small.pop();
            large.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for i in large.into_iter().chain(small) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draw one value.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> u64 {
        let n = self.prob.len();
        let i = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[i] {
            i as u64
        } else {
            u64::from(self.alias[i])
        }
    }
}

/// Exponential variate sampler with the given rate: mean `1/rate`.
#[derive(Debug, Clone, Copy)]
pub struct ExpSampler {
    /// Rate parameter (inverse mean).
    pub rate: f64,
}

impl ExpSampler {
    /// Sampler with mean `1/rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive and finite");
        Self { rate }
    }

    /// Draw one value via inverse-cdf: `−ln(1−u)/rate`.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        -(-u).ln_1p() / self.rate
    }
}

/// Pareto variate on `[1, ∞)` with density `(z−1)·x^{−z}` — the continuum
/// algebraic load, and the heavy-tailed session-size / holding-time
/// generator of the simulator.
#[derive(Debug, Clone, Copy)]
pub struct ParetoSampler {
    /// Tail exponent `z > 1`.
    pub z: f64,
}

impl ParetoSampler {
    /// Pareto sampler with exponent `z` (mean finite iff `z > 2`).
    ///
    /// # Panics
    ///
    /// Panics unless `z > 1` (otherwise not normalizable).
    #[must_use]
    pub fn new(z: f64) -> Self {
        assert!(z > 1.0, "pareto exponent must exceed 1");
        Self { z }
    }

    /// Draw one value via inverse-cdf: `(1−u)^{−1/(z−1)}`.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        (1.0 - u).powf(-1.0 / (self.z - 1.0))
    }
}

/// Pareto truncated to `[1, cap]`, renormalized — keeps simulator run
/// lengths finite while preserving the heavy body of the distribution.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    /// Tail exponent `z > 1`.
    pub z: f64,
    /// Upper truncation point (> 1).
    pub cap: f64,
}

impl BoundedPareto {
    /// Bounded Pareto on `[1, cap]`.
    ///
    /// # Panics
    ///
    /// Panics unless `z > 1` and `cap > 1`.
    #[must_use]
    pub fn new(z: f64, cap: f64) -> Self {
        assert!(z > 1.0, "pareto exponent must exceed 1");
        assert!(cap > 1.0, "cap must exceed the lower support point 1");
        Self { z, cap }
    }

    /// Draw one value by inverting the truncated cdf.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = self.z - 1.0;
        let cap_term = self.cap.powf(-a);
        let u: f64 = rng.random();
        // cdf(x) = (1 − x^{−a})/(1 − cap^{−a}).
        (1.0 - u * (1.0 - cap_term)).powf(-1.0 / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::Poisson;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn alias_sampler_reproduces_pmf() {
        let dist = Tabulated::from_weights(vec![0.1, 0.4, 0.2, 0.3]);
        let sampler = TabulatedSampler::new(&dist);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let freq = c as f64 / n as f64;
            let want = dist.pmf(k as u64);
            assert!((freq - want).abs() < 0.01, "k={k}: {freq} vs {want}");
        }
    }

    #[test]
    fn alias_sampler_poisson_mean() {
        let dist = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 16);
        let sampler = TabulatedSampler::new(&dist);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sampler.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn exp_sampler_mean() {
        let s = ExpSampler::new(0.25);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_sampler_mean_and_support() {
        let z = 3.0; // mean (z−1)/(z−2) = 2.
        let s = ParetoSampler::new(z);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 400_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            assert!(x >= 1.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn bounded_pareto_respects_cap() {
        let s = BoundedPareto::new(2.2, 50.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50_000 {
            let x = s.sample(&mut rng);
            assert!((1.0..=50.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let dist = Tabulated::from_weights(vec![0.5, 0.5]);
        let sampler = TabulatedSampler::new(&dist);
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }
}
