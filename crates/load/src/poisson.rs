//! Poisson offered load (paper §3.1).

use crate::traits::LoadModel;
use bevra_num::ln_gamma;

/// Poisson load: `P(k) = e^{−ν} ν^k / k!`.
///
/// The paper motivates it as "load fairly tightly controlled within a region
/// around the average, excursions to large loads extremely rare" — the
/// stationary occupancy of Poisson arrivals with independent departures
/// (an M/G/∞ system). Mean and variance are both `ν`, so at `k̄ = 100`
/// the load rarely strays more than ±30 from the mean; this is the most
/// best-effort-friendly of the paper's three families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Rate parameter ν (also the mean).
    pub nu: f64,
}

impl Poisson {
    /// Poisson load with mean `nu`.
    ///
    /// # Panics
    ///
    /// Panics unless `nu` is positive and finite.
    #[must_use]
    pub fn new(nu: f64) -> Self {
        assert!(nu > 0.0 && nu.is_finite(), "Poisson mean must be positive and finite");
        Self { nu }
    }

    /// Construct from a target mean (identical to [`Poisson::new`], present
    /// for API symmetry with the other load families).
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        Self::new(mean)
    }
}

impl LoadModel for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        let kf = k as f64;
        // exp(k lnν − ν − lnΓ(k+1)) is stable for all k and ν.
        (kf * self.nu.ln() - self.nu - ln_gamma(kf + 1.0)).exp()
    }

    fn mean(&self) -> f64 {
        self.nu
    }

    fn truncation_index(&self, tol: f64) -> u64 {
        // Beyond K ≥ 2ν the term ratio P(k+1)/P(k) = ν/(k+1) ≤ 1/2, so
        // tail mass ≤ 2·P(K+1) and tail mean ≤ 2·P(K+1)·(K+3).
        let budget = tol * self.nu.max(1.0);
        let mut k = (2.0 * self.nu).ceil() as u64 + 2;
        loop {
            let bound = 2.0 * self.pmf(k + 1) * (k as f64 + 3.0);
            if bound <= budget {
                return k;
            }
            k += 1 + k / 16;
        }
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_matches_direct_formula_small_k() {
        let p = Poisson::new(3.0);
        // P(0) = e^{-3}, P(1) = 3e^{-3}, P(2) = 4.5e^{-3}.
        assert!((p.pmf(0) - (-3.0f64).exp()).abs() < 1e-15);
        assert!((p.pmf(1) - 3.0 * (-3.0f64).exp()).abs() < 1e-15);
        assert!((p.pmf(2) - 4.5 * (-3.0f64).exp()).abs() < 1e-14);
    }

    #[test]
    fn mass_and_mean_sum_correctly() {
        let p = Poisson::new(100.0);
        let k_hi = p.truncation_index(1e-13);
        let mut mass = 0.0;
        let mut mean = 0.0;
        for k in 0..=k_hi {
            let q = p.pmf(k);
            mass += q;
            mean += k as f64 * q;
        }
        assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
        assert!((mean - 100.0).abs() < 1e-7, "mean {mean}");
    }

    #[test]
    fn truncation_bound_is_honest() {
        let p = Poisson::new(50.0);
        let k_hi = p.truncation_index(1e-10);
        // Directly sum a long stretch of the tail and check it is tiny.
        let tail_mean: f64 = (k_hi + 1..k_hi + 500).map(|k| k as f64 * p.pmf(k)).sum();
        assert!(tail_mean < 1e-10 * 50.0, "tail mean {tail_mean}");
    }

    #[test]
    fn large_k_does_not_overflow() {
        let p = Poisson::new(100.0);
        assert_eq!(p.pmf(100_000), 0.0); // underflows cleanly, not NaN
        assert!(p.pmf(100_000).is_finite());
    }
}
