//! Finite tabulated distributions — the working representation for all
//! discrete-model computations.

use crate::traits::LoadModel;
use bevra_num::{first_true_u64, NeumaierSum};

/// An exact finite probability distribution on `{0, 1, …, len−1}` obtained
/// by truncating and renormalizing an ideal [`LoadModel`].
///
/// Design: ideal distributions stay analytic; everything numerical operates
/// on a `Tabulated`. Truncation is *explicit and recorded* — the dropped
/// ideal-tail mass and mean are stored so reports can state the
/// approximation error instead of silently pretending it is zero. After
/// renormalization the table is a genuine distribution (mass exactly 1 up to
/// compensated-summation accuracy), so identities like `B(C) ≤ R(C) ≤ 1`
/// hold exactly within the truncated model.
#[derive(Debug, Clone)]
pub struct Tabulated {
    /// `pmf[k]` = probability of load `k` (renormalized).
    pmf: Vec<f64>,
    /// `cdf[k]` = `Σ_{j≤k} pmf[j]` (ends at exactly 1.0).
    cdf: Vec<f64>,
    /// `cum1[k]` = `Σ_{j≤k} j·pmf[j]` — cached first-moment prefix sums, so
    /// overload/blocking terms of the analysis are O(1) per capacity.
    cum1: Vec<f64>,
    /// Mean of the tabulated distribution.
    mean: f64,
    /// Ideal-model tail mass dropped at truncation (before renormalizing).
    tail_mass_dropped: f64,
    /// Ideal-model tail mean dropped at truncation.
    tail_mean_dropped: f64,
    /// Name inherited from the source model.
    name: &'static str,
}

impl Tabulated {
    /// Tabulate `model` to tolerance `tol`, capping the table at `max_len`
    /// entries.
    ///
    /// If the model's certified truncation index exceeds `max_len` (heavy
    /// tails), the table is cut at `max_len` and the recorded drop bounds
    /// reflect the larger truncation error.
    #[must_use]
    pub fn from_model(model: &dyn LoadModel, tol: f64, max_len: usize) -> Self {
        let k_hi = model.truncation_index(tol).min(max_len.saturating_sub(1) as u64);
        let mut pmf = Vec::with_capacity(k_hi as usize + 1);
        let mut mass = NeumaierSum::new();
        let mut mean = NeumaierSum::new();
        for k in 0..=k_hi {
            let p = model.pmf(k);
            pmf.push(p);
            mass.add(p);
            mean.add(k as f64 * p);
        }
        let mass = mass.total();
        let tail_mass_dropped = (1.0 - mass).max(0.0);
        let tail_mean_dropped = (model.mean() - mean.total()).max(0.0);
        Self::from_weights_named(pmf, model.name(), tail_mass_dropped, tail_mean_dropped)
    }

    /// Build directly from (possibly unnormalized) nonnegative weights.
    /// Used for derived distributions (flow perspective, order statistics,
    /// clipping) and for empirical occupancy censuses from the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, contain negatives/NaN, or sum to 0.
    #[must_use]
    pub fn from_weights(weights: Vec<f64>) -> Self {
        Self::from_weights_named(weights, "tabulated", 0.0, 0.0)
    }

    fn from_weights_named(
        mut weights: Vec<f64>,
        name: &'static str,
        tail_mass_dropped: f64,
        tail_mean_dropped: f64,
    ) -> Self {
        assert!(!weights.is_empty(), "tabulated distribution needs at least one weight");
        let mut mass = NeumaierSum::new();
        for &w in &weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and nonnegative");
            mass.add(w);
        }
        let total = mass.total();
        assert!(total > 0.0, "weights must not all be zero");
        let inv = 1.0 / total;
        let mut cdf = Vec::with_capacity(weights.len());
        let mut cum1 = Vec::with_capacity(weights.len());
        let mut acc = NeumaierSum::new();
        let mut mean = NeumaierSum::new();
        for (k, w) in weights.iter_mut().enumerate() {
            *w *= inv;
            acc.add(*w);
            mean.add(k as f64 * *w);
            cdf.push(acc.total().min(1.0));
            cum1.push(mean.total());
        }
        // Pin the final cdf entry to exactly 1 so quantile lookups never
        // fall off the end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            pmf: weights,
            cdf,
            cum1,
            mean: mean.total(),
            tail_mass_dropped,
            tail_mean_dropped,
            name,
        }
    }

    /// Probability of load `k` (zero beyond the table).
    #[must_use]
    pub fn pmf(&self, k: u64) -> f64 {
        self.pmf.get(k as usize).copied().unwrap_or(0.0)
    }

    /// `P[K ≤ k]`, exactly 1 at and beyond the table end.
    #[must_use]
    pub fn cdf(&self, k: u64) -> f64 {
        if self.cdf.is_empty() {
            return 1.0;
        }
        let idx = (k as usize).min(self.cdf.len() - 1);
        if k as usize >= self.cdf.len() {
            1.0
        } else {
            self.cdf[idx]
        }
    }

    /// Mean of the tabulated distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Partial first moment `Σ_{j≤k} j·pmf(j)`, O(1) via cached prefix sums.
    #[must_use]
    pub fn partial_mean(&self, k: u64) -> f64 {
        if self.cum1.is_empty() {
            return 0.0;
        }
        let idx = (k as usize).min(self.cum1.len() - 1);
        self.cum1[idx]
    }

    /// Tail first moment `Σ_{j>k} j·pmf(j) = mean − partial_mean(k)`.
    #[must_use]
    pub fn tail_mean_above(&self, k: u64) -> f64 {
        (self.mean - self.partial_mean(k)).max(0.0)
    }

    /// Tail mass `Σ_{j>k} pmf(j) = 1 − cdf(k)`.
    #[must_use]
    pub fn tail_mass_above(&self, k: u64) -> f64 {
        (1.0 - self.cdf(k)).max(0.0)
    }

    /// Number of table entries (support is `{0, …, len−1}`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// True iff the table is empty (cannot happen via constructors; present
    /// for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pmf.is_empty()
    }

    /// The `q`-quantile: smallest `k` with `cdf(k) ≥ q`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let q = q.clamp(0.0, 1.0);
        first_true_u64(|k| self.cdf(k) >= q, 0, self.len() as u64 - 1).unwrap_or(0)
    }

    /// Variance of the tabulated distribution.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean;
        self.pmf
            .iter()
            .enumerate()
            .map(|(k, &p)| {
                let d = k as f64 - m;
                p * d * d
            })
            .collect::<NeumaierSum>()
            .total()
    }

    /// Ideal-model tail mass dropped at truncation (0 for exact tables).
    #[must_use]
    pub fn tail_mass_dropped(&self) -> f64 {
        self.tail_mass_dropped
    }

    /// Ideal-model tail mean dropped at truncation.
    #[must_use]
    pub fn tail_mean_dropped(&self) -> f64 {
        self.tail_mean_dropped
    }

    /// Name inherited from the source model.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The raw pmf table as a contiguous slice (`pmf_values()[k] = pmf(k)`).
    ///
    /// Exposed for grid-batched kernels that traverse the table once for a
    /// whole capacity grid and need the compiler to see a plain `&[f64]`
    /// rather than a bounds-checked accessor in the hot loop.
    #[must_use]
    pub fn pmf_values(&self) -> &[f64] {
        &self.pmf
    }

    /// Content digest of the distribution: FNV-1a over the name, length,
    /// and the exact bit patterns of every pmf entry.
    ///
    /// Two tables compare equal under this digest iff every probability is
    /// bitwise identical — the precondition for bit-exact reuse of derived
    /// value tables (the persistent sweep cache keys on it). The digest is
    /// O(len); callers that need it repeatedly should memoize it.
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.pmf.len() as u64).to_le_bytes());
        for &p in &self.pmf {
            eat(&p.to_bits().to_le_bytes());
        }
        h
    }

    /// Iterate `(k, pmf(k))` over the support.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.pmf.iter().enumerate().map(|(k, &p)| (k as u64, p))
    }

    /// Expectation `Σ_k pmf(k)·f(k)` with compensated summation.
    #[must_use]
    pub fn expect(&self, mut f: impl FnMut(u64) -> f64) -> f64 {
        let mut acc = NeumaierSum::new();
        for (k, p) in self.iter() {
            if p > 0.0 {
                acc.add(p * f(k));
            }
        }
        acc.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric::Geometric;
    use crate::poisson::Poisson;

    #[test]
    fn tabulated_poisson_is_normalized() {
        let t = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
        let mass: f64 = t.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        assert!((t.mean() - 100.0).abs() < 1e-6);
        assert!(t.tail_mass_dropped() < 1e-10);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let t = Tabulated::from_model(&Geometric::from_mean(10.0), 1e-10, 1 << 20);
        let mut prev = 0.0;
        for k in 0..t.len() as u64 {
            let c = t.cdf(k);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(t.cdf(t.len() as u64 + 100), 1.0);
        assert_eq!(t.cdf(t.len() as u64 - 1), 1.0);
    }

    #[test]
    fn quantiles_bracket_mean() {
        let t = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
        assert!(t.quantile(0.5) >= 95 && t.quantile(0.5) <= 105);
        assert!(t.quantile(0.999) > t.quantile(0.5));
        assert_eq!(t.quantile(0.0), 0);
    }

    #[test]
    fn variance_of_poisson_equals_mean() {
        let t = Tabulated::from_model(&Poisson::new(50.0), 1e-13, 1 << 20);
        assert!((t.variance() - 50.0).abs() < 1e-5, "var {}", t.variance());
    }

    #[test]
    fn from_weights_renormalizes() {
        let t = Tabulated::from_weights(vec![2.0, 2.0, 4.0]);
        assert!((t.pmf(0) - 0.25).abs() < 1e-15);
        assert!((t.pmf(2) - 0.5).abs() < 1e-15);
        assert!((t.mean() - 1.25).abs() < 1e-15);
    }

    #[test]
    fn capped_table_records_dropped_tail() {
        // Cap a geometric table well below its natural truncation point.
        let g = Geometric::from_mean(100.0);
        let t = Tabulated::from_model(&g, 1e-12, 200);
        assert!(t.len() == 200);
        assert!(t.tail_mass_dropped() > 1e-3, "dropped {}", t.tail_mass_dropped());
        assert!(t.tail_mean_dropped() > 0.0);
        // Still a genuine distribution after renormalization.
        let mass: f64 = t.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expect_matches_mean() {
        let t = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 20);
        let m = t.expect(|k| k as f64);
        assert!((m - t.mean()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn all_zero_weights_rejected() {
        let _ = Tabulated::from_weights(vec![0.0, 0.0]);
    }

    #[test]
    fn digest_distinguishes_content_not_identity() {
        let a = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 16);
        let b = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 16);
        assert_eq!(a.digest(), b.digest(), "identical builds must share a digest");
        let c = Tabulated::from_model(&Poisson::new(20.0 + 1e-9), 1e-12, 1 << 16);
        assert_ne!(a.digest(), c.digest(), "a perturbed table must re-key");
        let d = Tabulated::from_model(&Geometric::from_mean(20.0), 1e-12, 1 << 16);
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn pmf_values_matches_accessor() {
        let t = Tabulated::from_model(&Poisson::new(7.0), 1e-12, 1 << 12);
        let s = t.pmf_values();
        assert_eq!(s.len(), t.len());
        for (k, &p) in s.iter().enumerate() {
            assert_eq!(p.to_bits(), t.pmf(k as u64).to_bits());
        }
    }

    #[test]
    fn partial_and_tail_moments_are_consistent() {
        let t = Tabulated::from_model(&Poisson::new(30.0), 1e-13, 1 << 20);
        for k in [0u64, 10, 30, 60, 10_000] {
            let direct: f64 = t.iter().take_while(|&(j, _)| j <= k).map(|(j, p)| j as f64 * p).sum();
            assert!((t.partial_mean(k) - direct).abs() < 1e-12, "k={k}");
            assert!((t.partial_mean(k) + t.tail_mean_above(k) - t.mean()).abs() < 1e-12);
        }
        assert!((t.tail_mass_above(0) - (1.0 - t.pmf(0))).abs() < 1e-12);
        assert_eq!(t.tail_mass_above(1 << 21), 0.0);
    }
}
