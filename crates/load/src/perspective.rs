//! The flow-perspective (size-biased) view of a load distribution.

use crate::tabulated::Tabulated;

/// Transform a load distribution `P(k)` (the *link's* view: how many flows
/// are present) into the flow-perspective distribution
/// `Q(k) = k·P(k)/k̄` (a *flow's* view: how many flows share the link with
/// me, myself included).
///
/// This is the size-biased transform the paper uses implicitly throughout:
/// the normalized best-effort utility can be written either as
/// `B(C) = (1/k̄)·Σ P(k)·k·π(C/k)` or equivalently as
/// `B(C) = Σ Q(k)·π(C/k)`, and the sampling extension of §5.1 draws its
/// `S` samples from `Q` explicitly.
///
/// The result never has mass at `k = 0` (a flow always sees at least
/// itself).
///
/// # Panics
///
/// Panics if the input has zero mean (all mass at `k = 0`).
#[must_use]
pub fn flow_perspective(p: &Tabulated) -> Tabulated {
    assert!(p.mean() > 0.0, "flow perspective undefined for zero-mean load");
    let weights: Vec<f64> = p.iter().map(|(k, pk)| k as f64 * pk).collect();
    Tabulated::from_weights(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::Poisson;
    use crate::traits::LoadModel;

    #[test]
    fn no_mass_at_zero() {
        let p = Tabulated::from_model(&Poisson::new(5.0), 1e-12, 1 << 16);
        let q = flow_perspective(&p);
        assert_eq!(q.pmf(0), 0.0);
    }

    #[test]
    fn size_biased_poisson_is_shifted_poisson() {
        // For Poisson(ν): Q(k) = k e^{−ν} ν^k / (k! ν) = P(k−1), i.e. the
        // flow-perspective load is 1 + Poisson(ν).
        let nu = 30.0;
        let p = Tabulated::from_model(&Poisson::new(nu), 1e-13, 1 << 16);
        let q = flow_perspective(&p);
        let ideal = Poisson::new(nu);
        for k in 1..60u64 {
            let want = ideal.pmf(k - 1);
            assert!((q.pmf(k) - want).abs() < 1e-10, "k={k}: {} vs {want}", q.pmf(k));
        }
        assert!((q.mean() - (nu + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn identities_between_views() {
        // E_Q[f(k)] = E_P[k f(k)] / k̄ for any f.
        let p = Tabulated::from_model(&Poisson::new(12.0), 1e-13, 1 << 16);
        let q = flow_perspective(&p);
        let f = |k: u64| 1.0 / (1.0 + k as f64);
        let lhs = q.expect(f);
        let rhs = p.expect(|k| k as f64 * f(k)) / p.mean();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-mean")]
    fn zero_mean_rejected() {
        let degenerate = Tabulated::from_weights(vec![1.0]);
        let _ = flow_perspective(&degenerate);
    }
}
