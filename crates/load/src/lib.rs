//! Offered-load models for the variable-load analysis
//! (Breslau & Shenker, SIGCOMM 1998, §3).
//!
//! The number of flows requesting service on the bottleneck link is a random
//! variable `k ~ P(k)`. The paper studies three families, all calibrated to
//! a common mean `k̄` (100 in every published figure):
//!
//! * **Poisson** — tightly concentrated load, the stationary occupancy of a
//!   Poisson arrival process with independent departures;
//! * **exponential** (a geometric distribution in the discrete model,
//!   `P(k) ∝ e^{−βk}`) — load decaying over its whole range;
//! * **algebraic** — `P(k) = A/(λ + k^z)`, a heavy power-law tail whose
//!   plausibility the paper connects to the self-similarity literature.
//!   Two parameters let the mean vary while the tail exponent `z` stays
//!   fixed; the mean exists only for `z > 2`.
//!
//! Ideal distributions implement [`LoadModel`]; numerical work happens on
//! [`Tabulated`], an exact finite distribution with recorded truncation
//! bounds. Derived views — the flow-perspective (size-biased) distribution
//! `Q(k) = k·P(k)/k̄` and max-of-`S` order statistics — feed the basic model
//! and the §5.1 sampling extension. [`continuum`] holds the continuous
//! densities of the paper's analytically tractable twin model, and
//! [`sample`] provides seeded samplers for the simulator.

// `!(x > 0.0)`-style guards deliberately reject NaN along with the
// out-of-domain values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod algebraic;
pub mod continuum;
pub mod geometric;
pub mod order_stats;
pub mod perspective;
pub mod poisson;
pub mod sample;
pub mod tabulated;
pub mod traits;

pub use algebraic::Algebraic;
pub use continuum::{ContinuumLoad, ExponentialDensity, ParetoDensity};
pub use geometric::Geometric;
pub use order_stats::{clip_at, max_of_s};
pub use perspective::flow_perspective;
pub use poisson::Poisson;
pub use sample::{BoundedPareto, ExpSampler, ParetoSampler, TabulatedSampler};
pub use tabulated::Tabulated;
pub use traits::LoadModel;

/// The paper's calibration: every published figure uses mean load k̄ = 100.
pub const PAPER_MEAN_LOAD: f64 = 100.0;
