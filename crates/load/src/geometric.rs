//! Exponential ("geometric") offered load (paper §3.1).

use crate::traits::LoadModel;

/// The paper's exponential load: `P(k) = (1 − e^{−β}) e^{−βk}`, `k ≥ 0` —
/// a geometric distribution in disguise.
///
/// "Load not peaked around the average but decaying over the whole range at
/// an exponential rate." Mean `k̄ = 1/(e^β − 1)`, so `β = ln(1 + 1/k̄)`;
/// the paper's `k̄ = 100` gives β ≈ 0.00995.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    /// Decay rate β > 0.
    pub beta: f64,
}

impl Geometric {
    /// Exponential load with decay rate `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    #[must_use]
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive and finite");
        Self { beta }
    }

    /// Calibrate β from a target mean: `β = ln(1 + 1/k̄)`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is positive and finite.
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive and finite");
        Self::new((1.0f64 / mean).ln_1p())
    }

    /// Normalization constant `1 − e^{−β}`.
    #[must_use]
    fn norm(&self) -> f64 {
        -(-self.beta).exp_m1()
    }
}

impl LoadModel for Geometric {
    fn pmf(&self, k: u64) -> f64 {
        self.norm() * (-self.beta * k as f64).exp()
    }

    fn mean(&self) -> f64 {
        // 1/(e^β − 1), computed stably for small β.
        1.0 / self.beta.exp_m1()
    }

    fn truncation_index(&self, tol: f64) -> u64 {
        // Exact geometric tails: mass beyond K is e^{−β(K+1)} and mean
        // beyond K is e^{−β(K+1)}·(K+1 + e^{−β}/(1−e^{−β})). Solve the mean
        // bound (the binding one) by a short upward scan from the mass-only
        // closed form.
        let budget = tol * self.mean().max(1.0);
        let mut k = ((-(budget.ln()) / self.beta).ceil().max(1.0)) as u64;
        loop {
            let tail_mass = (-self.beta * (k as f64 + 1.0)).exp();
            let tail_mean = tail_mass * (k as f64 + 1.0 + 1.0 / self.beta.exp_m1());
            if tail_mean <= budget {
                return k;
            }
            k += 1 + k / 8;
        }
    }

    fn name(&self) -> &'static str {
        "exponential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_beta() {
        // k̄ = 100 ⇒ β = ln(1.01) ≈ 0.00995.
        let g = Geometric::from_mean(100.0);
        assert!((g.beta - 1.01f64.ln()).abs() < 1e-15);
        assert!((g.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mass_and_mean_sum_correctly() {
        let g = Geometric::from_mean(100.0);
        let k_hi = g.truncation_index(1e-12);
        let mut mass = 0.0;
        let mut mean = 0.0;
        for k in 0..=k_hi {
            let q = g.pmf(k);
            mass += q;
            mean += k as f64 * q;
        }
        assert!((mass - 1.0).abs() < 1e-10, "mass {mass}");
        assert!((mean - 100.0).abs() < 1e-7, "mean {mean}");
    }

    #[test]
    fn pmf_ratio_is_constant() {
        let g = Geometric::new(0.01);
        let r0 = g.pmf(1) / g.pmf(0);
        let r1 = g.pmf(57) / g.pmf(56);
        assert!((r0 - r1).abs() < 1e-15);
        assert!((r0 - (-0.01f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn truncation_honest_for_loose_tolerance() {
        let g = Geometric::from_mean(10.0);
        let k_hi = g.truncation_index(1e-6);
        let tail_mean: f64 = (k_hi + 1..k_hi + 10_000).map(|k| k as f64 * g.pmf(k)).sum();
        assert!(tail_mean <= 1e-6 * 10.0, "tail mean {tail_mean}");
    }
}
