//! Order statistics and clipping of tabulated distributions — the machinery
//! of the sampling extension (paper §5.1).

use crate::tabulated::Tabulated;

/// Distribution of the **maximum** of `s` independent draws from `base`:
/// `P[max = k] = F(k)^s − F(k−1)^s`.
///
/// The sampling extension models a flow that experiences `s` independent
/// load levels during its lifetime and whose utility is driven by the worst
/// (highest) one; `s = 1` returns a copy of `base`.
///
/// # Panics
///
/// Panics if `s == 0`.
#[must_use]
pub fn max_of_s(base: &Tabulated, s: u32) -> Tabulated {
    assert!(s >= 1, "max_of_s requires at least one sample");
    let n = base.len() as u64;
    let mut weights = Vec::with_capacity(base.len());
    let mut prev_pow = 0.0f64;
    for k in 0..n {
        let pow = base.cdf(k).powi(s as i32);
        weights.push((pow - prev_pow).max(0.0));
        prev_pow = pow;
    }
    Tabulated::from_weights(weights)
}

/// Clip a distribution at `cap`: all mass above `cap` is moved onto `cap`.
///
/// In the reservation architecture an admitted flow never shares the link
/// with more than `k_max(C)` flows, so the load it *experiences* is the
/// offered load clipped at `k_max` — the "effective load
/// `min[k_max(C), k]`" of §5.1.
#[must_use]
pub fn clip_at(base: &Tabulated, cap: u64) -> Tabulated {
    let n = base.len() as u64;
    let cap = cap.min(n.saturating_sub(1));
    let mut weights = vec![0.0; cap as usize + 1];
    for (k, p) in base.iter() {
        let idx = k.min(cap) as usize;
        weights[idx] += p;
    }
    Tabulated::from_weights(weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform4() -> Tabulated {
        Tabulated::from_weights(vec![0.25, 0.25, 0.25, 0.25])
    }

    #[test]
    fn s_equals_one_is_identity() {
        let base = uniform4();
        let m = max_of_s(&base, 1);
        for k in 0..4 {
            assert!((m.pmf(k) - base.pmf(k)).abs() < 1e-15);
        }
    }

    #[test]
    fn max_of_two_uniform() {
        // P[max of 2 uniform{0..3} = k] = ((k+1)² − k²)/16 = (2k+1)/16.
        let m = max_of_s(&uniform4(), 2);
        for k in 0..4u64 {
            let want = (2.0 * k as f64 + 1.0) / 16.0;
            assert!((m.pmf(k) - want).abs() < 1e-14, "k={k}");
        }
    }

    #[test]
    fn max_stochastically_dominates_base() {
        let base = uniform4();
        let m = max_of_s(&base, 5);
        for k in 0..4u64 {
            assert!(m.cdf(k) <= base.cdf(k) + 1e-15, "k={k}");
        }
        assert!(m.mean() > base.mean());
    }

    #[test]
    fn large_s_concentrates_on_maximum() {
        let m = max_of_s(&uniform4(), 200);
        assert!(m.pmf(3) > 0.999_999);
    }

    #[test]
    fn clip_moves_mass_to_cap() {
        let base = uniform4();
        let c = clip_at(&base, 1);
        assert!((c.pmf(0) - 0.25).abs() < 1e-15);
        assert!((c.pmf(1) - 0.75).abs() < 1e-15);
        assert_eq!(c.len(), 2);
        assert_eq!(c.pmf(2), 0.0);
    }

    #[test]
    fn clip_beyond_support_is_identity() {
        let base = uniform4();
        let c = clip_at(&base, 100);
        for k in 0..4 {
            assert!((c.pmf(k) - base.pmf(k)).abs() < 1e-15);
        }
    }

    #[test]
    fn clip_then_max_commutes_with_max_then_clip() {
        // Both orders give the distribution of min(cap, max of s draws).
        let base = Tabulated::from_weights(vec![0.1, 0.2, 0.3, 0.25, 0.15]);
        let cap = 2;
        let a = clip_at(&max_of_s(&base, 3), cap);
        let b = max_of_s(&clip_at(&base, cap), 3);
        for k in 0..=cap {
            assert!((a.pmf(k) - b.pmf(k)).abs() < 1e-12, "k={k}");
        }
    }
}
