//! Continuous load densities for the continuum model (paper §3.2).

/// A continuous offered-load density `P(k)` on `[support_lo, ∞)`.
///
/// The paper's continuum model trades the discrete distribution for a
/// density so the utilities integrate in closed form; only the exponential
/// and algebraic families are used ("as they are most easily computable").
pub trait ContinuumLoad: Send + Sync {
    /// Density at load level `k`.
    fn density(&self, k: f64) -> f64;

    /// Mean `∫ k·P(k) dk`.
    fn mean(&self) -> f64;

    /// Lower edge of the support (0 for exponential, 1 for algebraic).
    fn support_lo(&self) -> f64 {
        0.0
    }

    /// `P[K > k]` — complementary cdf, available in closed form for both
    /// families and used by the generic continuum evaluator to avoid
    /// integrating tails numerically.
    fn ccdf(&self, k: f64) -> f64;

    /// Partial mean `∫_k^∞ x·P(x) dx`, also closed-form for both families.
    fn tail_mean(&self, k: f64) -> f64;

    /// Short stable name for reports.
    fn name(&self) -> &'static str;
}

/// Exponential continuum load `P(k) = β e^{−βk}`, `k ≥ 0`; mean `1/β`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDensity {
    /// Decay rate β > 0.
    pub beta: f64,
}

impl ExponentialDensity {
    /// Exponential density with rate `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    #[must_use]
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive and finite");
        Self { beta }
    }

    /// Calibrate from a target mean: `β = 1/k̄`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is positive and finite.
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive and finite");
        Self::new(1.0 / mean)
    }
}

impl ContinuumLoad for ExponentialDensity {
    fn density(&self, k: f64) -> f64 {
        if k < 0.0 {
            0.0
        } else {
            self.beta * (-self.beta * k).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.beta
    }

    fn ccdf(&self, k: f64) -> f64 {
        if k <= 0.0 {
            1.0
        } else {
            (-self.beta * k).exp()
        }
    }

    fn tail_mean(&self, k: f64) -> f64 {
        // ∫_k^∞ x β e^{−βx} dx = e^{−βk}(k + 1/β).
        let k = k.max(0.0);
        (-self.beta * k).exp() * (k + 1.0 / self.beta)
    }

    fn name(&self) -> &'static str {
        "exponential-continuum"
    }
}

/// Algebraic continuum load `P(k) = (z−1)·k^{−z}`, `k ≥ 1` (a Pareto
/// density); mean `(z−1)/(z−2)`, finite only for `z > 2`.
///
/// Note the continuum algebraic family has **no** mean-tuning parameter —
/// the paper's own simplification ("to make the algebraic distribution more
/// tractable"). Its mean is locked to `(z−1)/(z−2)`, so continuum results
/// are compared to discrete ones in normalized units `C/k̄` rather than
/// absolute capacities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoDensity {
    /// Tail exponent z > 2.
    pub z: f64,
}

impl ParetoDensity {
    /// Pareto density with exponent `z`.
    ///
    /// # Panics
    ///
    /// Panics unless `z > 2` (mean must exist, as the paper requires).
    #[must_use]
    pub fn new(z: f64) -> Self {
        assert!(z > 2.0, "continuum algebraic load requires z > 2");
        Self { z }
    }
}

impl ContinuumLoad for ParetoDensity {
    fn density(&self, k: f64) -> f64 {
        if k < 1.0 {
            0.0
        } else {
            (self.z - 1.0) * k.powf(-self.z)
        }
    }

    fn mean(&self) -> f64 {
        (self.z - 1.0) / (self.z - 2.0)
    }

    fn support_lo(&self) -> f64 {
        1.0
    }

    fn ccdf(&self, k: f64) -> f64 {
        if k <= 1.0 {
            1.0
        } else {
            k.powf(1.0 - self.z)
        }
    }

    fn tail_mean(&self, k: f64) -> f64 {
        // ∫_k^∞ x (z−1) x^{−z} dx = (z−1)/(z−2) · k^{2−z}.
        let k = k.max(1.0);
        (self.z - 1.0) / (self.z - 2.0) * k.powf(2.0 - self.z)
    }

    fn name(&self) -> &'static str {
        "algebraic-continuum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_num::integrate_to_inf;

    #[test]
    fn exponential_density_normalizes() {
        let d = ExponentialDensity::from_mean(100.0);
        let mass = integrate_to_inf(|k| d.density(k), 0.0, 1e-11).unwrap();
        assert!((mass - 1.0).abs() < 1e-8);
        let mean = integrate_to_inf(|k| k * d.density(k), 0.0, 1e-11).unwrap();
        assert!((mean - 100.0).abs() < 1e-5);
    }

    #[test]
    fn exponential_closed_tails_match_quadrature() {
        let d = ExponentialDensity::new(0.01);
        for k in [0.0, 50.0, 200.0] {
            let ccdf_q = integrate_to_inf(|x| d.density(x), k, 1e-11).unwrap();
            assert!((d.ccdf(k) - ccdf_q).abs() < 1e-7, "k={k}");
            let tm_q = integrate_to_inf(|x| x * d.density(x), k, 1e-11).unwrap();
            assert!((d.tail_mean(k) - tm_q).abs() < 1e-4 * d.tail_mean(k).max(1.0), "k={k}");
        }
    }

    #[test]
    fn pareto_density_normalizes() {
        let d = ParetoDensity::new(3.0);
        let mass = integrate_to_inf(|k| d.density(k), 1.0, 1e-11).unwrap();
        assert!((mass - 1.0).abs() < 1e-8);
        assert!((d.mean() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pareto_closed_tails_match_quadrature() {
        let d = ParetoDensity::new(2.5);
        for k in [1.0, 3.0, 10.0] {
            let ccdf_q = integrate_to_inf(|x| d.density(x), k, 1e-11).unwrap();
            assert!((d.ccdf(k) - ccdf_q).abs() < 1e-7, "k={k}");
            let tm_q = integrate_to_inf(|x| x * d.density(x), k, 1e-11).unwrap();
            assert!((d.tail_mean(k) - tm_q).abs() < 1e-6 * d.tail_mean(k), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "z > 2")]
    fn pareto_rejects_infinite_mean() {
        let _ = ParetoDensity::new(2.0);
    }
}
