//! The [`LoadModel`] trait: an ideal (possibly infinite-support) discrete
//! distribution of the number of flows requesting service.

/// A discrete offered-load distribution `P(k)` over `k ∈ {support_min, …}`.
///
/// Implementations are *ideal* distributions — analytic pmf and mean, and a
/// certified truncation rule. All heavy numerical work is done on the
/// [`crate::Tabulated`] finite form built from a `LoadModel`.
pub trait LoadModel: Send + Sync {
    /// Probability of exactly `k` flows requesting service.
    fn pmf(&self, k: u64) -> f64;

    /// Mean offered load `k̄ = Σ k·P(k)`.
    fn mean(&self) -> f64;

    /// Smallest `k` with positive probability (0 for Poisson/geometric, 1
    /// for the algebraic family).
    fn support_min(&self) -> u64 {
        0
    }

    /// Smallest index `K` such that both the neglected tail mass
    /// `Σ_{k>K} P(k)` and the neglected tail mean `Σ_{k>K} k·P(k)` are at
    /// most `tol · max(1, k̄)`. Heavy-tailed families may need astronomically
    /// large `K` for small `tol`; callers cap the table length and record
    /// the achieved bound instead (see [`crate::Tabulated`]).
    fn truncation_index(&self, tol: f64) -> u64;

    /// Short stable name used in reports and figure legends.
    fn name(&self) -> &'static str;
}

/// Blanket impl for references so trait objects compose conveniently.
impl<L: LoadModel + ?Sized> LoadModel for &L {
    fn pmf(&self, k: u64) -> f64 {
        (**self).pmf(k)
    }
    fn mean(&self) -> f64 {
        (**self).mean()
    }
    fn support_min(&self) -> u64 {
        (**self).support_min()
    }
    fn truncation_index(&self, tol: f64) -> u64 {
        (**self).truncation_index(tol)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
