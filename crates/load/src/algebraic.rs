//! Algebraic (power-law) offered load (paper §3.1).

use crate::traits::LoadModel;
use bevra_num::{brent, integrate_to_inf, NeumaierSum, NumError, NumResult};

/// The paper's algebraic load: `P(k) = A / (λ + k^z)` for `k ≥ 1`.
///
/// Like the exponential distribution it decreases over its whole range, but
/// "here the decrease is much slower" — a power-law tail `P(k) ~ A·k^{−z}`.
/// The paper deliberately uses *two* parameters: `λ` shifts mass so the mean
/// can be tuned while the asymptotic exponent `z` stays fixed, and `A`
/// normalizes. The mean exists only for `z > 2`, which is why the paper
/// restricts to that regime; the `z → 2⁺` limit is where reservations'
/// asymptotic advantage is conjectured maximal (`Δ(C) → (e−1)·C`).
///
/// Sums over the infinite support are evaluated as an explicit partial sum
/// plus a midpoint-rule (Euler–Maclaurin) tail integral, which keeps
/// calibration accurate even for `z` close to 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Algebraic {
    /// Tail exponent `z > 2`.
    pub z: f64,
    /// Shift parameter `λ ≥ 0`.
    pub lambda: f64,
    /// Normalization constant `A = 1/Σ 1/(λ + k^z)`.
    norm: f64,
    /// Mean `k̄` (cached at construction).
    mean: f64,
}

/// Explicit-summation horizon before switching to the integral tail.
/// Midpoint-rule error per term is `O(f″/24)`; at `k = 10⁴` and `z ≥ 2.1`
/// that is below 1e−14 relative, far under calibration needs.
const EXPLICIT_HORIZON: u64 = 10_000;

/// Raw sums `S_m(λ) = Σ_{k≥1} k^m / (λ + k^z)` for m = 0, 1.
fn raw_sum(z: f64, lambda: f64, m: u32) -> NumResult<f64> {
    let horizon = EXPLICIT_HORIZON.max((8.0 * lambda.powf(1.0 / z)).ceil() as u64);
    let mut acc = NeumaierSum::new();
    for k in 1..=horizon {
        let kf = k as f64;
        acc.add(kf.powi(m as i32) / (lambda + kf.powf(z)));
    }
    // Midpoint rule: Σ_{k>K} f(k) ≈ ∫_{K+1/2}^∞ f(x) dx.
    let tail = integrate_to_inf(
        |x| x.powi(m as i32) / (lambda + x.powf(z)),
        horizon as f64 + 0.5,
        1e-12,
    )?;
    Ok(acc.total() + tail)
}

impl Algebraic {
    /// Construct from explicit `(z, λ)`, computing the normalization and
    /// mean.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidInput`] unless `z > 2` and `λ ≥ 0`; numeric errors
    /// from the tail integrals are propagated.
    pub fn with_params(z: f64, lambda: f64) -> NumResult<Self> {
        if !(z > 2.0) {
            return Err(NumError::InvalidInput { what: "algebraic load requires z > 2" });
        }
        if !(lambda >= 0.0) {
            return Err(NumError::InvalidInput { what: "lambda must be nonnegative" });
        }
        let s0 = raw_sum(z, lambda, 0)?;
        let s1 = raw_sum(z, lambda, 1)?;
        Ok(Self { z, lambda, norm: 1.0 / s0, mean: s1 / s0 })
    }

    /// Calibrate `λ` so the mean equals `mean`, holding the tail exponent
    /// `z` fixed (the paper's parameterization).
    ///
    /// The mean is strictly increasing in `λ` (larger `λ` flattens the head
    /// of the distribution, pushing mass toward larger `k`), so a bracketed
    /// root-find on `λ` suffices. The smallest achievable mean is the
    /// `λ = 0` pure power law, `ζ(z−1)/ζ(z)`.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidInput`] if `mean` is below the `λ = 0` minimum;
    /// propagates solver failures otherwise.
    pub fn from_mean(z: f64, mean: f64) -> NumResult<Self> {
        let at_zero = Self::with_params(z, 0.0)?;
        if mean < at_zero.mean {
            return Err(NumError::InvalidInput {
                what: "target mean below the lambda = 0 minimum of the algebraic family",
            });
        }
        if (mean - at_zero.mean).abs() < 1e-12 * mean {
            return Ok(at_zero);
        }
        // Mean scales like λ^{1/z} for large λ; bracket by doubling.
        let mean_err = |lambda: f64| -> f64 {
            // Errors inside the closure surface as NaN and abort the solver.
            match Self::with_params(z, lambda) {
                Ok(a) => a.mean - mean,
                Err(_) => f64::NAN,
            }
        };
        let mut hi = mean.powf(z).max(1.0);
        for _ in 0..60 {
            if mean_err(hi) > 0.0 {
                break;
            }
            hi *= 4.0;
        }
        let lambda = brent(mean_err, 0.0, hi, 1e-9 * hi.max(1.0))?;
        Self::with_params(z, lambda)
    }
}

impl LoadModel for Algebraic {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        self.norm / (self.lambda + (k as f64).powf(self.z))
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn support_min(&self) -> u64 {
        1
    }

    fn truncation_index(&self, tol: f64) -> u64 {
        // Tail mean beyond K: Σ_{k>K} A·k/(λ+k^z) ≤ A·K^{2−z}/(z−2) for K
        // past the head. Solve for K; heavy tails can demand enormous K, so
        // saturate and let `Tabulated` record the achieved bound.
        let budget = tol * self.mean.max(1.0);
        let k = (self.norm / ((self.z - 2.0) * budget)).powf(1.0 / (self.z - 2.0));
        if !k.is_finite() || k >= u64::MAX as f64 {
            u64::MAX
        } else {
            (k.ceil() as u64).max(self.support_min() + 1)
        }
    }

    fn name(&self) -> &'static str {
        "algebraic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_power_law_matches_zeta_ratio() {
        // λ = 0, z = 3: mean = ζ(2)/ζ(3) ≈ 1.3684.
        let a = Algebraic::with_params(3.0, 0.0).unwrap();
        let zeta2 = std::f64::consts::PI * std::f64::consts::PI / 6.0;
        let zeta3 = 1.202_056_903_159_594;
        assert!((a.mean() - zeta2 / zeta3).abs() < 1e-8, "mean {}", a.mean());
        // P(1)/P(2) = 2^z = 8.
        assert!((a.pmf(1) / a.pmf(2) - 8.0).abs() < 1e-10);
    }

    #[test]
    fn calibrated_to_paper_mean() {
        let a = Algebraic::from_mean(3.0, 100.0).unwrap();
        assert!((a.mean() - 100.0).abs() < 1e-5, "mean {}", a.mean());
        assert!(a.lambda > 0.0);
        // Tail exponent preserved: P(2k)/P(k) → 2^{−z} for large k.
        let r = a.pmf(200_000) / a.pmf(100_000);
        assert!((r - 0.125).abs() < 1e-6, "tail ratio {r}");
    }

    #[test]
    fn mass_sums_to_one_with_integral_tail() {
        let a = Algebraic::from_mean(3.0, 10.0).unwrap();
        let mut mass = 0.0;
        for k in 1..=2_000_000u64 {
            mass += a.pmf(k);
        }
        // Remaining analytic tail ≈ A·K^{1−z}/(z−1).
        let k = 2_000_000f64;
        mass += a.norm * k.powf(1.0 - a.z) / (a.z - 1.0);
        assert!((mass - 1.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn heavier_tail_calibrates_too() {
        let a = Algebraic::from_mean(2.5, 20.0).unwrap();
        assert!((a.mean() - 20.0).abs() < 1e-4, "mean {}", a.mean());
    }

    #[test]
    fn z_at_most_two_rejected() {
        assert!(Algebraic::with_params(2.0, 1.0).is_err());
        assert!(Algebraic::from_mean(1.5, 10.0).is_err());
    }

    #[test]
    fn mean_below_minimum_rejected() {
        assert!(Algebraic::from_mean(3.0, 1.0).is_err());
    }

    #[test]
    fn truncation_index_scales_with_tolerance() {
        let a = Algebraic::from_mean(3.0, 10.0).unwrap();
        let loose = a.truncation_index(1e-3);
        let tight = a.truncation_index(1e-6);
        // For z = 3, K ~ 1/tol: three orders of magnitude looser tolerance
        // means ~1000x smaller table.
        let ratio = tight as f64 / loose as f64;
        assert!((ratio - 1000.0).abs() < 50.0, "ratio {ratio}");
    }
}
