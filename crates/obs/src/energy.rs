//! Zero-dependency RAPL energy probe over Linux `powercap` sysfs.
//!
//! Intel RAPL (Running Average Power Limit) exposes cumulative package
//! energy counters at `/sys/class/powercap/intel-rapl:<n>/energy_uj`
//! (microjoules, wrapping at `max_energy_range_uj`). Reading them costs
//! two file reads per measurement — no libraries, no daemons — which is
//! exactly the budget an offline bench harness can afford.
//!
//! The probe is **strictly optional**: [`EnergyProbe::open`] returns
//! `None` whenever the hierarchy is absent (non-Linux, containers without
//! sysfs, unreadable counters — they are often root-only), and every
//! downstream consumer treats a missing probe as "no energy column", never
//! as an error. The bench schema (`bevra-bench-v1`) reports
//! `joules_per_sweep: null` in that case and no gate ever keys on it.
//!
//! Only top-level package domains (`intel-rapl:<n>`) are summed;
//! subdomains (`intel-rapl:<n>:<m>`, e.g. `core`/`uncore`/`dram`) nest
//! inside their package counter and would double-count. The mmio mirror
//! hierarchy (`intel-rapl-mmio:*`) duplicates the MSR-backed one and is
//! skipped for the same reason.
//!
//! ```no_run
//! if let Some(probe) = bevra_obs::energy::EnergyProbe::open() {
//!     let reading = probe.begin();
//!     // ... measured region ...
//!     if let Some(joules) = reading.and_then(|r| r.joules()) {
//!         println!("{joules:.3} J");
//!     }
//! }
//! ```

use std::path::{Path, PathBuf};

/// Root of the Linux powercap sysfs hierarchy.
pub const POWERCAP_ROOT: &str = "/sys/class/powercap";

/// One RAPL package domain: its cumulative counter file and wrap range.
#[derive(Debug, Clone)]
struct Domain {
    /// `.../intel-rapl:<n>/energy_uj` — cumulative microjoules.
    energy_path: PathBuf,
    /// Counter wrap range in microjoules (0 when the kernel did not
    /// expose `max_energy_range_uj`; wraps are then unrecoverable).
    max_range_uj: u64,
}

/// A handle over the readable RAPL package domains on this machine.
///
/// Construct via [`EnergyProbe::open`] (production) or
/// [`EnergyProbe::open_at`] (tests, pointed at a fake sysfs tree). The
/// probe holds only paths; every measurement re-reads the counters.
#[derive(Debug, Clone)]
pub struct EnergyProbe {
    domains: Vec<Domain>,
}

/// A snapshot of the package counters at the start of a measured region.
///
/// Obtained from [`EnergyProbe::begin`]; call [`EnergyReading::joules`]
/// at the end of the region to get the energy spent in between.
#[derive(Debug)]
pub struct EnergyReading<'a> {
    probe: &'a EnergyProbe,
    start_uj: Vec<u64>,
}

fn read_u64(path: &Path) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    text.trim().parse::<u64>().ok()
}

impl EnergyProbe {
    /// Open the machine's RAPL hierarchy. `None` when `/sys/class/powercap`
    /// is absent or no package counter is readable — callers report null
    /// energy and carry on.
    #[must_use]
    pub fn open() -> Option<Self> {
        Self::open_at(Path::new(POWERCAP_ROOT))
    }

    /// Open a powercap-shaped tree rooted at `root`. Test seam for
    /// [`EnergyProbe::open`]; same selection rules (top-level
    /// `intel-rapl:<n>` domains only, readable `energy_uj` required).
    #[must_use]
    pub fn open_at(root: &Path) -> Option<Self> {
        let entries = std::fs::read_dir(root).ok()?;
        let mut domains = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !is_package_domain(name) {
                continue;
            }
            let dir = entry.path();
            let energy_path = dir.join("energy_uj");
            // Counters are often root-only; an unreadable domain is as
            // good as an absent one.
            if read_u64(&energy_path).is_none() {
                continue;
            }
            let max_range_uj = read_u64(&dir.join("max_energy_range_uj")).unwrap_or(0);
            domains.push(Domain {
                energy_path,
                max_range_uj,
            });
        }
        if domains.is_empty() {
            return None;
        }
        // Deterministic sum order regardless of read_dir order.
        domains.sort_by(|a, b| a.energy_path.cmp(&b.energy_path));
        Some(Self { domains })
    }

    /// Number of package domains being summed.
    #[must_use]
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Snapshot the counters at the start of a measured region. `None` if
    /// any counter became unreadable since [`EnergyProbe::open`].
    #[must_use]
    pub fn begin(&self) -> Option<EnergyReading<'_>> {
        let mut start_uj = Vec::with_capacity(self.domains.len());
        for d in &self.domains {
            start_uj.push(read_u64(&d.energy_path)?);
        }
        Some(EnergyReading {
            probe: self,
            start_uj,
        })
    }
}

impl EnergyReading<'_> {
    /// Energy spent since [`EnergyProbe::begin`], in joules, summed over
    /// package domains. Corrects at most one counter wrap per domain via
    /// `max_energy_range_uj`; returns `None` when a counter wrapped with
    /// no declared range or became unreadable.
    #[must_use]
    pub fn joules(&self) -> Option<f64> {
        let mut total_uj = 0u64;
        for (d, &start) in self.probe.domains.iter().zip(&self.start_uj) {
            let now = read_u64(&d.energy_path)?;
            let delta = if now >= start {
                now - start
            } else if d.max_range_uj > start {
                // One wrap: distance to the range top, then up to `now`.
                (d.max_range_uj - start).checked_add(now)?
            } else {
                return None;
            };
            total_uj = total_uj.checked_add(delta)?;
        }
        #[allow(clippy::cast_precision_loss)] // ~52-bit µJ budget is years of runtime
        Some(total_uj as f64 * 1e-6)
    }
}

/// Accept exactly `intel-rapl:<digits>` — packages, not subdomains or the
/// mmio mirror hierarchy.
fn is_package_domain(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("intel-rapl:") else {
        return false;
    };
    !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn fake_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bevra-energy-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_domain(root: &Path, name: &str, energy_uj: u64, max_range: Option<u64>) {
        let dir = root.join(name);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("energy_uj"), format!("{energy_uj}\n")).unwrap();
        if let Some(m) = max_range {
            fs::write(dir.join("max_energy_range_uj"), format!("{m}\n")).unwrap();
        }
    }

    #[test]
    fn package_domain_filter() {
        assert!(is_package_domain("intel-rapl:0"));
        assert!(is_package_domain("intel-rapl:12"));
        assert!(!is_package_domain("intel-rapl:0:0"), "subdomain");
        assert!(!is_package_domain("intel-rapl-mmio:0"), "mmio mirror");
        assert!(!is_package_domain("intel-rapl:"), "no index");
        assert!(!is_package_domain("dtpm"), "other powercap driver");
    }

    #[test]
    fn absent_root_yields_none() {
        let root = std::env::temp_dir().join("bevra-energy-definitely-missing");
        assert!(EnergyProbe::open_at(&root).is_none());
    }

    #[test]
    fn empty_or_subdomain_only_root_yields_none() {
        let root = fake_root("empty");
        assert!(EnergyProbe::open_at(&root).is_none(), "no domains");
        write_domain(&root, "intel-rapl:0:0", 10, None);
        write_domain(&root, "intel-rapl-mmio:0", 10, None);
        assert!(
            EnergyProbe::open_at(&root).is_none(),
            "subdomains and mirrors never count as packages"
        );
    }

    #[test]
    fn sums_packages_and_skips_subdomains() {
        let root = fake_root("sum");
        write_domain(&root, "intel-rapl:0", 1_000_000, Some(u64::MAX / 2));
        write_domain(&root, "intel-rapl:1", 5_000_000, Some(u64::MAX / 2));
        write_domain(&root, "intel-rapl:0:0", 999, Some(u64::MAX / 2));
        let probe = EnergyProbe::open_at(&root).unwrap();
        assert_eq!(probe.domain_count(), 2);

        let reading = probe.begin().unwrap();
        write_domain(&root, "intel-rapl:0", 1_500_000, Some(u64::MAX / 2));
        write_domain(&root, "intel-rapl:1", 7_500_000, Some(u64::MAX / 2));
        // Subdomain moves too; it must not contribute.
        write_domain(&root, "intel-rapl:0:0", 2_000_000, Some(u64::MAX / 2));
        let j = reading.joules().unwrap();
        assert!((j - 3.0).abs() < 1e-12, "0.5 J + 2.5 J, got {j}");
    }

    #[test]
    fn counter_wrap_is_corrected_via_max_range() {
        let root = fake_root("wrap");
        write_domain(&root, "intel-rapl:0", 9_000_000, Some(10_000_000));
        let probe = EnergyProbe::open_at(&root).unwrap();
        let reading = probe.begin().unwrap();
        // Counter wrapped at 10 J: 9 → 10 (1 J) then 0 → 2 (2 J).
        write_domain(&root, "intel-rapl:0", 2_000_000, Some(10_000_000));
        let j = reading.joules().unwrap();
        assert!((j - 3.0).abs() < 1e-12, "wrap-corrected 3 J, got {j}");
    }

    #[test]
    fn wrap_without_declared_range_is_none() {
        let root = fake_root("norange");
        write_domain(&root, "intel-rapl:0", 9_000_000, None);
        let probe = EnergyProbe::open_at(&root).unwrap();
        let reading = probe.begin().unwrap();
        write_domain(&root, "intel-rapl:0", 2_000_000, None);
        assert!(reading.joules().is_none(), "unrecoverable wrap");
    }

    #[test]
    fn unreadable_counter_mid_region_is_none() {
        let root = fake_root("gone");
        write_domain(&root, "intel-rapl:0", 1_000, Some(u64::MAX / 2));
        let probe = EnergyProbe::open_at(&root).unwrap();
        let reading = probe.begin().unwrap();
        fs::remove_file(root.join("intel-rapl:0").join("energy_uj")).unwrap();
        assert!(reading.joules().is_none());
    }

    #[test]
    fn open_on_real_machine_never_panics() {
        // Whatever this host has (usually nothing in CI containers), the
        // optional contract holds: Some(probe) must produce a snapshot or
        // cleanly decline.
        if let Some(probe) = EnergyProbe::open() {
            if let Some(r) = probe.begin() {
                let _ = r.joules();
            }
        }
    }
}
