//! Observability substrate for the bevra workspace.
//!
//! One instrumentation surface for every layer — the sweep engine, the
//! flow-level simulator, the network substrate, and the figure binaries —
//! with no external dependencies (the build environment is offline, so the
//! `tracing`/`metrics` crates are unavailable). Three pieces:
//!
//! * [`mod@span`] — hierarchical, thread-aware timing spans. Each thread
//!   buffers its completed spans locally (one short uncontended lock per
//!   top-level record, never a global hot lock), nesting is tracked by a
//!   per-thread stack, and completed spans double as the flat
//!   [`span::StageRecord`] list consumed by the engine's perf reports;
//! * [`metrics`] — a process-global registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and log-bucketed [`metrics::Histogram`]s
//!   (p50/p90/p99 summaries), all plain atomics so recording never
//!   allocates;
//! * [`export`] — exporters over the collected data: a JSONL event
//!   log, a `chrome://tracing`-compatible trace JSON (open it in
//!   [Perfetto](https://ui.perfetto.dev)), a Prometheus-style text
//!   exposition of the metrics registry, and a plain-text summary table
//!   printed by the figure binaries;
//! * [`energy`] — an optional zero-dep RAPL energy probe over
//!   `/sys/class/powercap` (Linux-only; absent or unreadable → `None`,
//!   downstream schemas report null and never gate on it);
//! * [`recorder`] — the always-on flight recorder: bounded per-thread
//!   seqlock rings of structured events (span boundaries, counter deltas,
//!   fault trips, health records, ordered by a logical sequence counter)
//!   drained to a `results/<id>-blackbox.jsonl` black box by a chained
//!   panic hook or at the end of a faulted run. Gated independently by
//!   `BEVRA_RECORDER` (default on; the off path is one relaxed load).
//!
//! # The `BEVRA_OBS` gate
//!
//! Collection depth is controlled by the `BEVRA_OBS` environment variable
//! (read once, overridable programmatically via [`set_level`]):
//!
//! | value               | behaviour                                                                             |
//! |---------------------|---------------------------------------------------------------------------------------|
//! | unset / `off` / `0` | coarse stage timings only; fine-grained metrics and trace events skipped entirely     |
//! | `summary` / `1`     | plus metrics (event counters, occupancy/latency histograms, cache hit rates) + table  |
//! | `trace` / `2`       | plus per-span trace events: `results/<id>-trace.json` and `results/<id>-obs.jsonl`    |
//!
//! Unrecognized values fall back to `off`. Instrumented hot paths (the
//! simulator event loop, per-point sweep timing) guard on [`enabled`] — a
//! single relaxed atomic load — so the default `off` path stays
//! allocation-free and within measurement noise of uninstrumented code
//! (asserted by the `obs` bench).
//!
//! ```
//! use bevra_obs::{enabled, set_level, ObsLevel};
//!
//! set_level(ObsLevel::Summary);
//! let events = bevra_obs::metrics::counter("doc/events");
//! {
//!     let mut sp = bevra_obs::span("doc/stage");
//!     for _ in 0..10 {
//!         if enabled(ObsLevel::Summary) {
//!             events.inc();
//!         }
//!         sp.add_points(1);
//!     }
//! } // span records itself on drop
//! assert_eq!(events.get(), 10);
//! let stage = bevra_obs::drain_stages()
//!     .into_iter()
//!     .find(|s| s.name == "doc/stage")
//!     .expect("stage recorded");
//! assert_eq!(stage.points, 10);
//! set_level(ObsLevel::Off);
//! ```

#![deny(missing_docs)]

pub mod energy;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use span::{drain_stages, drain_trace, set_thread_label, span, Span, SpanEvent, StageRecord};

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the observability level.
pub const OBS_ENV: &str = "BEVRA_OBS";

/// How much the process collects and exports. Levels are ordered:
/// `Off < Summary < Trace`, and each level includes everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsLevel {
    /// Coarse stage timings only (the perf-report baseline); fine-grained
    /// metrics and trace events are skipped. The default.
    Off = 0,
    /// Metrics (counters, gauges, histograms) plus a printed summary table.
    Summary = 1,
    /// Everything: per-span trace events exported as chrome-trace JSON and
    /// a JSONL event log.
    Trace = 2,
}

impl ObsLevel {
    /// Parse the [`OBS_ENV`] (`BEVRA_OBS`) environment variable; unset or
    /// unrecognized values are [`ObsLevel::Off`].
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(OBS_ENV) {
            Ok(v) => Self::parse(&v),
            Err(_) => ObsLevel::Off,
        }
    }

    /// Parse a level string (`off|0`, `summary|1`, `trace|2`,
    /// case-insensitive); anything else is [`ObsLevel::Off`].
    #[must_use]
    pub fn parse(raw: &str) -> Self {
        match raw.trim().to_ascii_lowercase().as_str() {
            "summary" | "1" => ObsLevel::Summary,
            "trace" | "2" => ObsLevel::Trace,
            _ => ObsLevel::Off,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => ObsLevel::Summary,
            2 => ObsLevel::Trace,
            _ => ObsLevel::Off,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const LEVEL_UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// The process's current observability level. First call reads
/// [`OBS_ENV`]; afterwards this is a single relaxed atomic load.
#[must_use]
pub fn level() -> ObsLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNINIT {
        return ObsLevel::from_u8(v);
    }
    let from_env = ObsLevel::from_env();
    // Racing initializers read the same environment, so either store wins
    // with the same value; a concurrent set_level wins over the env.
    let _ = LEVEL.compare_exchange(
        LEVEL_UNINIT,
        from_env as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    ObsLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Override the observability level for the rest of the process (benches
/// and tests; figure binaries just set `BEVRA_OBS`).
pub fn set_level(l: ObsLevel) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether collection at `l` (or deeper) is currently on — the hot-path
/// guard: one relaxed atomic load, no allocation.
#[inline]
#[must_use]
pub fn enabled(l: ObsLevel) -> bool {
    level() >= l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(ObsLevel::Off < ObsLevel::Summary);
        assert!(ObsLevel::Summary < ObsLevel::Trace);
    }

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(ObsLevel::parse("off"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse("0"), ObsLevel::Off);
        assert_eq!(ObsLevel::parse(" Summary "), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse("1"), ObsLevel::Summary);
        assert_eq!(ObsLevel::parse("TRACE"), ObsLevel::Trace);
        assert_eq!(ObsLevel::parse("2"), ObsLevel::Trace);
        assert_eq!(ObsLevel::parse("verbose"), ObsLevel::Off, "unknown → off");
        assert_eq!(ObsLevel::parse(""), ObsLevel::Off);
    }

    #[test]
    fn roundtrip_u8() {
        for l in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Trace] {
            assert_eq!(ObsLevel::from_u8(l as u8), l);
        }
    }
}
