//! Hierarchical, thread-aware timing spans with per-thread buffers.
//!
//! [`span`] opens a named span on the calling thread; dropping the guard
//! records it. Each thread owns a registered sink (an `Arc<Mutex<…>>`
//! touched only by that thread and the drainer, so effectively
//! uncontended), and nesting is tracked by a per-thread stack: a span
//! opened while another is live records its parent's name and its depth,
//! which the chrome-trace exporter renders as nested slices per thread
//! track.
//!
//! Completed spans are stored twice:
//!
//! * always as a flat [`StageRecord`] (name, seconds, points) — the
//!   backwards-compatible perf-report surface drained by
//!   [`drain_stages`];
//! * additionally, when [`crate::ObsLevel::Trace`] is on, as a
//!   [`SpanEvent`] carrying thread id, depth, parent, and
//!   epoch-relative timestamps — drained by [`drain_trace`] and exported
//!   by [`crate::export`].
//!
//! # Panic safety
//!
//! Recording happens in `Drop`, which may run during unwinding; a panic
//! there would abort the process. Every lock on the record path therefore
//! degrades instead of panicking: a poisoned sink drops the record, and
//! the drain functions recover whatever survived via
//! [`std::sync::PoisonError::into_inner`].

use crate::recorder::{self, EventKind};
use crate::{enabled, ObsLevel};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One completed span, flattened for perf reports: the paper-era
/// `StageRecord` surface (re-exported by `bevra_engine::instrument`).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name, e.g. `"sweep/points"` or `"welfare/gamma"`.
    pub name: String,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Grid points (or other work units) the stage evaluated.
    pub points: u64,
}

impl StageRecord {
    /// Throughput in points per second.
    ///
    /// Zero-duration stages (timer granularity) that evaluated points
    /// return [`f64::INFINITY`] rather than a misleading 0; stages with no
    /// points return 0.0.
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.points as f64 / self.seconds
        } else if self.points > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// One completed span with full trace context (collected at
/// [`ObsLevel::Trace`] only).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Observability thread id (small integers assigned in first-span
    /// order, stable for the thread's lifetime).
    pub tid: u64,
    /// Nesting depth on its thread (0 = top level).
    pub depth: u32,
    /// Name of the enclosing span on the same thread, if any.
    pub parent: Option<String>,
    /// Start time in microseconds since the process's trace epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Work units attributed via [`Span::add_points`].
    pub points: u64,
}

#[derive(Debug, Default)]
struct SinkData {
    stages: Vec<StageRecord>,
    traces: Vec<SpanEvent>,
}

/// Per-thread buffer of completed spans, registered globally so drains can
/// collect across threads. Only its owning thread pushes; only drains read.
#[derive(Debug, Default)]
struct ThreadSink {
    data: Mutex<SinkData>,
}

/// All per-thread sinks ever registered (threads are few and sinks are
/// small; they are never unregistered).
static SINKS: Mutex<Vec<Arc<ThreadSink>>> = Mutex::new(Vec::new());

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Human-readable labels for observability thread ids, set via
/// [`set_thread_label`] and rendered by the chrome-trace exporter as
/// `thread_name` metadata (so Perfetto shows `engine-shard-3` instead of
/// a bare tid).
static LABELS: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

struct ThreadState {
    sink: Arc<ThreadSink>,
    tid: u64,
    /// Names of the spans currently open on this thread, bottom-up.
    stack: Vec<String>,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// The process's trace epoch: all [`SpanEvent::start_us`] timestamps are
/// relative to the first instrumentation touch.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Lock, recovering the guard from a poisoned mutex instead of panicking
/// (safe here: sink/registry payloads are plain `Vec`s, never left in a
/// torn state by the push/take operations performed under the lock).
fn recover<'a, T: ?Sized>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// An open timing span. Created by [`span`]; records itself into its
/// thread's buffer on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    points: u64,
    start: Instant,
    start_us: f64,
    depth: u32,
    parent: Option<String>,
    tid: u64,
    sink: Arc<ThreadSink>,
}

impl Span {
    /// Attribute `n` more evaluated points to this span.
    pub fn add_points(&mut self, n: u64) {
        self.points += n;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let seconds = self.start.elapsed().as_secs_f64();
        // Pop this span's frame (defensively: only if it is still the top,
        // which it is unless the guard was moved across threads). try_with
        // + try_borrow_mut so a drop during thread teardown or inside
        // another span operation never panics.
        let _ = STATE.try_with(|cell| {
            if let Ok(mut st) = cell.try_borrow_mut() {
                if let Some(st) = st.as_mut() {
                    if st.stack.last() == Some(&self.name) {
                        st.stack.pop();
                    }
                }
            }
        });
        let record = StageRecord {
            name: std::mem::take(&mut self.name),
            seconds,
            points: self.points,
        };
        recorder::record(EventKind::SpanExit, &record.name, self.points, 0);
        // A poisoned sink drops the record: never panic in Drop (a panic
        // while unwinding aborts the process).
        if let Ok(mut data) = self.sink.data.lock() {
            if enabled(ObsLevel::Trace) {
                data.traces.push(SpanEvent {
                    name: record.name.clone(),
                    tid: self.tid,
                    depth: self.depth,
                    parent: self.parent.take(),
                    start_us: self.start_us,
                    dur_us: seconds * 1e6,
                    points: self.points,
                });
            }
            data.stages.push(record);
        }
    }
}

/// Open a named timing span on the current thread; it records itself when
/// dropped. Nested calls record parent/child structure automatically.
#[must_use]
pub fn span(name: impl Into<String>) -> Span {
    let name = name.into();
    let ep = epoch();
    recorder::record(EventKind::SpanEnter, &name, 0, 0);
    STATE.with(|cell| {
        let mut borrow = cell.borrow_mut();
        let st = borrow.get_or_insert_with(new_thread_state);
        let depth = st.stack.len() as u32;
        let parent = st.stack.last().cloned();
        st.stack.push(name.clone());
        let start = Instant::now();
        Span {
            name,
            points: 0,
            start,
            start_us: start.duration_since(ep).as_secs_f64() * 1e6,
            depth,
            parent,
            tid: st.tid,
            sink: Arc::clone(&st.sink),
        }
    })
}

fn new_thread_state() -> ThreadState {
    let sink = Arc::new(ThreadSink::default());
    recover(SINKS.lock()).push(Arc::clone(&sink));
    ThreadState {
        sink,
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
    }
}

/// Label the current thread's observability track (e.g.
/// `engine-shard-3`); the chrome-trace exporter emits it as `thread_name`
/// metadata. Registers the thread (assigning its tid) if it has no spans
/// yet; relabeling overwrites.
pub fn set_thread_label(label: impl Into<String>) {
    let label = label.into();
    let Ok(tid) = STATE.try_with(|cell| {
        let mut borrow = cell.borrow_mut();
        borrow.get_or_insert_with(new_thread_state).tid
    }) else {
        return;
    };
    let mut labels = recover(LABELS.lock());
    if let Some(entry) = labels.iter_mut().find(|(t, _)| *t == tid) {
        entry.1 = label;
    } else {
        labels.push((tid, label));
    }
}

/// All `(tid, label)` pairs registered via [`set_thread_label`], in
/// registration order. Labels persist across drains (a relabeled tid keeps
/// its latest label).
#[must_use]
pub fn thread_labels() -> Vec<(u64, String)> {
    recover(LABELS.lock()).clone()
}

/// Remove and return every completed stage recorded since the last drain,
/// across all threads (per thread in completion order). Poisoned buffers
/// are recovered, not propagated.
#[must_use]
pub fn drain_stages() -> Vec<StageRecord> {
    let sinks: Vec<Arc<ThreadSink>> = recover(SINKS.lock()).clone();
    let mut out = Vec::new();
    for sink in sinks {
        out.append(&mut recover(sink.data.lock()).stages);
    }
    out
}

/// Remove and return every trace event recorded since the last drain,
/// across all threads. Empty unless [`ObsLevel::Trace`] was on while spans
/// completed. Poisoned buffers are recovered, not propagated.
#[must_use]
pub fn drain_trace() -> Vec<SpanEvent> {
    let sinks: Vec<Arc<ThreadSink>> = recover(SINKS.lock()).clone();
    let mut out = Vec::new();
    for sink in sinks {
        out.append(&mut recover(sink.data.lock()).traces);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_level;

    /// Serializes tests that drain or inspect the global span buffers, so
    /// parallel test threads cannot steal each other's records.
    fn guard() -> MutexGuard<'static, ()> {
        static TEST_GUARD: Mutex<()> = Mutex::new(());
        recover(TEST_GUARD.lock())
    }

    #[test]
    fn points_per_sec_edges() {
        let worked = StageRecord { name: "s".into(), seconds: 0.0, points: 7 };
        assert_eq!(worked.points_per_sec(), f64::INFINITY, "zero-duration stage with work");
        let empty = StageRecord { name: "s".into(), seconds: 0.0, points: 0 };
        assert_eq!(empty.points_per_sec(), 0.0, "empty stage stays 0");
        let normal = StageRecord { name: "s".into(), seconds: 2.0, points: 100 };
        assert!((normal.points_per_sec() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn span_records_on_drop_and_drains() {
        let _g = guard();
        {
            let mut s = span("obs-test/stage");
            s.add_points(42);
        }
        let stages = drain_stages();
        let rec = stages
            .iter()
            .find(|r| r.name == "obs-test/stage")
            .expect("span recorded");
        assert_eq!(rec.points, 42);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let _g = guard();
        set_level(ObsLevel::Trace);
        {
            let _outer = span("obs-nest/outer");
            {
                let _inner = span("obs-nest/inner");
            }
        }
        set_level(ObsLevel::Off);
        let traces = drain_trace();
        let inner = traces
            .iter()
            .find(|e| e.name == "obs-nest/inner")
            .expect("inner traced");
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent.as_deref(), Some("obs-nest/outer"));
        let outer = traces
            .iter()
            .find(|e| e.name == "obs-nest/outer")
            .expect("outer traced");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.tid, inner.tid, "same thread track");
        assert!(outer.dur_us >= inner.dur_us, "parent encloses child");
        assert!(inner.start_us >= outer.start_us);
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let _g = guard();
        set_level(ObsLevel::Trace);
        let here = {
            let _s = span("obs-tid/main");
            STATE.with(|c| c.borrow().as_ref().expect("state registered").tid)
        };
        let there = std::thread::spawn(|| {
            let _s = span("obs-tid/worker");
            STATE.with(|c| c.borrow().as_ref().expect("state registered").tid)
        })
        .join()
        .expect("worker ran");
        set_level(ObsLevel::Off);
        assert_ne!(here, there, "each thread has its own track id");
        let traces = drain_trace();
        assert!(traces.iter().any(|e| e.name == "obs-tid/worker" && e.tid == there));
    }

    #[test]
    fn trace_disabled_means_no_events() {
        let _g = guard();
        // Level is Off by default in the test env (or restored by other
        // tests); the stages surface still works.
        {
            let _s = span("obs-off/stage");
        }
        // Draining stages must find the record whether or not trace events
        // were collected by concurrently-running tests.
        assert!(drain_stages().iter().any(|r| r.name == "obs-off/stage"));
    }

    #[test]
    fn poisoned_sink_drops_record_and_drain_recovers() {
        let _g = guard();
        // All on a dedicated thread so no other test's sink is touched.
        std::thread::spawn(|| {
            {
                let _s = span("obs-poison/before");
            }
            let sink =
                STATE.with(|c| Arc::clone(&c.borrow().as_ref().expect("registered").sink));
            // Poison this thread's sink from a helper thread.
            let poisoner = Arc::clone(&sink);
            let _ = std::thread::spawn(move || {
                let _guard = poisoner.data.lock().expect("first lock");
                panic!("poison the sink");
            })
            .join();
            assert!(sink.data.lock().is_err(), "sink is poisoned");
            // Dropping a span on the poisoned sink must NOT panic; the
            // record is silently dropped.
            {
                let _s = span("obs-poison/lost");
            }
            // The earlier record survives and is recoverable.
            let data = recover(sink.data.lock());
            assert!(data.stages.iter().any(|r| r.name == "obs-poison/before"));
            assert!(!data.stages.iter().any(|r| r.name == "obs-poison/lost"));
        })
        .join()
        .expect("no panic leaked from the poisoned-sink path");
    }
}
