//! Exporters over the collected spans and metrics: chrome-trace JSON,
//! JSONL event log, and a plain-text summary table.
//!
//! The chrome-trace output follows the [Trace Event Format] (`"X"`
//! complete events, microsecond timestamps, one `tid` track per
//! instrumented thread) and loads directly in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Figure binaries call [`export_run`], which consults [`crate::level`]:
//! nothing happens at `Off`, the summary table and Prometheus text
//! exposition are produced at `Summary`, and the trace/JSONL files are
//! additionally written at `Trace`.

use crate::metrics::{self, MetricsSnapshot};
use crate::span::{drain_trace, SpanEvent};
use crate::ObsLevel;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number: shortest-round-trip for finite values, `null` for NaN/Inf
/// (JSON has neither).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Serialize span events as `chrome://tracing`-compatible trace JSON:
/// complete `"X"` events plus `process_name`/`thread_name` metadata, one
/// track per instrumented thread. Threads labeled via
/// [`crate::set_thread_label`] (e.g. the engine pool's `engine-shard-N`
/// workers) show their label in Perfetto; unlabeled threads fall back to
/// `bevra-thread-<tid>`.
#[must_use]
pub fn trace_json(events: &[SpanEvent]) -> String {
    let labels = crate::span::thread_labels();
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    push(
        "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
         \"args\": {\"name\": \"bevra\"}}"
            .to_string(),
        &mut first,
    );
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let label = labels
            .iter()
            .find(|(t, _)| *t == tid)
            .map_or_else(|| format!("bevra-thread-{tid}"), |(_, l)| l.clone());
        push(
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{}\"}}}}",
                esc(&label),
            ),
            &mut first,
        );
    }
    for e in events {
        push(
            format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {tid}, \"name\": \"{name}\", \
                 \"cat\": \"bevra\", \"ts\": {ts}, \"dur\": {dur}, \
                 \"args\": {{\"points\": {points}, \"depth\": {depth}, \"parent\": {parent}}}}}",
                tid = e.tid,
                name = esc(&e.name),
                ts = jnum(e.start_us),
                dur = jnum(e.dur_us),
                points = e.points,
                depth = e.depth,
                parent = e
                    .parent
                    .as_deref()
                    .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", esc(p))),
            ),
            &mut first,
        );
    }
    out.push_str("\n]\n}\n");
    out
}

/// Serialize span events plus a metrics snapshot as a JSONL event log:
/// one self-describing JSON object per line (`"type"` discriminates
/// `span` / `counter` / `gauge` / `histogram` / `windowed` / `rate`).
#[must_use]
pub fn jsonl(events: &[SpanEvent], snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"type\": \"span\", \"name\": \"{}\", \"tid\": {}, \"depth\": {}, \
             \"parent\": {}, \"start_us\": {}, \"dur_us\": {}, \"points\": {}}}",
            esc(&e.name),
            e.tid,
            e.depth,
            e.parent
                .as_deref()
                .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", esc(p))),
            jnum(e.start_us),
            jnum(e.dur_us),
            e.points,
        );
    }
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "{{\"type\": \"counter\", \"name\": \"{}\", \"value\": {v}}}", esc(name));
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\": \"gauge\", \"name\": \"{}\", \"value\": {}}}",
            esc(name),
            jnum(*v)
        );
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"type\": \"histogram\", \"name\": \"{}\", \"count\": {}, \"mean\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            esc(name),
            h.count,
            jnum(h.mean),
            jnum(h.p50),
            jnum(h.p90),
            jnum(h.p99),
        );
    }
    for (name, h) in &snap.windowed {
        let _ = writeln!(
            out,
            "{{\"type\": \"windowed\", \"name\": \"{}\", \"count\": {}, \"mean\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            esc(name),
            h.count,
            jnum(h.mean),
            jnum(h.p50),
            jnum(h.p90),
            jnum(h.p99),
        );
    }
    for (name, v) in &snap.rates {
        let _ = writeln!(
            out,
            "{{\"type\": \"rate\", \"name\": \"{}\", \"per_sec\": {}}}",
            esc(name),
            jnum(*v)
        );
    }
    out
}

/// Render a metrics snapshot as a plain-text table (the `summary` level's
/// stdout output). Empty string when nothing was recorded.
#[must_use]
pub fn summary_table(snap: &MetricsSnapshot) -> String {
    if snap.is_empty() {
        return String::new();
    }
    let mut out = String::from("== observability summary ==\n");
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<44} {v:>14}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<44} {v:>14.6}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (count / mean / p50 / p90 / p99):\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {name:<44} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                h.count, h.mean, h.p50, h.p90, h.p99
            );
        }
    }
    if !snap.windowed.is_empty() {
        out.push_str("windowed histograms (count / mean / p50 / p90 / p99):\n");
        for (name, h) in &snap.windowed {
            let _ = writeln!(
                out,
                "  {name:<44} {:>10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
                h.count, h.mean, h.p50, h.p90, h.p99
            );
        }
    }
    if !snap.rates.is_empty() {
        out.push_str("rates (events/sec):\n");
        for (name, v) in &snap.rates {
            let _ = writeln!(out, "  {name:<44} {v:>14.3}");
        }
    }
    out
}

/// What [`export_run`] produced for one run.
#[derive(Debug, Default)]
pub struct RunExport {
    /// Path of the chrome-trace JSON, when written (`Trace` level).
    pub trace_path: Option<PathBuf>,
    /// Path of the JSONL event log, when written (`Trace` level).
    pub jsonl_path: Option<PathBuf>,
    /// Path of the Prometheus text exposition, when written (`Summary`+).
    pub prom_path: Option<PathBuf>,
    /// Rendered summary table, when collection was on (`Summary`+) and
    /// metrics exist.
    pub summary: Option<String>,
}

/// Export everything collected for run `id` into `dir` according to the
/// current [`crate::level`]: at `Off` this is a no-op; at `Summary` the
/// metrics summary table is rendered and the registry is written as a
/// Prometheus text exposition (`<id>-metrics.prom`); at `Trace` the
/// buffered span events are additionally drained and written as
/// `<id>-trace.json` + `<id>-obs.jsonl`.
///
/// # Errors
///
/// Propagates I/O failures creating `dir` or writing the export files.
pub fn export_run(id: &str, dir: &Path) -> std::io::Result<RunExport> {
    let level = crate::level();
    let mut out = RunExport::default();
    if level < ObsLevel::Summary {
        return Ok(out);
    }
    let snap = metrics::snapshot();
    std::fs::create_dir_all(dir)?;
    let prom = metrics::prometheus_text();
    if !prom.is_empty() {
        let prom_path = dir.join(format!("{id}-metrics.prom"));
        bevra_faults::atomic_write("obs/prom", &prom_path, prom.as_bytes())?;
        out.prom_path = Some(prom_path);
    }
    if level >= ObsLevel::Trace {
        let events = drain_trace();
        // Atomic writes (temp + rename): an interrupted export leaves the
        // previous trace/log complete instead of a truncated JSON file.
        let trace_path = dir.join(format!("{id}-trace.json"));
        bevra_faults::atomic_write("obs/trace", &trace_path, trace_json(&events).as_bytes())?;
        let jsonl_path = dir.join(format!("{id}-obs.jsonl"));
        bevra_faults::atomic_write("obs/jsonl", &jsonl_path, jsonl(&events, &snap).as_bytes())?;
        out.trace_path = Some(trace_path);
        out.jsonl_path = Some(jsonl_path);
    }
    let table = summary_table(&snap);
    if !table.is_empty() {
        out.summary = Some(table);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "sweep/points".into(),
                tid: 1,
                depth: 0,
                parent: None,
                start_us: 10.0,
                dur_us: 250.5,
                points: 48,
            },
            SpanEvent {
                name: "welfare/gamma".into(),
                tid: 2,
                depth: 1,
                parent: Some("sweep/points".into()),
                start_us: 20.0,
                dur_us: 100.0,
                points: 24,
            },
        ]
    }

    #[test]
    fn trace_json_shape() {
        let json = trace_json(&sample_events());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"sweep/points\""));
        assert!(json.contains("\"parent\": \"sweep/points\""));
        assert!(json.contains("\"tid\": 2"));
        assert!(json.contains("thread_name"));
        assert!(json.contains("process_name"));
        assert!(json.contains("\"name\": \"bevra\""));
        // Balanced braces/brackets — cheap structural sanity (the report
        // crate parses this output with its real JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn trace_json_empty_is_valid() {
        // Even with no span events the process_name metadata line remains.
        let json = trace_json(&[]);
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\": \"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let snap = MetricsSnapshot {
            counters: vec![("sim/admitted".into(), 12)],
            gauges: vec![("cache/hit_rate".into(), 0.75)],
            histograms: vec![(
                "sim/occupancy".into(),
                HistogramSummary { count: 5, mean: 2.0, p50: 1.5, p90: 3.0, p99: 3.0 },
            )],
            windowed: vec![(
                "serve/latency".into(),
                HistogramSummary { count: 2, mean: 4.0, p50: 3.0, p90: 6.0, p99: 6.0 },
            )],
            rates: vec![("serve/arrivals".into(), 1.25)],
        };
        let log = jsonl(&sample_events(), &snap);
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(
            lines.len(),
            7,
            "2 spans + 1 counter + 1 gauge + 1 histogram + 1 windowed + 1 rate"
        );
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line}");
        }
        assert!(log.contains("\"type\": \"histogram\""));
        assert!(log.contains("\"type\": \"windowed\""));
        assert!(log.contains("\"type\": \"rate\""));
    }

    #[test]
    fn summary_table_renders_sections() {
        let snap = MetricsSnapshot {
            counters: vec![("net/admitted".into(), 3)],
            rates: vec![("net/arrivals".into(), 0.5)],
            ..MetricsSnapshot::default()
        };
        let table = summary_table(&snap);
        assert!(table.contains("observability summary"));
        assert!(table.contains("net/admitted"));
        assert!(table.contains("rates (events/sec):"));
        assert!(!table.contains("gauges:"), "empty sections omitted");
        assert!(summary_table(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(jnum(f64::INFINITY), "null");
        assert_eq!(jnum(f64::NAN), "null");
        assert_eq!(jnum(1.5), "1.5");
    }
}
