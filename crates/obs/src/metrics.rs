//! Process-global metrics registry: counters, gauges, and log-bucketed
//! histograms.
//!
//! Handles are `Arc`s resolved by name once (outside hot loops); recording
//! is then plain relaxed atomics — no allocation, no locking — so
//! instrumented hot paths stay cheap even when collection is on, and can
//! be skipped entirely behind [`crate::enabled`] when it is off.
//!
//! Histograms bucket by the base-2 logarithm of the recorded value (64
//! buckets cover the full `u64` range), which is exact enough for the
//! latency/occupancy distributions tracked here while keeping recording a
//! single `fetch_add`. Quantiles (p50/p90/p99) are estimated as the
//! geometric midpoint of the bucket containing the requested rank.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Record the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Last recorded value (0.0 if never set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Bucket count: value `v` lands in bucket `64 − leading_zeros(v)`, i.e.
/// bucket 0 holds exactly 0, bucket `k ≥ 1` holds `[2^(k−1), 2^k)`.
const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Geometric midpoint representative of a bucket.
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            0.0
        } else {
            // Bucket k covers [2^(k−1), 2^k): representative √2·2^(k−1).
            std::f64::consts::SQRT_2 * (bucket as f64 - 1.0).exp2()
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty; wraps only past 2⁶⁴
    /// aggregate, far beyond any run here).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`): the representative
    /// value of the bucket containing the requested rank. 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (bucket, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                return Self::representative(bucket);
            }
        }
        Self::representative(BUCKETS - 1)
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time summary of one [`Histogram`] for exporters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Point-in-time view of every registered metric, names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Whether no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn recover<'a, T: ?Sized>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name` (created on first use). Resolve
/// once and reuse the handle in hot loops.
#[must_use]
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = recover(registry().counters.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The gauge registered under `name` (created on first use).
#[must_use]
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = recover(registry().gauges.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The histogram registered under `name` (created on first use). Resolve
/// once and reuse the handle in hot loops.
#[must_use]
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = recover(registry().histograms.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// Snapshot every registered metric (names sorted by the registry's
/// `BTreeMap` ordering, so output is deterministic).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: recover(reg.counters.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: recover(reg.gauges.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        histograms: recover(reg.histograms.lock())
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSummary {
                        count: v.count(),
                        mean: v.mean(),
                        p50: v.quantile(0.50),
                        p90: v.quantile(0.90),
                        p99: v.quantile(0.99),
                    },
                )
            })
            .collect(),
    }
}

/// Zero every registered metric in place (handles held by callers stay
/// valid). For benches and tests.
pub fn reset_all() {
    let reg = registry();
    for c in recover(reg.counters.lock()).values() {
        c.reset();
    }
    for g in recover(reg.gauges.lock()).values() {
        g.reset();
    }
    for h in recover(reg.histograms.lock()).values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global registry (reset_all would
    /// otherwise race with concurrent assertions).
    fn guard() -> MutexGuard<'static, ()> {
        static TEST_GUARD: Mutex<()> = Mutex::new(());
        recover(TEST_GUARD.lock())
    }

    #[test]
    fn counter_counts() {
        let _g = guard();
        let c = counter("test/metrics/counter");
        c.reset();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying counter.
        assert_eq!(counter("test/metrics/counter").get(), 5);
    }

    #[test]
    fn gauge_holds_last_value() {
        let _g = guard();
        let g = gauge("test/metrics/gauge");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 90 small samples and 10 large ones: p50 sits in the small
        // bucket, p99 in the large one.
        for _ in 0..90 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((524_288.0..1_048_576.0).contains(&p99), "p99 {p99}");
        assert!((h.mean() - (90.0 * 100.0 + 10.0 * 1e6) / 100.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0.0, "zero bucket represents as 0");
        h.record(u64::MAX);
        let p99 = h.quantile(0.99);
        assert!(p99 > 1e18, "top bucket representative {p99}");
    }

    #[test]
    fn snapshot_is_sorted_and_resettable() {
        let _g = guard();
        counter("test/snap/b").add(2);
        counter("test/snap/a").add(1);
        gauge("test/snap/g").set(3.5);
        histogram("test/snap/h").record(8);
        let snap = snapshot();
        assert!(!snap.is_empty());
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters sorted by name");
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test/snap/h")
            .expect("histogram snapshotted");
        assert_eq!(h.count, 1);
        reset_all();
        assert_eq!(counter("test/snap/b").get(), 0);
        assert_eq!(gauge("test/snap/g").get(), 0.0);
        assert_eq!(histogram("test/snap/h").count(), 0);
    }
}
