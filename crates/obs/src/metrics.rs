//! Process-global metrics registry: counters, gauges, and log-bucketed
//! histograms.
//!
//! Handles are `Arc`s resolved by name once (outside hot loops); recording
//! is then plain relaxed atomics — no allocation, no locking — so
//! instrumented hot paths stay cheap even when collection is on, and can
//! be skipped entirely behind [`crate::enabled`] when it is off.
//!
//! Histograms bucket by the base-2 logarithm of the recorded value (64
//! buckets cover the full `u64` range), which is exact enough for the
//! latency/occupancy distributions tracked here while keeping recording a
//! single `fetch_add`. Quantiles (p50/p90/p99) locate the bucket holding
//! the requested rank and interpolate linearly inside it, so estimates are
//! not rounded to bucket representatives (powers of two).
//!
//! For the serving path (the `bevra-serve` load estimator) two windowed
//! primitives sit alongside the cumulative ones: [`WindowedHistogram`]
//! (a rotating ring of fixed-width time windows, each a full log₂
//! histogram) and [`DecayingRate`] (an exponentially decaying events/sec
//! gauge). [`prometheus_text`] renders the whole registry in the
//! Prometheus text exposition format.

use crate::recorder::{self, EventKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Counters resolved via [`tracked_counter`] additionally feed every delta
/// to the flight recorder as an [`EventKind::CounterDelta`] event — meant
/// for low-rate structural counters (health tallies, cache traffic), not
/// per-event hot-loop counters.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
    /// Interned recorder site id + 1; 0 = not tracked.
    site: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let total = self.value.fetch_add(n, Ordering::Relaxed).wrapping_add(n);
        let site = self.site.load(Ordering::Relaxed);
        if site != 0 {
            recorder::record_id(EventKind::CounterDelta, (site - 1) as u32, n, total);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Record the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Last recorded value (0.0 if never set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Bucket count: value `v` lands in bucket `64 − leading_zeros(v)`, i.e.
/// bucket 0 holds exactly 0, bucket `k ≥ 1` holds `[2^(k−1), 2^k)`.
const BUCKETS: usize = 65;

/// A lock-free log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Geometric midpoint representative of a bucket.
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            0.0
        } else {
            // Bucket k covers [2^(k−1), 2^k): representative √2·2^(k−1).
            std::f64::consts::SQRT_2 * (bucket as f64 - 1.0).exp2()
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty; wraps only past 2⁶⁴
    /// aggregate, far beyond any run here).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`): locates the bucket
    /// containing the requested rank, then interpolates linearly between the
    /// bucket's bounds by the rank's position among the bucket's samples —
    /// so a p99 inside a wide high bucket no longer rounds to a power of
    /// two. 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (bucket, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                if bucket == 0 {
                    return 0.0;
                }
                // Bucket k covers [2^(k−1), 2^k); place the rank at the
                // midpoint of its within-bucket sample slot.
                let lo = (bucket as f64 - 1.0).exp2();
                let hi = (bucket as f64).exp2();
                let frac = ((target - cum) as f64 - 0.5) / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        Self::representative(BUCKETS - 1)
    }

    fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time summary of one [`Histogram`] for exporters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarize a histogram (count, mean, interpolated p50/p90/p99).
    #[must_use]
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
        }
    }
}

/// Default [`WindowedHistogram`] window width.
pub const WINDOW_WIDTH_MS: u64 = 1_000;

/// Windows retained by a [`WindowedHistogram`].
pub const WINDOW_SLOTS: usize = 4;

/// One rotating window: a full log₂ histogram stamped with the epoch
/// (window index) it currently holds. `stamp` is epoch + 1; 0 = empty.
#[derive(Debug)]
struct WindowSlot {
    stamp: AtomicU64,
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for WindowSlot {
    fn default() -> Self {
        Self {
            stamp: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl WindowSlot {
    fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A rotating ring of [`WINDOW_SLOTS`] fixed-width time windows, each a
/// full log₂ histogram — the "what happened in the last few seconds" view
/// a load estimator reads, as opposed to [`Histogram`]'s
/// since-process-start view.
///
/// Rotation is lock-free and approximate by design: the first recorder to
/// touch a new window claims its slot with a CAS and clears it; a sample
/// racing with that clear may be dropped or double-cleared. Windowed
/// metrics feed trend estimation, not accounting, so losing a sample at a
/// window boundary is acceptable (and bounded: one sample per thread per
/// rotation).
#[derive(Debug)]
pub struct WindowedHistogram {
    width_ms: u64,
    origin: Instant,
    windows: [WindowSlot; WINDOW_SLOTS],
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::with_width(WINDOW_WIDTH_MS)
    }
}

impl WindowedHistogram {
    /// A windowed histogram with `width_ms`-wide windows (minimum 1 ms).
    #[must_use]
    pub fn with_width(width_ms: u64) -> Self {
        Self {
            width_ms: width_ms.max(1),
            origin: Instant::now(),
            windows: std::array::from_fn(|_| WindowSlot::default()),
        }
    }

    /// The window epoch (index since construction) containing "now".
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX) / self.width_ms
    }

    /// Record one sample into the current wall-clock window.
    pub fn record(&self, v: u64) {
        self.record_at(self.current_epoch(), v);
    }

    /// Record one sample into window `epoch` — the deterministic test hook
    /// (and the entry point for callers that track logical time). Samples
    /// older than the resident window of their slot are dropped.
    pub fn record_at(&self, epoch: u64, v: u64) {
        let idx = (epoch % WINDOW_SLOTS as u64) as usize;
        let Some(slot) = self.windows.get(idx) else { return };
        let stamp = epoch + 1;
        let resident = slot.stamp.load(Ordering::Relaxed);
        if resident != stamp {
            if resident > stamp {
                return; // sample from an already-rotated-out window
            }
            if slot
                .stamp
                .compare_exchange(resident, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.clear();
            }
            if slot.stamp.load(Ordering::Relaxed) != stamp {
                return;
            }
        }
        slot.counts[Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        slot.total.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge the live windows into one cumulative [`Histogram`] (used by
    /// the summary and Prometheus paths).
    #[must_use]
    pub fn merged(&self) -> Histogram {
        let h = Histogram::default();
        for w in &self.windows {
            if w.stamp.load(Ordering::Relaxed) == 0 {
                continue;
            }
            for (i, c) in w.counts.iter().enumerate() {
                h.counts[i].fetch_add(c.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            h.total.fetch_add(w.total.load(Ordering::Relaxed), Ordering::Relaxed);
            h.sum.fetch_add(w.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h
    }

    /// Summary over the live windows (the last [`WINDOW_SLOTS`] ×
    /// window-width span).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::of(&self.merged())
    }

    fn reset(&self) {
        for w in &self.windows {
            w.stamp.store(0, Ordering::Relaxed);
            w.clear();
        }
    }
}

/// Default [`DecayingRate`] time constant.
pub const RATE_TAU_MS: u64 = 10_000;

/// An exponentially decaying events-per-second gauge: each observation
/// adds `n/τ` to the estimate after decaying it by `e^(−Δt/τ)`, so the
/// estimate tracks the recent arrival rate and halves every `τ·ln 2` of
/// silence. Discretization biases the steady-state estimate high by at
/// most `Δt/2τ` for inter-arrival gap `Δt` — fine for load estimation.
#[derive(Debug)]
pub struct DecayingRate {
    tau_ms: u64,
    origin: Instant,
    /// `(decayed rate in events/sec, timestamp ms of last decay)`.
    state: Mutex<(f64, u64)>,
}

impl Default for DecayingRate {
    fn default() -> Self {
        Self::with_tau(RATE_TAU_MS)
    }
}

impl DecayingRate {
    /// A rate gauge with time constant `tau_ms` (minimum 1 ms).
    #[must_use]
    pub fn with_tau(tau_ms: u64) -> Self {
        Self {
            tau_ms: tau_ms.max(1),
            origin: Instant::now(),
            state: Mutex::new((0.0, 0)),
        }
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Record `n` events now.
    pub fn observe(&self, n: u64) {
        self.observe_at(self.now_ms(), n);
    }

    /// Record `n` events at `ms` (milliseconds on the gauge's own clock) —
    /// the deterministic test hook. Out-of-order observations decay
    /// nothing and just add in.
    pub fn observe_at(&self, ms: u64, n: u64) {
        let tau = self.tau_ms as f64;
        let mut st = recover(self.state.lock());
        let dt = ms.saturating_sub(st.1);
        if dt > 0 {
            st.0 *= (-(dt as f64) / tau).exp();
            st.1 = ms;
        }
        st.0 += n as f64 * 1000.0 / tau;
    }

    /// The decayed estimate as of now, in events/sec.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate_at(self.now_ms())
    }

    /// The decayed estimate as of `ms`, in events/sec.
    #[must_use]
    pub fn rate_at(&self, ms: u64) -> f64 {
        let st = recover(self.state.lock());
        let dt = ms.saturating_sub(st.1);
        st.0 * (-(dt as f64) / self.tau_ms as f64).exp()
    }

    fn reset(&self) {
        *recover(self.state.lock()) = (0.0, 0);
    }
}

/// Point-in-time view of every registered metric, names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Windowed histogram name → summary over its live windows.
    pub windowed: Vec<(String, HistogramSummary)>,
    /// Decaying rate gauge name → events/sec estimate.
    pub rates: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// Whether no metric has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.windowed.is_empty()
            && self.rates.is_empty()
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    windowed: Mutex<BTreeMap<String, Arc<WindowedHistogram>>>,
    rates: Mutex<BTreeMap<String, Arc<DecayingRate>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn recover<'a, T: ?Sized>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name` (created on first use). Resolve
/// once and reuse the handle in hot loops.
#[must_use]
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = recover(registry().counters.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// Like [`counter`], but the counter also reports every delta to the
/// flight recorder as an [`EventKind::CounterDelta`] event. Use for
/// low-rate structural counters (health tallies, cache traffic) whose
/// history belongs in a blackbox — never for per-event hot-loop counters.
/// Tracking is sticky: once any caller tracks a name, all handles to it
/// record deltas.
#[must_use]
pub fn tracked_counter(name: &str) -> Arc<Counter> {
    let c = counter(name);
    if c.site.load(Ordering::Relaxed) == 0 {
        c.site.store(u64::from(recorder::intern(name)) + 1, Ordering::Relaxed);
    }
    c
}

/// The gauge registered under `name` (created on first use).
#[must_use]
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = recover(registry().gauges.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The histogram registered under `name` (created on first use). Resolve
/// once and reuse the handle in hot loops.
#[must_use]
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = recover(registry().histograms.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The windowed histogram registered under `name` (created on first use
/// with [`WINDOW_WIDTH_MS`]-wide windows).
#[must_use]
pub fn windowed_histogram(name: &str) -> Arc<WindowedHistogram> {
    let mut map = recover(registry().windowed.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The decaying rate gauge registered under `name` (created on first use
/// with time constant [`RATE_TAU_MS`]).
#[must_use]
pub fn rate(name: &str) -> Arc<DecayingRate> {
    let mut map = recover(registry().rates.lock());
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// Snapshot every registered metric (names sorted by the registry's
/// `BTreeMap` ordering, so output is deterministic).
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: recover(reg.counters.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: recover(reg.gauges.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        histograms: recover(reg.histograms.lock())
            .iter()
            .map(|(k, v)| (k.clone(), HistogramSummary::of(v)))
            .collect(),
        windowed: recover(reg.windowed.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect(),
        rates: recover(reg.rates.lock())
            .iter()
            .map(|(k, v)| (k.clone(), v.rate()))
            .collect(),
    }
}

/// Zero every registered metric in place (handles held by callers stay
/// valid). For benches and tests.
pub fn reset_all() {
    let reg = registry();
    for c in recover(reg.counters.lock()).values() {
        c.reset();
    }
    for g in recover(reg.gauges.lock()).values() {
        g.reset();
    }
    for h in recover(reg.histograms.lock()).values() {
        h.reset();
    }
    for w in recover(reg.windowed.lock()).values() {
        w.reset();
    }
    for r in recover(reg.rates.lock()).values() {
        r.reset();
    }
}

/// Sanitized Prometheus metric name: `bevra_` prefix, every character
/// outside `[A-Za-z0-9_]` replaced with `_`.
fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 6);
    s.push_str("bevra_");
    for c in name.chars() {
        s.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    s
}

/// Append one histogram in Prometheus exposition format: cumulative
/// `_bucket{le="…"}` lines over the non-empty log₂ buckets (upper bound
/// of bucket `k` is `2^k`; bucket 0's is `0`), a `+Inf` bucket, `_sum`,
/// and `_count`.
fn prom_histogram(out: &mut String, name: &str, h: &Histogram) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (bucket, c) in h.counts.iter().enumerate() {
        let c = c.load(Ordering::Relaxed);
        if c == 0 {
            continue;
        }
        cum += c;
        let le = if bucket == 0 { 0.0 } else { (bucket as f64).exp2() };
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum {}", h.sum.load(Ordering::Relaxed));
    let _ = writeln!(out, "{name}_count {}", h.count());
}

/// Render every registered metric in the Prometheus text exposition
/// format (the wire format a `bevra-serve` `/metrics` endpoint will
/// serve): counters as `counter`, gauges and decaying rates as `gauge`
/// (rates get a `_per_sec` suffix), histograms — cumulative and windowed
/// — as `histogram` with log₂ `le` bucket bounds.
#[must_use]
pub fn prometheus_text() -> String {
    use std::fmt::Write as _;
    let reg = registry();
    let mut out = String::new();
    for (name, c) in recover(reg.counters.lock()).iter() {
        let m = prom_name(name);
        let _ = writeln!(out, "# TYPE {m} counter\n{m} {}", c.get());
    }
    for (name, g) in recover(reg.gauges.lock()).iter() {
        let m = prom_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge\n{m} {}", g.get());
    }
    for (name, r) in recover(reg.rates.lock()).iter() {
        let m = format!("{}_per_sec", prom_name(name));
        let _ = writeln!(out, "# TYPE {m} gauge\n{m} {}", r.rate());
    }
    for (name, h) in recover(reg.histograms.lock()).iter() {
        prom_histogram(&mut out, &prom_name(name), h);
    }
    for (name, w) in recover(reg.windowed.lock()).iter() {
        prom_histogram(&mut out, &format!("{}_window", prom_name(name)), &w.merged());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global registry (reset_all would
    /// otherwise race with concurrent assertions).
    fn guard() -> MutexGuard<'static, ()> {
        static TEST_GUARD: Mutex<()> = Mutex::new(());
        recover(TEST_GUARD.lock())
    }

    #[test]
    fn counter_counts() {
        let _g = guard();
        let c = counter("test/metrics/counter");
        c.reset();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying counter.
        assert_eq!(counter("test/metrics/counter").get(), 5);
    }

    #[test]
    fn gauge_holds_last_value() {
        let _g = guard();
        let g = gauge("test/metrics/gauge");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        // 90 small samples and 10 large ones: p50 sits in the small
        // bucket, p99 in the large one.
        for _ in 0..90 {
            h.record(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket [2^19, 2^20)
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((524_288.0..1_048_576.0).contains(&p99), "p99 {p99}");
        assert!((h.mean() - (90.0 * 100.0 + 10.0 * 1e6) / 100.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0.0, "zero bucket represents as 0");
        h.record(u64::MAX);
        let p99 = h.quantile(0.99);
        assert!(p99 > 1e18, "top bucket representative {p99}");
    }

    /// Satellite pin: fixed samples, exact interpolated quantiles. The old
    /// estimator returned the bucket's geometric midpoint (√2·2^(k−1)), so
    /// p99 rounded to the same value for every sample layout inside a
    /// bucket; interpolation must place ranks linearly between the bucket
    /// bounds instead.
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        for v in [100u64, 200, 400, 800] {
            for _ in 0..25 {
                h.record(v); // buckets [64,128), [128,256), [256,512), [512,1024)
            }
        }
        let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
        // p50: rank 50 → bucket [128,256), 25th of 25 → 128 + 256·(24.5/25)/2
        assert!((p50 - 253.44).abs() < 1e-9, "p50 {p50}");
        // p90: rank 90 → bucket [512,1024), 15th of 25.
        assert!((p90 - 808.96).abs() < 1e-9, "p90 {p90}");
        // p99: rank 99 → bucket [512,1024), 24th of 25 — NOT the midpoint
        // 724.077 and NOT a power of two.
        assert!((p99 - 993.28).abs() < 1e-9, "p99 {p99}");
        assert!(p99.fract() != 0.0 || p99.log2().fract() != 0.0);
        // Single-bucket layout sharpens too: 1000 samples of 1000.
        let h2 = Histogram::default();
        for _ in 0..1000 {
            h2.record(1000); // bucket [512,1024)
        }
        let p99b = h2.quantile(0.99);
        assert!((p99b - (512.0 + 512.0 * (989.5 / 1000.0))).abs() < 1e-9, "p99 {p99b}");
    }

    #[test]
    fn windowed_histogram_rotates_and_merges() {
        let w = WindowedHistogram::with_width(1_000);
        for i in 0..10 {
            w.record_at(0, 100 + i);
        }
        w.record_at(1, 5_000);
        let s = w.summary();
        assert_eq!(s.count, 11, "both live windows merged");
        // Epochs 4.. reuse slot 0 (4 % 4): the old window is cleared.
        w.record_at(4, 7);
        let s = w.summary();
        assert_eq!(s.count, 2, "epoch-0 window rotated out, epoch-1 + epoch-4 remain");
        // A straggler sample for the rotated-out epoch 0 is dropped.
        w.record_at(0, 1);
        assert_eq!(w.summary().count, 2);
    }

    #[test]
    fn decaying_rate_tracks_and_decays() {
        let r = DecayingRate::with_tau(10_000);
        // 1 event/sec for 30 s: estimate converges near 1.0/s (discrete
        // EWMA bias is ≤ Δt/2τ = 5%).
        for s in 0..30 {
            r.observe_at(s * 1000, 1);
        }
        let rate = r.rate_at(29_000);
        assert!((0.85..=1.1).contains(&rate), "rate {rate}");
        // τ·ln2 of silence halves it.
        let halved = r.rate_at(29_000 + 6_931);
        assert!((halved / rate - 0.5).abs() < 0.01, "halved {halved} from {rate}");
        // Long silence decays toward zero.
        assert!(r.rate_at(200_000) < 1e-4);
    }

    #[test]
    fn tracked_counter_records_deltas_in_recorder() {
        let _g = guard();
        crate::recorder::set_recording(true);
        let c = tracked_counter("test/metrics/tracked");
        c.reset();
        c.add(3);
        c.inc();
        let events = crate::recorder::recent_events(usize::MAX);
        let deltas: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| {
                e.kind == crate::recorder::EventKind::CounterDelta
                    && e.site == "test/metrics/tracked"
            })
            .map(|e| (e.a, e.b))
            .collect();
        assert!(deltas.contains(&(3, 3)), "deltas {deltas:?}");
        assert!(deltas.contains(&(1, 4)), "deltas {deltas:?}");
    }

    #[test]
    fn prometheus_text_exposition() {
        let _g = guard();
        counter("test/prom/ctr").add(7);
        gauge("test/prom/g").set(2.5);
        let h = histogram("test/prom/h");
        h.reset();
        h.record(100);
        h.record(100_000);
        let w = windowed_histogram("test/prom/w");
        w.record_at(0, 9);
        rate("test/prom/r").observe(5);
        let text = prometheus_text();
        assert!(text.contains("# TYPE bevra_test_prom_ctr counter"), "{text}");
        assert!(text.contains("# TYPE bevra_test_prom_g gauge"));
        assert!(text.contains("# TYPE bevra_test_prom_h histogram"));
        assert!(text.contains("# TYPE bevra_test_prom_r_per_sec gauge"));
        assert!(text.contains("# TYPE bevra_test_prom_w_window histogram"));
        assert!(text.contains("bevra_test_prom_h_bucket{le=\"128\"} 1"), "{text}");
        assert!(text.contains("bevra_test_prom_h_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("bevra_test_prom_h_sum 100100"));
        assert!(text.contains("bevra_test_prom_h_count 2"));
        // Cumulative le bounds are non-decreasing counts.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("bevra_test_prom_h_bucket"))
            .filter_map(|l| l.split_whitespace().next_back()?.parse().ok())
            .collect();
        assert!(cums.windows(2).all(|p| p[0] <= p[1]), "{cums:?}");
    }

    #[test]
    fn snapshot_is_sorted_and_resettable() {
        let _g = guard();
        counter("test/snap/b").add(2);
        counter("test/snap/a").add(1);
        gauge("test/snap/g").set(3.5);
        histogram("test/snap/h").record(8);
        let snap = snapshot();
        assert!(!snap.is_empty());
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters sorted by name");
        let (_, h) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test/snap/h")
            .expect("histogram snapshotted");
        assert_eq!(h.count, 1);
        reset_all();
        assert_eq!(counter("test/snap/b").get(), 0);
        assert_eq!(gauge("test/snap/g").get(), 0.0);
        assert_eq!(histogram("test/snap/h").count(), 0);
    }
}
