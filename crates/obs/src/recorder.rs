//! Always-on flight recorder: bounded per-thread seqlock ring buffers of
//! structured events, drained to a `results/<id>-blackbox.jsonl` black box
//! when the process panics (or on demand at the end of a faulted run).
//!
//! # What gets recorded
//!
//! Low-rate structural events only — span boundaries ([`EventKind::SpanEnter`]
//! / [`EventKind::SpanExit`]), registered-counter deltas
//! ([`EventKind::CounterDelta`]), fault-rule trips ([`EventKind::FaultTrip`],
//! fed by a [`bevra_faults::set_trip_observer`] hook), and sweep-health
//! ledger records ([`EventKind::Health`]). Per-grid-point work is never
//! recorded, so the recorder's steady-state cost is a handful of atomic
//! stores per sweep *stage*, and the disabled path is one relaxed atomic
//! load (same contract as [`crate::enabled`]).
//!
//! # Ring layout
//!
//! Each thread owns a ring of [`RING_CAPACITY`] slots. A slot is five
//! `AtomicU64` words: a seqlock `version` (odd while the owning thread is
//! mid-write, even when stable), a global logical sequence number, a packed
//! `kind`/interned-site word, and two free payload words `a`/`b`. The owning
//! thread is the only writer; the blackbox drainer (which may run on *any*
//! thread, inside a panic hook) reads `version`, the payload, then `version`
//! again, and discards the slot if the two reads disagree or are odd. Events
//! are ordered by a process-global logical sequence counter — deliberately
//! not a wall clock, so recording is invisible to the workspace's
//! determinism digests.
//!
//! # Gating
//!
//! On by default. `BEVRA_RECORDER=off|0|false` disables it (one relaxed
//! atomic load on every record site thereafter); [`set_recording`]
//! overrides programmatically for benches and tests.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError};

/// Environment variable gating the flight recorder (`off|0|false` disable
/// it; anything else, including unset, leaves it on).
pub const RECORDER_ENV: &str = "BEVRA_RECORDER";

/// Slots per per-thread ring; also the upper bound on events in a blackbox
/// from any single thread.
pub const RING_CAPACITY: usize = 256;

/// Maximum events written to one blackbox file (across all threads, after
/// the global merge-by-sequence).
pub const BLACKBOX_EVENTS: usize = 256;

const GATE_UNINIT: u8 = u8::MAX;
const GATE_OFF: u8 = 0;
const GATE_ON: u8 = 1;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);

/// Global logical sequence counter: every recorded event takes the next
/// value, giving a total order across threads without touching the clock.
static SEQ: AtomicU64 = AtomicU64::new(1);

static NEXT_RECORDER_TID: AtomicU64 = AtomicU64::new(1);

/// Count of fault-rule trips observed process-wide (via the
/// `bevra-faults` trip observer) — lets run emitters decide whether a
/// completed run warrants a blackbox.
static FAULT_TRIPS: AtomicU64 = AtomicU64::new(0);

static BLACKBOX_WRITES: AtomicU64 = AtomicU64::new(0);

fn recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Every critical section below only pushes/reads completed values, so
    // a poisoned lock still guards consistent data.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the flight recorder is on — one relaxed atomic load after the
/// first call initializes the gate from [`RECORDER_ENV`].
#[inline]
#[must_use]
pub fn recording() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate(),
    }
}

#[cold]
fn init_gate() -> bool {
    let on = match std::env::var(RECORDER_ENV) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    };
    let _ = GATE.compare_exchange(
        GATE_UNINIT,
        if on { GATE_ON } else { GATE_OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    let now_on = GATE.load(Ordering::Relaxed) == GATE_ON;
    if now_on {
        hook_faults();
    }
    now_on
}

/// Force the recorder on or off for the rest of the process (benches and
/// tests; production runs use [`RECORDER_ENV`]).
pub fn set_recording(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    if on {
        hook_faults();
    }
}

/// Install the `bevra-faults` trip observer exactly once, so every fault
/// trip lands in the ring (and bumps [`fault_trips`]) regardless of which
/// crate triggered it.
fn hook_faults() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let _ = bevra_faults::set_trip_observer(on_fault_trip);
    });
}

fn on_fault_trip(kind: bevra_faults::FaultKind, site: &str, key: u64) {
    FAULT_TRIPS.fetch_add(1, Ordering::Relaxed);
    record(EventKind::FaultTrip, site, key, kind as u64);
}

/// Total fault-rule trips observed by the recorder in this process.
#[must_use]
pub fn fault_trips() -> u64 {
    FAULT_TRIPS.load(Ordering::Relaxed)
}

/// Total blackbox files written by this process.
#[must_use]
pub fn blackbox_writes() -> u64 {
    BLACKBOX_WRITES.load(Ordering::Relaxed)
}

/// The kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened (`site` = span name).
    SpanEnter = 1,
    /// A span closed (`site` = span name, `a` = points attributed).
    SpanExit = 2,
    /// A registered counter moved (`site` = counter name, `a` = delta,
    /// `b` = new total).
    CounterDelta = 3,
    /// A fault rule tripped (`site` = fault site, `a` = key, `b` = the
    /// [`bevra_faults::FaultKind`] discriminant).
    FaultTrip = 4,
    /// A sweep-health ledger record was not clean (`site` = ledger label,
    /// `a` = degraded count, `b` = failed count).
    Health = 5,
    /// Synthetic final blackbox event carrying the panic message (never
    /// stored in a ring).
    Panic = 6,
}

impl EventKind {
    /// Stable lower-case label used in blackbox JSONL.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span-enter",
            EventKind::SpanExit => "span-exit",
            EventKind::CounterDelta => "counter",
            EventKind::FaultTrip => "fault-trip",
            EventKind::Health => "health",
            EventKind::Panic => "panic",
        }
    }

    fn from_u64(v: u64) -> Option<Self> {
        Some(match v {
            1 => EventKind::SpanEnter,
            2 => EventKind::SpanExit,
            3 => EventKind::CounterDelta,
            4 => EventKind::FaultTrip,
            5 => EventKind::Health,
            6 => EventKind::Panic,
            _ => return None,
        })
    }
}

/// One event read back out of the rings (site id resolved to its string).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Global logical sequence number (total order across threads).
    pub seq: u64,
    /// Recorder thread id (assigned in first-event order per thread;
    /// independent of the span exporter's tids).
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// The site / span / counter / label the event is about.
    pub site: String,
    /// Kind-specific payload word (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload word (see [`EventKind`]).
    pub b: u64,
}

/// One seqlock slot. `version` is odd while the owning thread is
/// mid-write; all fields are atomics so concurrent drain reads are
/// well-defined even when discarded.
struct Slot {
    version: AtomicU64,
    seq: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct Ring {
    tid: u64,
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(tid: u64) -> Self {
        Self {
            tid,
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
        }
    }

    /// Single-writer push (owning thread only). Events are rare — span
    /// boundaries, fault trips — so the stores use `SeqCst` for trivially
    /// auditable seqlock semantics rather than a fence dance.
    fn push(&self, kind: EventKind, site: u32, a: u64, b: u64) {
        let n = self.head.load(Ordering::Relaxed);
        let idx = (n % RING_CAPACITY as u64) as usize;
        let Some(slot) = self.slots.get(idx) else { return };
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v.wrapping_add(1), Ordering::SeqCst); // odd: writing
        slot.seq.store(SEQ.fetch_add(1, Ordering::Relaxed), Ordering::SeqCst);
        slot.meta.store(((kind as u64) << 32) | u64::from(site), Ordering::SeqCst);
        slot.a.store(a, Ordering::SeqCst);
        slot.b.store(b, Ordering::SeqCst);
        slot.version.store(v.wrapping_add(2), Ordering::SeqCst); // even: stable
        self.head.store(n + 1, Ordering::Release);
    }

    /// Lock-free snapshot of the stable slots (any thread). Slots the
    /// owner is overwriting right now fail the version check and are
    /// skipped — a blackbox tolerates losing the single in-flight event.
    fn snapshot(&self, out: &mut Vec<(u64, u64, u64, u64, u64)>) {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(RING_CAPACITY as u64);
        for i in head - n..head {
            let Some(slot) = self.slots.get((i % RING_CAPACITY as u64) as usize) else {
                continue;
            };
            for _attempt in 0..3 {
                let v1 = slot.version.load(Ordering::SeqCst);
                if v1 & 1 == 1 {
                    continue;
                }
                let seq = slot.seq.load(Ordering::SeqCst);
                let meta = slot.meta.load(Ordering::SeqCst);
                let a = slot.a.load(Ordering::SeqCst);
                let b = slot.b.load(Ordering::SeqCst);
                if slot.version.load(Ordering::SeqCst) == v1 {
                    out.push((seq, self.tid, meta, a, b));
                    break;
                }
            }
        }
    }
}

/// Every per-thread ring ever registered (rings are small and never
/// unregistered, mirroring the span sinks).
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Interned site strings: id = index into the vector.
static INTERNER: Mutex<Vec<String>> = Mutex::new(Vec::new());

struct LocalRing {
    ring: Arc<Ring>,
    /// Thread-local intern cache so steady-state recording takes no
    /// global lock.
    interned: HashMap<String, u32>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

fn intern_global(site: &str) -> u32 {
    let mut table = recover(&INTERNER);
    if let Some(pos) = table.iter().position(|s| s == site) {
        return pos as u32;
    }
    table.push(site.to_string());
    (table.len() - 1) as u32
}

fn new_local() -> LocalRing {
    let ring = Arc::new(Ring::new(NEXT_RECORDER_TID.fetch_add(1, Ordering::Relaxed)));
    recover(&RINGS).push(Arc::clone(&ring));
    LocalRing { ring, interned: HashMap::new() }
}

/// Record one event on the calling thread's ring. A no-op when the
/// recorder is off; never panics (panic hooks and `Drop` impls call it).
pub fn record(kind: EventKind, site: &str, a: u64, b: u64) {
    if !recording() {
        return;
    }
    let _ = LOCAL.try_with(|cell| {
        let Ok(mut borrow) = cell.try_borrow_mut() else { return };
        let local = borrow.get_or_insert_with(new_local);
        let id = match local.interned.get(site) {
            Some(&id) => id,
            None => {
                let id = intern_global(site);
                local.interned.insert(site.to_string(), id);
                id
            }
        };
        local.ring.push(kind, id, a, b);
    });
}

/// Intern `site` in the recorder's string table, returning its stable id
/// (for pre-resolved record paths like tracked counters).
pub(crate) fn intern(site: &str) -> u32 {
    intern_global(site)
}

/// Record with a pre-interned site id — the allocation-free path used by
/// tracked counters.
pub(crate) fn record_id(kind: EventKind, site_id: u32, a: u64, b: u64) {
    if !recording() {
        return;
    }
    let _ = LOCAL.try_with(|cell| {
        let Ok(mut borrow) = cell.try_borrow_mut() else { return };
        let local = borrow.get_or_insert_with(new_local);
        local.ring.push(kind, site_id, a, b);
    });
}

/// The most recent `max` events across all threads, oldest first, merged
/// by logical sequence number. Non-destructive (rings keep their
/// contents); slots being overwritten concurrently are skipped.
#[must_use]
pub fn recent_events(max: usize) -> Vec<RecordedEvent> {
    let rings: Vec<Arc<Ring>> = recover(&RINGS).clone();
    let mut raw: Vec<(u64, u64, u64, u64, u64)> = Vec::new();
    for ring in rings {
        ring.snapshot(&mut raw);
    }
    raw.sort_unstable_by_key(|&(seq, ..)| seq);
    if raw.len() > max {
        raw.drain(..raw.len() - max);
    }
    let names: Vec<String> = recover(&INTERNER).clone();
    raw.into_iter()
        .filter_map(|(seq, tid, meta, a, b)| {
            let kind = EventKind::from_u64(meta >> 32)?;
            let site = names
                .get((meta & 0xFFFF_FFFF) as usize)
                .cloned()
                .unwrap_or_else(|| "?".to_string());
            Some(RecordedEvent { seq, tid, kind, site, a, b })
        })
        .collect()
}

struct BlackboxTarget {
    id: String,
    dir: PathBuf,
}

static BLACKBOX: Mutex<Option<BlackboxTarget>> = Mutex::new(None);

/// Arm the blackbox: from now on, any panic anywhere in the process (even
/// one later caught by `catch_unwind`, e.g. an injected fault isolated by
/// the sweep pool) drains the last [`BLACKBOX_EVENTS`] recorder events to
/// `<dir>/<id>-blackbox.jsonl`, with a final synthetic [`EventKind::Panic`]
/// event naming the tripped site. Re-arming changes the target; the panic
/// hook (which chains to the previously installed hook) is installed once.
pub fn arm_blackbox(id: &str, dir: &Path) {
    *recover(&BLACKBOX) = Some(BlackboxTarget { id: id.to_string(), dir: dir.to_path_buf() });
    let _ = recording(); // initialize the gate (and the fault observer) now
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            let _ = write_blackbox(&msg);
            prev(info);
        }));
    });
}

/// The path the armed blackbox writes to, if armed.
#[must_use]
pub fn blackbox_path() -> Option<PathBuf> {
    recover(&BLACKBOX)
        .as_ref()
        .map(|t| t.dir.join(format!("{}-blackbox.jsonl", t.id)))
}

/// Extract the fault site out of an injected-panic message
/// (`"… injected panic at <site>[<key>]"`), used for the final blackbox
/// event. Falls back to the last recorded fault-trip site, else `"?"`.
fn panic_site(msg: &str, events: &[RecordedEvent]) -> String {
    if msg.contains(bevra_faults::PANIC_MARKER) {
        if let Some(at) = msg.rfind(" at ") {
            let rest = &msg[at + 4..];
            let end = rest.find('[').unwrap_or(rest.len());
            let site = rest[..end].trim();
            if !site.is_empty() {
                return site.to_string();
            }
        }
    }
    events
        .iter()
        .rev()
        .find(|e| e.kind == EventKind::FaultTrip)
        .map(|e| e.site.clone())
        .unwrap_or_else(|| "?".to_string())
}

fn fault_token(discriminant: u64) -> Option<&'static str> {
    use bevra_faults::FaultKind as K;
    [K::Panic, K::Nan, K::Inf, K::NumErr, K::IoTransient, K::IoPermanent, K::Budget]
        .into_iter()
        .find(|k| *k as u64 == discriminant)
        .map(K::token)
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_line(e: &RecordedEvent) -> String {
    let mut line = format!(
        "{{\"seq\":{},\"tid\":{},\"kind\":\"{}\",\"site\":\"{}\",\"a\":{},\"b\":{}",
        e.seq,
        e.tid,
        e.kind.label(),
        esc(&e.site),
        e.a,
        e.b,
    );
    if e.kind == EventKind::FaultTrip {
        if let Some(tok) = fault_token(e.b) {
            line.push_str(&format!(",\"fault\":\"{tok}\""));
        }
    }
    line.push('}');
    line
}

/// Drain the rings to the armed blackbox file, appending one synthetic
/// final [`EventKind::Panic`] event whose `site` names the tripped fault
/// site (parsed from `reason` when it is an injected-panic message) and
/// whose `message` carries `reason` verbatim. Returns the written path, or
/// `None` when the recorder is off, nothing is armed, or I/O failed — this
/// runs inside panic hooks, so it never propagates errors. The write is
/// temp-then-rename via plain `std::fs` (deliberately *not* the
/// fault-instrumented writer: a blackbox must not itself be injectable).
pub fn write_blackbox(reason: &str) -> Option<PathBuf> {
    if !recording() {
        return None;
    }
    let (id, dir) = {
        let armed = recover(&BLACKBOX);
        let target = armed.as_ref()?;
        (target.id.clone(), target.dir.clone())
    };
    let events = recent_events(BLACKBOX_EVENTS);
    let mut body = String::new();
    for e in &events {
        body.push_str(&event_line(e));
        body.push('\n');
    }
    let site = panic_site(reason, &events);
    body.push_str(&format!(
        "{{\"seq\":{},\"kind\":\"panic\",\"site\":\"{}\",\"message\":\"{}\"}}\n",
        SEQ.fetch_add(1, Ordering::Relaxed),
        esc(&site),
        esc(reason),
    ));
    let n = BLACKBOX_WRITES.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!("{id}-blackbox.jsonl"));
    let tmp = dir.join(format!("{id}-blackbox.jsonl.tmp{n}"));
    std::fs::create_dir_all(&dir).ok()?;
    std::fs::write(&tmp, body.as_bytes()).ok()?;
    if std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return None;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> MutexGuard<'static, ()> {
        static TEST_GUARD: Mutex<()> = Mutex::new(());
        recover(&TEST_GUARD)
    }

    #[test]
    fn events_merge_in_sequence_order_across_threads() {
        let _g = guard();
        set_recording(true);
        record(EventKind::SpanEnter, "rec-test/main", 0, 0);
        std::thread::spawn(|| {
            record(EventKind::SpanEnter, "rec-test/worker", 7, 0);
            record(EventKind::SpanExit, "rec-test/worker", 7, 0);
        })
        .join()
        .expect("worker ran");
        record(EventKind::SpanExit, "rec-test/main", 0, 0);
        let events = recent_events(BLACKBOX_EVENTS);
        let ours: Vec<&RecordedEvent> =
            events.iter().filter(|e| e.site.starts_with("rec-test/")).collect();
        assert!(ours.len() >= 4, "got {}", ours.len());
        let seqs: Vec<u64> = ours.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "merge is in global sequence order");
        let worker = ours.iter().find(|e| e.site == "rec-test/worker").expect("worker event");
        let main = ours.iter().find(|e| e.site == "rec-test/main").expect("main event");
        assert_ne!(worker.tid, main.tid, "threads get distinct recorder tids");
    }

    #[test]
    fn ring_bounds_retained_events() {
        let _g = guard();
        set_recording(true);
        for i in 0..(RING_CAPACITY as u64 + 50) {
            record(EventKind::CounterDelta, "rec-bound/ctr", i, 0);
        }
        let events = recent_events(usize::MAX);
        let ours: Vec<u64> = events
            .iter()
            .filter(|e| e.site == "rec-bound/ctr")
            .map(|e| e.a)
            .collect();
        assert!(ours.len() <= RING_CAPACITY);
        // The newest events survive; the oldest were overwritten.
        assert_eq!(ours.last().copied(), Some(RING_CAPACITY as u64 + 49));
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let _g = guard();
        set_recording(false);
        record(EventKind::SpanEnter, "rec-off/none", 0, 0);
        let events = recent_events(usize::MAX);
        assert!(!events.iter().any(|e| e.site == "rec-off/none"));
        set_recording(true);
    }

    #[test]
    fn panic_site_extraction() {
        let msg = format!("{} at engine/point[3]", bevra_faults::PANIC_MARKER);
        assert_eq!(panic_site(&msg, &[]), "engine/point");
        let fallback = vec![RecordedEvent {
            seq: 1,
            tid: 1,
            kind: EventKind::FaultTrip,
            site: "io/report".into(),
            a: 0,
            b: 4,
        }];
        assert_eq!(panic_site("ordinary panic", &fallback), "io/report");
        assert_eq!(panic_site("ordinary panic", &[]), "?");
    }

    #[test]
    fn blackbox_writes_parseable_jsonl_with_final_panic_event() {
        let _g = guard();
        set_recording(true);
        let dir = std::env::temp_dir().join("bevra-recorder-test");
        arm_blackbox("rec-unit", &dir);
        record(EventKind::FaultTrip, "engine/point", 3, 0);
        let msg = format!("{} at engine/point[3]", bevra_faults::PANIC_MARKER);
        let path = write_blackbox(&msg).expect("blackbox written");
        let text = std::fs::read_to_string(&path).expect("readable");
        let last = text.lines().last().expect("non-empty");
        assert!(last.contains("\"kind\":\"panic\""), "last line: {last}");
        assert!(last.contains("\"site\":\"engine/point\""), "last line: {last}");
        assert!(text.lines().any(|l| l.contains("\"kind\":\"fault-trip\"")
            && l.contains("\"site\":\"engine/point\"")
            && l.contains("\"fault\":\"panic\"")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
