//! placeholder
