//! Bench: the sweep engine — serial vs parallel vs cached (warm) sweeps
//! over the Figure 2/3 grids, the parallel welfare-table build, and the
//! value-kernel paths (scalar per-point vs grid-batched vs warm
//! persistent cache) on the Figure 4 algebraic/adaptive setting. This is
//! the acceptance bench for the engine's speedup claims; results land in
//! `BENCH_sweep.json` (see EXPERIMENTS.md § "Benchmark artifact schema").

use bevra_core::DiscreteModel;
use bevra_core::kernel;
use bevra_core::{sweep_grid, sweep_grid_fused, PiEval};
use bevra_obs::energy::EnergyProbe;
use bevra_engine::{Architecture, CacheMode, ExecMode, PersistentCache, SweepEngine};
use bevra_load::{Algebraic, Geometric, Poisson, Tabulated, PAPER_MEAN_LOAD};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Average package joules per call of `f` over `iters` calls, from the
/// optional RAPL probe; `None` (→ JSON null) when the powercap hierarchy
/// is absent or unreadable, as in most CI containers.
fn measure_joules<F: FnMut()>(iters: u32, mut f: F) -> Option<f64> {
    let probe = EnergyProbe::open()?;
    let reading = probe.begin()?;
    for _ in 0..iters {
        f();
    }
    reading.joules().map(|j| j / f64::from(iters))
}

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (PAPER_MEAN_LOAD / 20.0, 10.0 * PAPER_MEAN_LOAD);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

fn engine_of(load: &Arc<Tabulated>, mode: ExecMode) -> SweepEngine<AdaptiveExp> {
    SweepEngine::with_mode(DiscreteModel::new(Arc::clone(load), AdaptiveExp::paper()), mode)
}

fn engine_sweeps(c: &mut Criterion) {
    let load = Arc::new(Tabulated::from_model(&Poisson::new(PAPER_MEAN_LOAD), 1e-12, 1 << 18));
    let cs = grid(48);
    c.bench_function("engine_sweep_serial_cold", |b| {
        b.iter(|| black_box(engine_of(&load, ExecMode::Serial).sweep(black_box(&cs))));
    });
    let threads = bevra_engine::thread_count();
    c.bench_function("engine_sweep_parallel_cold", |b| {
        b.iter(|| {
            black_box(engine_of(&load, ExecMode::Parallel { threads }).sweep(black_box(&cs)))
        });
    });
    // Warm cache: the same engine re-sweeps the grid (pure hits).
    let warm = engine_of(&load, ExecMode::Parallel { threads });
    let _ = warm.sweep(&cs);
    c.bench_function("engine_sweep_parallel_warm", |b| {
        b.iter(|| black_box(warm.sweep(black_box(&cs))));
    });

    let geo = Arc::new(Tabulated::from_model(&Geometric::from_mean(PAPER_MEAN_LOAD), 1e-12, 1 << 18));
    c.bench_function("engine_value_table_serial", |b| {
        b.iter(|| {
            black_box(engine_of(&geo, ExecMode::Serial).value_table(
                Architecture::BestEffort,
                PAPER_MEAN_LOAD,
                300.0 * PAPER_MEAN_LOAD,
                400,
            ))
        });
    });
    c.bench_function("engine_value_table_parallel", |b| {
        b.iter(|| {
            black_box(engine_of(&geo, ExecMode::Parallel { threads }).value_table(
                Architecture::BestEffort,
                PAPER_MEAN_LOAD,
                300.0 * PAPER_MEAN_LOAD,
                400,
            ))
        });
    });
}

/// The value-kernel acceptance benches: `k_max`/`B`/`R` for a 48-point
/// Figure 4 grid (algebraic z = 3 load, adaptive utility, 2^18-entry
/// table), isolating the kernels from the off-grid gap root-finder. Four
/// canonical rows: scalar per-point, grid-batched (fast π), parallel
/// batched, and warm persistent cache; plus the bitwise-exact batched and
/// deterministic-portable backends for reference.
fn kernel_sweeps(c: &mut Criterion) {
    let alg = Algebraic::from_mean(3.0, PAPER_MEAN_LOAD).expect("paper fig4 family");
    let load = Arc::new(Tabulated::from_model(&alg, 1e-9, 1 << 18));
    let cs = grid(48);
    let n = cs.len();
    let model = || DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper());

    c.bench_function("kernel_sweep_serial", |b| {
        b.points(n);
        b.iter(|| {
            let m = model();
            for &cap in &cs {
                black_box(m.k_max(cap));
                black_box(m.best_effort(cap));
                black_box(m.reservation(cap));
            }
        });
    });
    c.bench_function("kernel_sweep_batched", |b| {
        b.points(n);
        b.iter(|| {
            let eng = SweepEngine::with_mode(model(), ExecMode::Serial)
                .with_kernel(kernel::fast());
            eng.prime(black_box(&cs));
        });
    });
    c.bench_function("kernel_sweep_batched_exact", |b| {
        b.points(n);
        b.iter(|| {
            let eng =
                SweepEngine::with_mode(model(), ExecMode::Serial).with_kernel(kernel::batch());
            eng.prime(black_box(&cs));
        });
    });
    c.bench_function("kernel_sweep_batched_portable", |b| {
        b.points(n);
        b.iter(|| {
            let eng =
                SweepEngine::with_mode(model(), ExecMode::Serial).with_kernel(kernel::portable());
            eng.prime(black_box(&cs));
        });
    });
    // Fused B+R pass (this PR's claim): one traversal serves both grids,
    // at the detected SIMD tier. Gated by perf_smoke.py --min-speedup
    // against the unfused composition pinned to AVX2 below, which stands
    // in for the pre-fusion batched-fast path (whose dispatch topped out
    // at AVX2). Energy is recorded when the RAPL probe is available and
    // reported as joules_per_sweep (null otherwise, never gated).
    c.bench_function("kernel_sweep_fused", |b| {
        b.points(n);
        let m = model();
        b.iter(|| black_box(sweep_grid_fused(black_box(&m), black_box(&cs), PiEval::Fast)));
        b.record_joules(measure_joules(8, || {
            black_box(sweep_grid_fused(black_box(&m), black_box(&cs), PiEval::Fast));
        }));
    });
    c.bench_function("kernel_sweep_unfused_avx2", |b| {
        b.points(n);
        let m = model();
        bevra_num::simd::force_level(bevra_num::simd::Level::Avx2);
        b.iter(|| black_box(sweep_grid(black_box(&m), black_box(&cs), PiEval::Fast)));
        b.record_joules(measure_joules(8, || {
            black_box(sweep_grid(black_box(&m), black_box(&cs), PiEval::Fast));
        }));
        bevra_num::simd::force_level(bevra_num::simd::detected());
    });

    let threads = bevra_engine::thread_count();
    c.bench_function("kernel_sweep_parallel", |b| {
        b.points(n);
        b.iter(|| {
            let eng = SweepEngine::with_mode(model(), ExecMode::Parallel { threads })
                .with_kernel(kernel::fast());
            eng.prime(black_box(&cs));
        });
    });

    // Warm persistent cache: one cold run stores the value table, then
    // every iteration is a fresh engine loading it from disk.
    let dir = std::env::temp_dir().join(format!("bevra-bench-pcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pcache = || PersistentCache::new(&dir, CacheMode::ReadWrite);
    SweepEngine::with_mode(model(), ExecMode::Serial)
        .with_kernel(kernel::fast())
        .with_persistent_cache(pcache())
        .prime(&cs);
    c.bench_function("kernel_sweep_warm_cache", |b| {
        b.points(n);
        b.iter(|| {
            let eng = SweepEngine::with_mode(model(), ExecMode::Serial)
                .with_kernel(kernel::fast())
                .with_persistent_cache(pcache());
            eng.prime(black_box(&cs));
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, engine_sweeps, kernel_sweeps);
criterion_main!(benches);
