//! Bench: the sweep engine — serial vs parallel vs cached (warm) sweeps
//! over the Figure 2/3 grids, plus the parallel welfare-table build. This
//! is the acceptance bench for the engine's speedup claims.

use bevra_core::DiscreteModel;
use bevra_engine::{Architecture, ExecMode, SweepEngine};
use bevra_load::{Geometric, Poisson, Tabulated, PAPER_MEAN_LOAD};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (PAPER_MEAN_LOAD / 20.0, 10.0 * PAPER_MEAN_LOAD);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

fn engine_of(load: &Arc<Tabulated>, mode: ExecMode) -> SweepEngine<AdaptiveExp> {
    SweepEngine::with_mode(DiscreteModel::new(Arc::clone(load), AdaptiveExp::paper()), mode)
}

fn engine_sweeps(c: &mut Criterion) {
    let load = Arc::new(Tabulated::from_model(&Poisson::new(PAPER_MEAN_LOAD), 1e-12, 1 << 18));
    let cs = grid(48);
    c.bench_function("engine_sweep_serial_cold", |b| {
        b.iter(|| black_box(engine_of(&load, ExecMode::Serial).sweep(black_box(&cs))));
    });
    let threads = bevra_engine::thread_count();
    c.bench_function("engine_sweep_parallel_cold", |b| {
        b.iter(|| {
            black_box(engine_of(&load, ExecMode::Parallel { threads }).sweep(black_box(&cs)))
        });
    });
    // Warm cache: the same engine re-sweeps the grid (pure hits).
    let warm = engine_of(&load, ExecMode::Parallel { threads });
    let _ = warm.sweep(&cs);
    c.bench_function("engine_sweep_parallel_warm", |b| {
        b.iter(|| black_box(warm.sweep(black_box(&cs))));
    });

    let geo = Arc::new(Tabulated::from_model(&Geometric::from_mean(PAPER_MEAN_LOAD), 1e-12, 1 << 18));
    c.bench_function("engine_value_table_serial", |b| {
        b.iter(|| {
            black_box(engine_of(&geo, ExecMode::Serial).value_table(
                Architecture::BestEffort,
                PAPER_MEAN_LOAD,
                300.0 * PAPER_MEAN_LOAD,
                400,
            ))
        });
    });
    c.bench_function("engine_value_table_parallel", |b| {
        b.iter(|| {
            black_box(engine_of(&geo, ExecMode::Parallel { threads }).value_table(
                Architecture::BestEffort,
                PAPER_MEAN_LOAD,
                300.0 * PAPER_MEAN_LOAD,
                400,
            ))
        });
    });
}

criterion_group!(benches, engine_sweeps);
criterion_main!(benches);
