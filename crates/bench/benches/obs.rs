//! Bench: observability overhead — the same fixed parallel sweep run at
//! `BEVRA_OBS=off`, `summary`, and `trace` (set programmatically via
//! [`bevra_obs::set_level`] so one process covers all three). The `off`
//! case is the acceptance bar: it must be indistinguishable from the
//! pre-instrumentation engine, since the hot path only pays one relaxed
//! atomic load per gate check.

use bevra_core::DiscreteModel;
use bevra_engine::{ExecMode, SweepEngine};
use bevra_load::{Poisson, Tabulated, PAPER_MEAN_LOAD};
use bevra_obs::ObsLevel;
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn grid(n: usize) -> Vec<f64> {
    let (lo, hi) = (PAPER_MEAN_LOAD / 20.0, 10.0 * PAPER_MEAN_LOAD);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Drop everything the previous level accumulated so buffers never grow
/// across bench cases (trace events in particular).
fn drain_obs() {
    let _ = bevra_obs::drain_stages();
    let _ = bevra_obs::drain_trace();
    bevra_obs::metrics::reset_all();
    let _ = bevra_engine::drain_caches();
}

fn obs_overhead(c: &mut Criterion) {
    let load = Arc::new(Tabulated::from_model(&Poisson::new(PAPER_MEAN_LOAD), 1e-12, 1 << 18));
    let cs = grid(48);
    let threads = bevra_engine::thread_count();
    // Cold engine per iteration so every level does identical work
    // (memoization would otherwise make later cases all cache hits).
    let sweep_once = |load: &Arc<Tabulated>, cs: &[f64]| {
        let engine = SweepEngine::with_mode(
            DiscreteModel::new(Arc::clone(load), AdaptiveExp::paper()),
            ExecMode::Parallel { threads },
        );
        black_box(engine.sweep(black_box(cs)))
    };
    // The recorder gate is independent of the obs level: the `_norec`
    // case isolates what the flight recorder itself adds on top of the
    // summary instrumentation (span ring writes + tracked counters).
    for (label, level, recording) in [
        ("obs_sweep_off", ObsLevel::Off, true),
        ("obs_sweep_summary", ObsLevel::Summary, true),
        ("obs_sweep_summary_norec", ObsLevel::Summary, false),
        ("obs_sweep_trace", ObsLevel::Trace, true),
    ] {
        bevra_obs::set_level(level);
        bevra_obs::recorder::set_recording(recording);
        drain_obs();
        c.bench_function(label, |b| {
            b.iter(|| {
                let out = sweep_once(&load, &cs);
                drain_obs();
                out
            });
        });
        drain_obs();
    }
    bevra_obs::set_level(ObsLevel::Off);
    bevra_obs::recorder::set_recording(true);
}

criterion_group!(benches, obs_overhead);
criterion_main!(benches);
