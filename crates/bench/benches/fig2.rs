//! Bench: the Figure 2 (Poisson) kernels — utility curves, bandwidth gap,
//! and welfare sweep at the fast preset, plus the hot inner evaluations.

use bevra_core::{bandwidth_gap, DiscreteModel};
use bevra_load::{Poisson, Tabulated};
use bevra_report::figures::{fig2, Quality};
use bevra_utility::{AdaptiveExp, Rigid};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig2_poisson(c: &mut Criterion) {
    c.bench_function("fig2_full_fast_preset", |b| {
        b.iter(|| black_box(fig2(Quality::Fast)));
    });
    let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
    let rigid = DiscreteModel::new(load.clone(), Rigid::unit());
    let adaptive = DiscreteModel::new(load, AdaptiveExp::paper());
    c.bench_function("fig2_best_effort_eval_rigid", |b| {
        b.iter(|| black_box(rigid.best_effort(black_box(120.0))));
    });
    c.bench_function("fig2_best_effort_eval_adaptive", |b| {
        b.iter(|| black_box(adaptive.best_effort(black_box(120.0))));
    });
    c.bench_function("fig2_bandwidth_gap_point", |b| {
        b.iter(|| black_box(bandwidth_gap(&adaptive, black_box(80.0)).unwrap()));
    });
}

criterion_group!(benches, fig2_poisson);
criterion_main!(benches);
