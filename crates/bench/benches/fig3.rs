//! Bench: the Figure 3 (exponential load) kernels, discrete and closed-form.

use bevra_core::continuum::{ExponentialRampClosed, ExponentialRigidClosed};
use bevra_core::{bandwidth_gap, DiscreteModel};
use bevra_load::{Geometric, Tabulated};
use bevra_report::figures::{fig3, Quality};
use bevra_utility::Rigid;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig3_exponential(c: &mut Criterion) {
    c.bench_function("fig3_full_fast_preset", |b| {
        b.iter(|| black_box(fig3(Quality::Fast)));
    });
    let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20);
    let m = DiscreteModel::new(load, Rigid::unit());
    c.bench_function("fig3_bandwidth_gap_discrete", |b| {
        b.iter(|| black_box(bandwidth_gap(&m, black_box(400.0)).unwrap()));
    });
    let closed = ExponentialRigidClosed::from_mean(100.0);
    c.bench_function("fig3_bandwidth_gap_closed_form", |b| {
        b.iter(|| black_box(closed.bandwidth_gap(black_box(400.0)).unwrap()));
    });
    let ramp = ExponentialRampClosed::new(0.01, 0.5);
    c.bench_function("fig3_gamma_closed_form", |b| {
        b.iter(|| black_box(ramp.gamma(black_box(0.01)).unwrap()));
    });
}

criterion_group!(benches, fig3_exponential);
criterion_main!(benches);
