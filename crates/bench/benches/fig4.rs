//! Bench: the Figure 4 (algebraic load) kernels — table calibration, the
//! megabyte-scale best-effort sum, and the closed forms.

use bevra_core::continuum::AlgebraicClosed;
use bevra_core::DiscreteModel;
use bevra_load::{Algebraic, Tabulated};
use bevra_report::figures::{fig4, Quality};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig4_algebraic(c: &mut Criterion) {
    c.bench_function("fig4_full_fast_preset", |b| {
        b.iter(|| black_box(fig4(Quality::Fast)));
    });
    c.bench_function("fig4_calibrate_lambda", |b| {
        b.iter(|| black_box(Algebraic::from_mean(3.0, 100.0).unwrap()));
    });
    let model = Algebraic::from_mean(3.0, 100.0).unwrap();
    let load = Tabulated::from_model(&model, 1e-9, 1 << 18);
    let m = DiscreteModel::new(load, AdaptiveExp::paper());
    c.bench_function("fig4_best_effort_eval_262k_table", |b| {
        b.iter(|| black_box(m.best_effort(black_box(150.0))));
    });
    let closed = AlgebraicClosed::rigid(3.0);
    c.bench_function("fig4_closed_gamma", |b| {
        b.iter(|| black_box(closed.gamma()));
    });
}

criterion_group!(benches, fig4_algebraic);
criterion_main!(benches);
