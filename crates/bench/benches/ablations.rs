//! Ablation benches for the design choices called out in DESIGN.md §4:
//! Brent vs bisection, tanh-sinh vs adaptive Simpson, and compensated vs
//! naive summation.

use bevra_num::{bisect, brent, integrate, integrate_to_inf, tanh_sinh, NeumaierSum};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ablations(c: &mut Criterion) {
    // Root finding on the bandwidth-gap transcendental.
    let beta = 0.01;
    let cap = 400.0;
    let f = move |d: f64| beta * d - (1.0 + beta * (cap + d)).ln();
    c.bench_function("ablate_rootfind_brent", |b| {
        b.iter(|| black_box(brent(f, 0.0, 10_000.0, 1e-10).unwrap()));
    });
    c.bench_function("ablate_rootfind_bisect", |b| {
        b.iter(|| black_box(bisect(f, 0.0, 10_000.0, 1e-10).unwrap()));
    });

    // Quadrature on the continuum best-effort integrand.
    let g = |k: f64| k * 0.01 * (-0.01 * k).exp() * (1.0 - (-(100.0 / k)).exp());
    c.bench_function("ablate_quad_simpson", |b| {
        b.iter(|| black_box(integrate(g, 1.0, 2_000.0, 1e-10).unwrap()));
    });
    c.bench_function("ablate_quad_tanh_sinh", |b| {
        b.iter(|| black_box(tanh_sinh(g, 1.0, 2_000.0, 1e-10).unwrap()));
    });
    c.bench_function("ablate_quad_semi_infinite", |b| {
        b.iter(|| black_box(integrate_to_inf(g, 1.0, 1e-10).unwrap()));
    });

    // Summation.
    let terms: Vec<f64> = (0..100_000).map(|i| ((i % 17) as f64 - 8.0) * 1e-7).collect();
    c.bench_function("ablate_sum_neumaier", |b| {
        b.iter(|| {
            let acc: NeumaierSum = terms.iter().copied().collect();
            black_box(acc.total())
        });
    });
    c.bench_function("ablate_sum_naive", |b| {
        b.iter(|| black_box(terms.iter().sum::<f64>()));
    });
}

criterion_group!(benches, ablations);
criterion_main!(benches);
