//! Bench: regenerating Figure 1 (adaptive utility curve).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig1_adaptive_utility(c: &mut Criterion) {
    c.bench_function("fig1_adaptive_utility", |b| {
        b.iter(|| black_box(bevra_report::figures::fig1()));
    });
}

criterion_group!(benches, fig1_adaptive_utility);
criterion_main!(benches);
