//! Bench: the §5 extension kernels (sampling order statistics and the
//! retrying fixed point).

use bevra_core::retrying::{GeometricFamily, RetryModel};
use bevra_core::{DiscreteModel, SamplingModel};
use bevra_load::{flow_perspective, max_of_s, Geometric, Tabulated};
use bevra_report::figures::{ext_sampling, Quality};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn extensions(c: &mut Criterion) {
    c.bench_function("ext_sampling_fast_preset", |b| {
        b.iter(|| black_box(ext_sampling(Quality::Fast)));
    });
    let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 16);
    let q = flow_perspective(&load);
    c.bench_function("ext_max_of_s_order_stats", |b| {
        b.iter(|| black_box(max_of_s(&q, black_box(10))));
    });
    let sm = SamplingModel::new(DiscreteModel::new(load, AdaptiveExp::paper()), 10);
    c.bench_function("ext_sampling_reservation_eval", |b| {
        b.iter(|| black_box(sm.reservation(black_box(150.0))));
    });
    let rm = RetryModel::new(
        GeometricFamily::new(1e-10, 1 << 16),
        AdaptiveExp::paper(),
        100.0,
        0.1,
    );
    c.bench_function("ext_retry_fixed_point", |b| {
        b.iter(|| black_box(rm.evaluate(black_box(150.0)).unwrap()));
    });
}

criterion_group!(benches, extensions);
criterion_main!(benches);
