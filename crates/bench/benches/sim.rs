//! Bench: simulator throughput and the event-queue ablation.

use bevra_sim::queue::{BinaryHeapQueue, EventQueue, SortedVecQueue};
use bevra_sim::{Discipline, HoldingDist, MixedPoisson, SimConfig, Simulation};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn sim_benches(c: &mut Criterion) {
    let cfg = SimConfig {
        capacity: 40.0,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(30.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 10.0,
        horizon: 500.0,
        seed: 1,
        max_events: None,
    };
    c.bench_function("sim_mm_infty_500tu", |b| {
        b.iter(|| black_box(Simulation::new(cfg.clone()).run()));
    });

    // Event-queue ablation (DESIGN.md §4): binary heap vs sorted vec under
    // a hold-model workload.
    fn churn(q: &mut impl EventQueue, n: u64) -> f64 {
        use bevra_sim::events::{Entry, EventKind};
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut t_out = 0.0;
        for seq in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x >> 11) as f64 / (1u64 << 53) as f64;
            q.push(Entry { time: t, seq, kind: EventKind::Arrival });
            if seq % 2 == 1 {
                if let Some(e) = q.pop() {
                    t_out += e.time;
                }
            }
        }
        t_out
    }
    c.bench_function("ablate_eventq_binary_heap", |b| {
        b.iter(|| black_box(churn(&mut BinaryHeapQueue::new(), 4_096)));
    });
    c.bench_function("ablate_eventq_sorted_vec", |b| {
        b.iter(|| black_box(churn(&mut SortedVecQueue::new(), 4_096)));
    });
}

criterion_group!(benches, sim_benches);
criterion_main!(benches);
