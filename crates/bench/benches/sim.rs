//! Bench: simulator throughput and the event-queue ablation.
//!
//! The `sim_million_flow_*` rows are the acceptance bench for the
//! timer-wheel/SoA event-loop rearchitecture (DESIGN.md § "The event loop
//! at scale"): one million flow arrivals at k̄ = 2000, measured through
//! the legacy heap loop (the pre-refactor implementation preserved in
//! `bevra_sim::legacy`), the new loop on both queue backends, and the
//! sharded fleet. The wheel+SoA row must beat the legacy row by ≥10× —
//! CI's sim-scale job gates on these rows via `scripts/perf_smoke.py`.

use bevra_sim::fleet::{Fleet, FleetConfig};
use bevra_sim::queue::{BinaryHeapQueue, EventQueue, SortedVecQueue};
use bevra_sim::wheel::TimerWheelQueue;
use bevra_sim::{legacy, Discipline, HoldingDist, MixedPoisson, QueueKind, SimConfig, Simulation};
use bevra_utility::AdaptiveExp;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// One million flow arrivals: k̄ = 5000 concurrent flows for 200 time
/// units. High occupancy is the regime that separates the architectures —
/// the legacy loop pays an O(active) max-population scan per departure
/// and a heap reorder per event, the new loop pays O(1) for both.
fn million_flow_cfg() -> SimConfig {
    SimConfig {
        capacity: 6250.0,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(5000.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 10.0,
        horizon: 210.0,
        seed: 0x1_000_000,
        max_events: None,
    }
}

fn million_flow_benches(c: &mut Criterion) {
    let cfg = million_flow_cfg();
    // Events per iteration, so ns_per_point in the artifact is ns/event
    // and events/s = 1e9 / ns_per_point.
    let events = Simulation::new(cfg.clone()).run_on(QueueKind::Wheel).events as usize;

    c.bench_function("sim_million_flow_legacy_heap", |b| {
        b.points(events);
        b.iter(|| black_box(legacy::run(&cfg)));
    });
    c.bench_function("sim_million_flow_heap_soa", |b| {
        b.points(events);
        b.iter(|| black_box(Simulation::new(cfg.clone()).run_on(QueueKind::Heap)));
    });
    c.bench_function("sim_million_flow_wheel_soa", |b| {
        b.points(events);
        b.iter(|| black_box(Simulation::new(cfg.clone()).run_on(QueueKind::Wheel)));
    });

    // The ROADMAP-item-2 scale target: ten million flows in one run,
    // through the sharded fleet (4 lanes of k̄ = 1250 for 2000 time
    // units) at the ambient shard count.
    let fleet = Fleet::new(FleetConfig {
        base: SimConfig {
            arrivals: MixedPoisson::fixed(1250.0),
            capacity: 1562.5,
            horizon: 2010.0,
            ..cfg
        },
        lanes: 4,
    });
    let fleet_events = fleet.run_on(bevra_sim::fleet::shard_count(), QueueKind::Wheel).merged.events;
    c.bench_function("sim_ten_million_flow_fleet", |b| {
        b.points(fleet_events as usize);
        b.iter(|| {
            black_box(fleet.run_on(bevra_sim::fleet::shard_count(), QueueKind::Wheel))
        });
    });
}

fn sim_benches(c: &mut Criterion) {
    let cfg = SimConfig {
        capacity: 40.0,
        discipline: Discipline::BestEffort,
        arrivals: MixedPoisson::fixed(30.0),
        holding: HoldingDist::Exponential { mean: 1.0 },
        utility: Arc::new(AdaptiveExp::paper()),
        warmup: 10.0,
        horizon: 500.0,
        seed: 1,
        max_events: None,
    };
    c.bench_function("sim_mm_infty_500tu", |b| {
        b.iter(|| black_box(Simulation::new(cfg.clone()).run()));
    });

    // Event-queue ablation (DESIGN.md §4): binary heap vs sorted vec under
    // a hold-model workload.
    fn churn(q: &mut impl EventQueue, n: u64) -> f64 {
        use bevra_sim::events::{Entry, EventKind};
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        let mut t_out = 0.0;
        for seq in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x >> 11) as f64 / (1u64 << 53) as f64;
            q.push(Entry { time: t, seq, kind: EventKind::Arrival });
            if seq % 2 == 1 {
                if let Some(e) = q.pop() {
                    t_out += e.time;
                }
            }
        }
        t_out
    }
    c.bench_function("ablate_eventq_binary_heap", |b| {
        b.iter(|| black_box(churn(&mut BinaryHeapQueue::new(), 4_096)));
    });
    c.bench_function("ablate_eventq_sorted_vec", |b| {
        b.iter(|| black_box(churn(&mut SortedVecQueue::new(), 4_096)));
    });
    c.bench_function("ablate_eventq_timer_wheel", |b| {
        b.iter(|| black_box(churn(&mut TimerWheelQueue::with_granularity(1.0 / 4096.0), 4_096)));
    });
}

criterion_group!(benches, sim_benches, million_flow_benches);
criterion_main!(benches);
