//! Failure handling for the workspace: deterministic retries, cooperative
//! deadlines, circuit breakers, and supervised work units.
//!
//! The rest of the workspace *injects* adversity (`bevra-faults`) and
//! *accounts* for it (`SweepHealth`, `FleetHealth`); this crate is the layer
//! that *recovers*. Its four primitives share one design rule — *nothing
//! here may perturb a deterministic result*:
//!
//! * [`RetryPolicy`] — exponential backoff whose jitter is drawn from
//!   [`rand::derive_seed`], so a retry schedule is a pure function of the
//!   policy (deterministic per seed, monotone nondecreasing, bounded by a
//!   total budget). Waiting goes through the [`Clock`] abstraction from
//!   `bevra-faults`: real sleeps in production ([`WallClock`]), accounted
//!   virtual time under an active fault plan ([`VirtualClock`]).
//! * [`Deadline`] — a cooperative wall-clock budget token checked at coarse
//!   granularity (sweep points, simulator event batches). An expired
//!   deadline degrades a run to partial-with-health; it never kills work
//!   mid-item, so partial results stay bit-exact prefixes.
//! * [`CircuitBreaker`] — a per-site closed/open/half-open state machine
//!   with a *call-counted* (not wall-clock) probe cadence, so breaker
//!   behavior replays identically run to run.
//! * [`Supervisor`] — restarts failed work units under a [`RetryPolicy`],
//!   consulting a [`CircuitBreaker`] so persistent failure fails fast
//!   instead of burning the retry budget on every unit.
//!
//! Environment knobs, all following the workspace's warn-once-and-ignore
//! contract for malformed values
//! ([`bevra_num::env::warn_malformed_env`]):
//!
//! | variable | effect |
//! |---|---|
//! | `BEVRA_RETRY` | override a retry policy: `attempts=4,base=1,max=50,budget=200,seed=7` |
//! | `BEVRA_DEADLINE_MS` | cooperative deadline for sweeps and simulations |
//! | `BEVRA_CHECKPOINT` | checkpoint/resume mode (`rw`/`ro`, read by `bevra-engine`/`bevra-sim`) |

#![deny(missing_docs)]

pub mod breaker;
pub mod deadline;
pub mod retry;
pub mod supervisor;

pub use breaker::{BreakerState, CircuitBreaker};
pub use deadline::{Deadline, DEADLINE_ENV};
pub use retry::{RetryOutcome, RetryPolicy, RETRY_ENV};
pub use supervisor::{Supervisor, SupervisorStats};

// Re-export the clock abstraction this crate's waiting is built on, so
// callers need not also depend on bevra-faults directly.
pub use bevra_faults::io::{Clock, VirtualClock, WallClock};

/// The clock a resilience caller should wait on right now: the
/// deterministic [`VirtualClock`] whenever a fault plan is active (chaos
/// runs must not sleep), the real [`WallClock`] otherwise.
#[must_use]
pub fn ambient_clock() -> Box<dyn Clock> {
    if bevra_faults::active() {
        Box::new(VirtualClock::default())
    } else {
        Box::new(WallClock::default())
    }
}
