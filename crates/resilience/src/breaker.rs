//! Per-site circuit breakers with a deterministic probe cadence.

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow, consecutive failures are counted.
    Closed,
    /// Tripped: calls are rejected until the probe cadence admits one.
    Open,
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen,
}

/// A closed/open/half-open circuit breaker.
///
/// Unlike the textbook breaker, the probe cadence is counted in **rejected
/// calls**, not wall-clock time: after `probe_after` rejections while
/// open, the next call is admitted as a half-open probe. A call-counted
/// cadence is a pure function of the call sequence, so breaker decisions
/// replay identically across runs — the same determinism contract the rest
/// of the workspace holds (wall-clock cadences would make chaos replays
/// timing-dependent).
///
/// The breaker is a plain state machine with no interior mutability;
/// callers that share one across threads wrap it themselves (the workspace
/// drives breakers from supervision loops that are already serial).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    probe_after: u32,
    state: BreakerState,
    consecutive_failures: u32,
    rejections_since_open: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `failure_threshold` consecutive
    /// failures and probing after every `probe_after` rejections while
    /// open. Both are clamped to at least 1.
    #[must_use]
    pub fn new(failure_threshold: u32, probe_after: u32) -> Self {
        Self {
            failure_threshold: failure_threshold.max(1),
            probe_after: probe_after.max(1),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejections_since_open: 0,
            trips: 0,
        }
    }

    /// Whether the next call may proceed. While open, counts the rejection
    /// and — every `probe_after` rejections — admits the call as a
    /// half-open probe. While half-open, only the probe already admitted
    /// may run; further calls are rejected until the probe reports.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                self.rejections_since_open += 1;
                if self.rejections_since_open >= self.probe_after {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report a successful call: closes a half-open breaker and resets the
    /// failure count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.rejections_since_open = 0;
    }

    /// Report a failed call: a failed probe reopens immediately; enough
    /// consecutive failures while closed trip the breaker. Each transition
    /// to open counts one trip.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.rejections_since_open = 0;
        self.consecutive_failures = 0;
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether calls are currently rejected outright.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Transitions to open so far (the health-ledger counter).
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4);
        for _ in 0..2 {
            assert!(b.allow());
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(2, 1);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive failures do not trip");
    }

    #[test]
    fn open_breaker_probes_on_a_deterministic_cadence() {
        let mut b = CircuitBreaker::new(1, 3);
        b.record_failure();
        assert!(b.is_open());
        // Exactly two rejections, then the third call is the probe.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "third call while open is the half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_admits_only_the_probe_until_it_reports() {
        let mut b = CircuitBreaker::new(1, 1);
        b.record_failure();
        assert!(b.allow(), "probe admitted");
        assert!(!b.allow(), "no second call while the probe is outstanding");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn failed_probe_reopens_and_counts_a_trip() {
        let mut b = CircuitBreaker::new(1, 2);
        b.record_failure();
        assert_eq!(b.trips(), 1);
        assert!(!b.allow());
        assert!(b.allow(), "probe");
        b.record_failure();
        assert!(b.is_open(), "failed probe reopens");
        assert_eq!(b.trips(), 2);
        // The cadence restarts after the failed probe.
        assert!(!b.allow());
        assert!(b.allow(), "next probe after the cadence elapses again");
    }

    #[test]
    fn breaker_decisions_replay_identically() {
        // The same allow/failure sequence produces the same decisions —
        // no wall clock anywhere in the state machine.
        let drive = || {
            let mut b = CircuitBreaker::new(2, 3);
            let mut decisions = Vec::new();
            for i in 0..20 {
                let allowed = b.allow();
                decisions.push(allowed);
                if allowed && i % 3 != 2 {
                    b.record_failure();
                } else if allowed {
                    b.record_success();
                }
            }
            (decisions, b.trips())
        };
        assert_eq!(drive(), drive());
    }
}
