//! Cooperative wall-clock deadlines.

use bevra_num::env::{parse_millis, warn_malformed_env};
use std::time::{Duration, Instant};

/// Environment variable arming a run-wide [`Deadline`], in milliseconds.
pub const DEADLINE_ENV: &str = "BEVRA_DEADLINE_MS";

/// A cooperative deadline token.
///
/// Long-running loops (the checked sweep's grid walk, the simulator's
/// event loop) poll [`expired`](Self::expired) at coarse, item-aligned
/// granularity and degrade to a partial result with the shortfall recorded
/// in their health ledger. The token never interrupts anything — work
/// completed before expiry is bit-identical to the same prefix of an
/// undeadlined run.
///
/// The disarmed token ([`Deadline::none`], or [`DEADLINE_ENV`] unset) is a
/// single `Option` check and never expires, so the hot path cost of
/// supporting deadlines is negligible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    /// The disarmed deadline: never expires.
    #[must_use]
    pub fn none() -> Self {
        Self { expires: None }
    }

    /// A deadline `ms` milliseconds from now.
    #[must_use]
    pub fn after_ms(ms: u64) -> Self {
        Self { expires: Instant::now().checked_add(Duration::from_millis(ms)) }
    }

    /// The ambient deadline: [`DEADLINE_ENV`] if set and well-formed
    /// (a positive integer of milliseconds), else disarmed. Malformed
    /// values are reported once per component and ignored.
    #[must_use]
    pub fn from_env(component: &str) -> Self {
        match std::env::var(DEADLINE_ENV) {
            Ok(raw) => match parse_millis(&raw) {
                Some(ms) => Self::after_ms(ms),
                None => {
                    warn_malformed_env(
                        component,
                        DEADLINE_ENV,
                        &format!("{raw:?} (want a positive integer of milliseconds)"),
                    );
                    Self::none()
                }
            },
            Err(_) => Self::none(),
        }
    }

    /// Whether the deadline is armed at all.
    #[must_use]
    pub fn armed(&self) -> bool {
        self.expires.is_some()
    }

    /// Whether the deadline has passed. Disarmed deadlines never expire.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.expires.is_some_and(|at| Instant::now() >= at)
    }

    /// Milliseconds until expiry: `None` when disarmed, `Some(0)` once
    /// expired.
    #[must_use]
    pub fn remaining_ms(&self) -> Option<u64> {
        self.expires.map(|at| {
            at.saturating_duration_since(Instant::now()).as_millis().min(u128::from(u64::MAX))
                as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_expires() {
        let d = Deadline::none();
        assert!(!d.armed());
        assert!(!d.expired());
        assert_eq!(d.remaining_ms(), None);
    }

    #[test]
    fn zero_wait_deadline_expires_immediately() {
        let d = Deadline::after_ms(0);
        assert!(d.armed());
        assert!(d.expired());
        assert_eq!(d.remaining_ms(), Some(0));
    }

    #[test]
    fn distant_deadline_is_not_expired() {
        let d = Deadline::after_ms(60_000);
        assert!(d.armed());
        assert!(!d.expired());
        assert!(d.remaining_ms().is_some_and(|ms| ms > 30_000));
    }
}
