//! Deterministic exponential backoff with seeded jitter.

use bevra_faults::io::Clock;
use bevra_num::env::{warn_malformed_env, MAX_MILLIS};

/// Environment variable overriding a [`RetryPolicy`] (see
/// [`RetryPolicy::from_env`] for the grammar).
pub const RETRY_ENV: &str = "BEVRA_RETRY";

/// Most attempts any override may request; more is always a typo.
pub const MAX_ATTEMPTS: u32 = 64;

/// An exponential-backoff retry policy whose schedule is a pure function
/// of the policy itself.
///
/// The wait after failed attempt `a` (0-based) is
/// `min(base·2^a + jitter_a, max)` where `jitter_a` is drawn from
/// `derive_seed(seed, a)` in `[0, base·2^a / 2]`. Because the jitter never
/// exceeds half the raw step, the schedule is **monotone nondecreasing**,
/// and because it comes from the workspace's seed-derivation function it
/// is **deterministic per seed** — two runs of the same policy wait the
/// same milliseconds, which keeps chaos replays and checkpoint resumes
/// bit-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in milliseconds. Zero means
    /// immediate retry (the compute default: a panicked grid point is
    /// retried at once, never slept on).
    pub base_backoff_ms: u64,
    /// Per-step backoff ceiling, in milliseconds.
    pub max_backoff_ms: u64,
    /// Cumulative backoff budget, in milliseconds; the schedule truncates
    /// rather than exceed it. Zero means unbudgeted.
    pub total_budget_ms: u64,
    /// Jitter stream seed ([`rand::derive_seed`] master).
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// The I/O default, matching the bounded retry `bevra-faults` has
    /// always applied to artifact writes: 4 attempts, 1 ms base, 50 ms
    /// cap, 200 ms total.
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_ms: 1, max_backoff_ms: 50, total_budget_ms: 200, seed: 0 }
    }
}

impl RetryPolicy {
    /// The compute-path policy: one immediate retry, no backoff — exactly
    /// the engine pool's historical "one serial retry" behavior, now
    /// spelled as a policy.
    #[must_use]
    pub fn compute() -> Self {
        Self { max_attempts: 2, base_backoff_ms: 0, max_backoff_ms: 0, total_budget_ms: 0, seed: 0 }
    }

    /// The I/O policy ([`Default`]).
    #[must_use]
    pub fn io() -> Self {
        Self::default()
    }

    /// Replace the jitter seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff after failed attempt `attempt` (0-based), jitter
    /// included, in milliseconds.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let raw = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms);
        let jitter = if raw == 0 { 0 } else { rand::derive_seed(self.seed, u64::from(attempt)) % (raw / 2 + 1) };
        raw.saturating_add(jitter).min(self.max_backoff_ms)
    }

    /// The full wait schedule: one entry per allowed retry, truncated so
    /// the cumulative sum never exceeds [`total_budget_ms`] (when
    /// nonzero). `schedule().len() + 1` is therefore the number of
    /// attempts the policy actually permits.
    ///
    /// [`total_budget_ms`]: Self::total_budget_ms
    #[must_use]
    pub fn schedule(&self) -> Vec<u64> {
        let mut waits = Vec::new();
        let mut total = 0u64;
        for attempt in 0..self.max_attempts.max(1) - 1 {
            let wait = self.backoff_ms(attempt);
            if self.total_budget_ms > 0 && total.saturating_add(wait) > self.total_budget_ms {
                break;
            }
            total = total.saturating_add(wait);
            waits.push(wait);
        }
        waits
    }

    /// Attempts the policy actually permits after budget truncation.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.schedule().len() as u32 + 1
    }

    /// Run `op` under this policy: call it with the attempt index, retry
    /// on `Err` after the scheduled backoff on `clock`, stop at the first
    /// `Ok` or when attempts are exhausted.
    pub fn run<T, E>(
        &self,
        clock: &mut dyn Clock,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> (Result<T, E>, RetryOutcome) {
        let schedule = self.schedule();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => {
                    return (
                        Ok(v),
                        RetryOutcome { attempts: attempt + 1, retries: attempt, backoff_ms: clock.total_ms() },
                    )
                }
                Err(e) => {
                    if let Some(&wait) = schedule.get(attempt as usize) {
                        clock.sleep_ms(wait);
                        attempt += 1;
                    } else {
                        return (
                            Err(e),
                            RetryOutcome { attempts: attempt + 1, retries: attempt, backoff_ms: clock.total_ms() },
                        );
                    }
                }
            }
        }
    }

    /// Parse the `BEVRA_RETRY` grammar onto `self`: comma- or
    /// semicolon-separated `key=value` clauses, keys `attempts`, `base`,
    /// `max`, `budget` (milliseconds) and `seed`. Unmentioned fields keep
    /// their current values.
    ///
    /// # Errors
    ///
    /// A description of the first malformed clause.
    pub fn parse_onto(mut self, text: &str) -> Result<Self, String> {
        for clause in text.split([',', ';']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause missing '=': {clause:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let ms = || -> Result<u64, String> {
                match value.parse::<u64>() {
                    Ok(v) if v <= MAX_MILLIS => Ok(v),
                    _ => Err(format!("bad millisecond value in {clause:?}")),
                }
            };
            match key {
                "attempts" => {
                    self.max_attempts =
                        bevra_num::env::parse_bounded_count(value, MAX_ATTEMPTS as usize)
                            .ok_or_else(|| format!("bad attempts value in {clause:?}"))?
                            as u32;
                }
                "base" => self.base_backoff_ms = ms()?,
                "max" => self.max_backoff_ms = ms()?,
                "budget" => self.total_budget_ms = ms()?,
                "seed" => {
                    self.seed =
                        value.parse().map_err(|_| format!("bad seed value in {clause:?}"))?;
                }
                _ => return Err(format!("unknown key {key:?} in {clause:?}")),
            }
        }
        Ok(self)
    }

    /// `default`, overridden by [`RETRY_ENV`] when set and well-formed.
    /// A malformed value is reported once per component and ignored — the
    /// same contract `BEVRA_FAULTS` follows.
    #[must_use]
    pub fn from_env(component: &str, default: Self) -> Self {
        match std::env::var(RETRY_ENV) {
            Ok(raw) => match default.parse_onto(&raw) {
                Ok(policy) => policy,
                Err(e) => {
                    warn_malformed_env(component, RETRY_ENV, &e);
                    default
                }
            },
            Err(_) => default,
        }
    }
}

/// What one policy-driven [`RetryPolicy::run`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Attempts performed (1 = first try succeeded).
    pub attempts: u32,
    /// Retries performed (`attempts - 1`).
    pub retries: u32,
    /// Total backoff accounted by the clock, in milliseconds.
    pub backoff_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_faults::io::VirtualClock;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy { max_attempts: 8, base_backoff_ms: 2, max_backoff_ms: 100, total_budget_ms: 0, seed: 7 };
        assert_eq!(p.schedule(), p.schedule());
        let q = p.with_seed(8);
        assert_ne!(p.schedule(), q.schedule(), "different seeds jitter differently");
    }

    #[test]
    fn schedule_is_monotone_and_capped() {
        for seed in 0..32 {
            let p = RetryPolicy { max_attempts: 12, base_backoff_ms: 3, max_backoff_ms: 500, total_budget_ms: 0, seed };
            let s = p.schedule();
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: schedule {s:?} not monotone");
            }
            assert!(s.iter().all(|&w| w <= 500), "seed {seed}: step above cap in {s:?}");
        }
    }

    #[test]
    fn schedule_respects_total_budget() {
        let p = RetryPolicy { max_attempts: 20, base_backoff_ms: 10, max_backoff_ms: 1000, total_budget_ms: 100, seed: 3 };
        let s = p.schedule();
        assert!(s.iter().sum::<u64>() <= 100, "budget exceeded: {s:?}");
        assert!(!s.is_empty(), "budget 100 admits at least the first wait");
    }

    #[test]
    fn compute_policy_reproduces_one_immediate_retry() {
        let p = RetryPolicy::compute();
        assert_eq!(p.attempts(), 2);
        assert_eq!(p.schedule(), vec![0]);
    }

    #[test]
    fn run_retries_until_success_and_accounts_backoff() {
        let p = RetryPolicy { max_attempts: 5, base_backoff_ms: 1, max_backoff_ms: 10, total_budget_ms: 0, seed: 1 };
        let mut clock = VirtualClock::default();
        let mut calls = 0u32;
        let (result, outcome) = p.run(&mut clock, |attempt| {
            calls += 1;
            if attempt < 2 { Err("flaky") } else { Ok(attempt) }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(calls, 3);
        assert_eq!(outcome.attempts, 3);
        assert_eq!(outcome.retries, 2);
        assert_eq!(outcome.backoff_ms, p.backoff_ms(0) + p.backoff_ms(1));
    }

    #[test]
    fn run_gives_up_after_exhausting_attempts() {
        let p = RetryPolicy { max_attempts: 3, base_backoff_ms: 0, max_backoff_ms: 0, total_budget_ms: 0, seed: 0 };
        let mut clock = VirtualClock::default();
        let (result, outcome): (Result<(), _>, _) = p.run(&mut clock, |_| Err("always"));
        assert_eq!(result, Err("always"));
        assert_eq!(outcome.attempts, 3);
    }

    #[test]
    fn parse_overrides_and_rejects_garbage() {
        let base = RetryPolicy::io();
        let p = base.parse_onto("attempts=6, base=2, max=80, budget=300, seed=9").unwrap();
        assert_eq!(p.max_attempts, 6);
        assert_eq!(p.base_backoff_ms, 2);
        assert_eq!(p.max_backoff_ms, 80);
        assert_eq!(p.total_budget_ms, 300);
        assert_eq!(p.seed, 9);
        assert_eq!(base.parse_onto("").unwrap(), base, "empty override is a no-op");
        for bad in [
            "attempts", "attempts=0", "attempts=65", "attempts=lots", "base=-1", "base=1.5",
            "max=99999999999999999999", "budget=abc", "seed=0x7", "pace=3",
        ] {
            assert!(base.parse_onto(bad).is_err(), "accepted {bad:?}");
        }
    }
}
