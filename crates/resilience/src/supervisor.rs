//! Supervised restart of failed work units.

use crate::breaker::CircuitBreaker;
use crate::retry::RetryPolicy;
use bevra_faults::io::Clock;

/// Cumulative counters a [`Supervisor`] accumulates across work units —
/// the numbers that flow into `FleetHealth` and the run ledger.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Restarts performed (retry attempts beyond each unit's first).
    pub restarts: u64,
    /// Units that stayed failed after the policy was exhausted.
    pub gave_up: u64,
    /// Units rejected outright by the open breaker.
    pub rejected: u64,
}

/// Restarts failed work units under a [`RetryPolicy`], consulting a
/// [`CircuitBreaker`] so persistent failure fails fast.
///
/// One supervisor drives many units serially (e.g. the dead lanes of a
/// fleet shard): each unit is retried per the policy's deterministic
/// schedule, each unit's *final* outcome feeds the breaker, and once the
/// breaker opens, remaining units are rejected without burning their
/// retry budget — the breaker's probe cadence decides when to test the
/// waters again.
#[derive(Debug)]
pub struct Supervisor {
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    stats: SupervisorStats,
}

impl Supervisor {
    /// A supervisor restarting units under `policy`, guarded by `breaker`.
    #[must_use]
    pub fn new(policy: RetryPolicy, breaker: CircuitBreaker) -> Self {
        Self { policy, breaker, stats: SupervisorStats::default() }
    }

    /// Run one work unit: `op` is called with the attempt index and
    /// retried per the policy. Returns `None` if the breaker rejected the
    /// unit or every attempt failed; the distinction is visible in
    /// [`stats`](Self::stats).
    pub fn run_unit<T>(
        &mut self,
        clock: &mut dyn Clock,
        mut op: impl FnMut(u32) -> Result<T, String>,
    ) -> Option<T> {
        if !self.breaker.allow() {
            self.stats.rejected += 1;
            return None;
        }
        let (result, outcome) = self.policy.run(clock, &mut op);
        self.stats.restarts += u64::from(outcome.retries);
        match result {
            Ok(v) => {
                self.breaker.record_success();
                Some(v)
            }
            Err(_) => {
                self.breaker.record_failure();
                self.stats.gave_up += 1;
                None
            }
        }
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// Breaker trips so far.
    #[must_use]
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// The breaker, for state inspection.
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_faults::io::VirtualClock;

    fn supervisor(attempts: u32, threshold: u32) -> Supervisor {
        let policy = RetryPolicy {
            max_attempts: attempts,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            total_budget_ms: 0,
            seed: 0,
        };
        Supervisor::new(policy, CircuitBreaker::new(threshold, 2))
    }

    #[test]
    fn transient_unit_failure_is_restarted_and_counted() {
        let mut s = supervisor(3, 4);
        let mut clock = VirtualClock::default();
        let got = s.run_unit(&mut clock, |attempt| {
            if attempt == 0 { Err("transient".into()) } else { Ok(attempt) }
        });
        assert_eq!(got, Some(1));
        assert_eq!(s.stats(), SupervisorStats { restarts: 1, gave_up: 0, rejected: 0 });
        assert_eq!(s.breaker_trips(), 0);
    }

    #[test]
    fn persistent_failures_trip_the_breaker_and_fail_fast() {
        let mut s = supervisor(2, 2);
        let mut clock = VirtualClock::default();
        for _ in 0..2 {
            assert_eq!(s.run_unit(&mut clock, |_| Err::<(), _>("dead".into())), None);
        }
        assert_eq!(s.breaker_trips(), 1, "two failed units at threshold 2 trip the breaker");
        // The next unit is rejected without any attempt.
        let mut called = false;
        assert_eq!(
            s.run_unit(&mut clock, |_| {
                called = true;
                Ok(())
            }),
            None
        );
        assert!(!called, "open breaker must not spend attempts");
        assert_eq!(s.stats().rejected, 1);
        // The probe cadence (2 rejections) eventually admits a unit again.
        let recovered = s.run_unit(&mut clock, |_| Ok::<_, String>(42));
        assert_eq!(recovered, Some(42), "probe call recovers the breaker");
        assert!(!s.breaker().is_open());
    }
}
