//! Injected-I/O-fault tests for artifact persistence.
//!
//! Every test installs a `bevra_faults` plan; the install guard
//! serializes them so the process-global injection state never bleeds
//! between tests. Keep plan-free tests out of this binary.

use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
use bevra_report::persist::{load_figure, save_figure};
use bevra_report::series::{Figure, Panel, Series};
use std::path::PathBuf;

fn sample_figure(tag: &str) -> Figure {
    Figure {
        id: format!("faults-{tag}"),
        caption: "io fault test".into(),
        panels: vec![Panel {
            title: "p".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series::new("s", vec![1.0, 2.0], vec![0.5, 0.25])],
        }],
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bevra-report-faults-{tag}"));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A kill-mid-write (permanent I/O fault, which leaves a truncated temp
/// payload before erroring) must leave the complete previous artifact on
/// disk — parseable, never a truncated hybrid.
#[test]
fn failed_overwrite_leaves_previous_figure_parseable() {
    let dir = tmpdir("overwrite");
    let old = sample_figure("overwrite");
    let path = {
        // Write the first version cleanly under a plan with no I/O rules.
        let _guard = install(FaultPlan::seeded(0));
        save_figure(&old, &dir).expect("clean save")
    };
    let mut newer = sample_figure("overwrite");
    newer.caption = "second version that must not land".into();
    let plan = FaultPlan::seeded(0)
        .rule(FaultRule::always(FaultKind::IoPermanent, "io/report/figure"));
    let _guard = install(plan);
    save_figure(&newer, &dir).expect_err("injected permanent fault");
    let on_disk = load_figure(&path).expect("old artifact still parses");
    assert_eq!(on_disk, old, "old artifact byte-complete after failed overwrite");
    assert!(
        !bevra_faults::io::temp_path(&path).exists(),
        "no truncated temp file left behind"
    );
}

/// A fresh path whose first write fails must end up absent — round-trip
/// or nothing, never a partial file.
#[test]
fn failed_first_write_leaves_no_artifact() {
    let dir = tmpdir("fresh");
    let plan = FaultPlan::seeded(0)
        .rule(FaultRule::always(FaultKind::IoPermanent, "io/report/figure"));
    let _guard = install(plan);
    save_figure(&sample_figure("fresh"), &dir).expect_err("injected fault");
    assert!(
        std::fs::read_dir(&dir).unwrap().next().is_none(),
        "no partial artifact in {}",
        dir.display()
    );
}

/// Transient faults are retried (with the deterministic virtual clock —
/// no real sleeping) and the new artifact lands complete.
#[test]
fn transient_fault_retries_and_new_artifact_lands() {
    let dir = tmpdir("transient");
    let plan = FaultPlan::seeded(0)
        .rule(FaultRule::always(FaultKind::IoTransient, "io/report/figure").with_n(2));
    let _guard = install(plan);
    let fig = sample_figure("transient");
    let t0 = std::time::Instant::now();
    let path = save_figure(&fig, &dir).expect("retries ride out the transient fault");
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(500),
        "virtual clock: no real backoff sleeps under an active plan"
    );
    assert_eq!(load_figure(&path).expect("new artifact parses"), fig);
}
