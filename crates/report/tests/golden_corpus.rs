//! Golden-corpus snapshot tests: regenerate figure CSVs and diff them
//! against committed goldens with per-column ULP budgets
//! (`bevra_check::compare_csv`).
//!
//! The corpus pins two fully deterministic artifacts:
//!
//! * `fig1-panel1.csv` — the adaptive utility curve (401 points of
//!   `π(b) = 1 − e^{−b²/(κ+b)}`), regenerated through the real
//!   `fig1()` + `write_panel_csv` pipeline;
//! * `sweep-poisson20.csv` — a small discrete sweep (Poisson load,
//!   `k̄ = 20`, eight capacities, both rigid and adaptive utilities)
//!   through the memoized `SweepEngine`, covering `B`, `R`, `δ` and the
//!   root-solved `Δ`.
//!
//! Budgets: the `x`/`capacity` columns are grid arithmetic and must be
//! bitwise; utility columns get a few ULPs for libm (`exp`, `ln`) drift
//! across toolchains; the bandwidth gap column gets a larger budget
//! because the root finder amplifies last-ULP differences of the utility
//! evaluations it brackets with.
//!
//! To re-bless after an *intentional* output change:
//!
//! ```text
//! BEVRA_BLESS=1 cargo test -p bevra-report --test golden_corpus
//! ```

use bevra_core::DiscreteModel;
use bevra_engine::{ExecMode, SweepEngine};
use bevra_load::{Poisson, Tabulated};
use bevra_report::csv::write_panel_csv;
use bevra_report::figures::fig1;
use bevra_report::series::{Panel, Series};
use bevra_utility::{AdaptiveExp, Rigid, Utility};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Diff `candidate` against the committed golden `name`, or rewrite the
/// golden when `BEVRA_BLESS` is set.
fn assert_matches_golden(name: &str, candidate: &str, budgets: &[(&str, u64)]) {
    let path = golden_dir().join(name);
    if std::env::var_os("BEVRA_BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, candidate).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BEVRA_BLESS=1", path.display()));
    bevra_check::compare_csv(&golden, candidate, budgets, 0)
        .unwrap_or_else(|e| panic!("{name} drifted from golden: {e}"));
}

fn panel_csv(panel: &Panel) -> String {
    let mut buf = Vec::new();
    write_panel_csv(panel, &mut buf).expect("in-memory CSV write");
    String::from_utf8(buf).expect("CSV is UTF-8")
}

#[test]
fn fig1_utility_curve_matches_golden() {
    let fig = fig1();
    let csv = panel_csv(&fig.panels[0]);
    // The curve is one exp() per cell; the x grid is exact binary
    // arithmetic (i · 0.025 rounds identically everywhere).
    assert_matches_golden("fig1-panel1.csv", &csv, &[("bandwidth b", 0), ("π(b)", 4)]);
}

#[test]
fn small_sweep_matches_golden() {
    let load = Arc::new(Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12));
    let capacities = [2.0, 5.0, 10.0, 15.0, 20.0, 40.0, 80.0, 160.0];
    let mut series = Vec::new();
    for (name, utility) in [
        ("rigid", Arc::new(Rigid::unit()) as Arc<dyn Utility>),
        ("adaptive", Arc::new(AdaptiveExp::paper()) as Arc<dyn Utility>),
    ] {
        let engine = SweepEngine::with_mode(
            DiscreteModel::new(Arc::clone(&load), utility),
            ExecMode::Serial,
        );
        let points = engine.sweep(&capacities);
        let columns: [(&str, Vec<f64>); 4] = [
            ("B", points.iter().map(|p| p.best_effort).collect()),
            ("R", points.iter().map(|p| p.reservation).collect()),
            ("delta", points.iter().map(|p| p.performance_gap).collect()),
            ("Delta", points.iter().map(|p| p.bandwidth_gap).collect()),
        ];
        for (col, ys) in columns {
            series.push(Series::new(format!("{name} {col}"), capacities.to_vec(), ys));
        }
    }
    let panel = Panel {
        title: "golden sweep - Poisson(20)".into(),
        xlabel: "capacity".into(),
        ylabel: "value".into(),
        series,
    };
    let csv = panel_csv(&panel);
    assert_matches_golden(
        "sweep-poisson20.csv",
        &csv,
        &[
            ("capacity", 0),
            // Table sums over a few hundred cells with one exp/powi per
            // cell: a handful of ULPs absorbs libm drift.
            ("rigid B", 8),
            ("rigid R", 8),
            ("rigid delta", 8),
            ("adaptive B", 8),
            ("adaptive R", 8),
            ("adaptive delta", 8),
            // Δ comes out of a bracketing root finder on top of those
            // sums; last-ULP input drift can move the accepted root by
            // many ULPs without being a regression.
            ("rigid Delta", 4096),
            ("adaptive Delta", 4096),
        ],
    );
}
