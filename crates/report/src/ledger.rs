//! Reader side of the cross-run ledger (`results/ledger.jsonl`).
//!
//! The writer side lives in `bevra-engine` ([`bevra_engine::ledger`]):
//! every figure run appends one CRC-tailed JSONL line. This module parses
//! the file back — skipping (and counting) torn, corrupt, or
//! foreign-schema lines instead of failing on them — renders trend tables
//! over the history, and detects two kinds of regression the `obs-report`
//! binary gates on:
//!
//! * **digest** — two runs with the same id, config fingerprint, and
//!   kernel produced different result digests: the sweep is no longer
//!   deterministic (or the model changed without re-keying);
//! * **perf** — the latest run of an id/kernel pair is more than
//!   `threshold ×` the median ns-per-point of its predecessors.

use crate::json::JsonValue;
use crate::table::markdown_table;
use bevra_engine::ledger::{fnv1a, LedgerRecord, LEDGER_SCHEMA};

/// A parsed ledger: the records that survived validation plus how many
/// lines were skipped (torn tails, CRC mismatches, foreign schemas).
#[derive(Debug, Default)]
pub struct ParsedLedger {
    /// Valid records, in file (append) order.
    pub records: Vec<LedgerRecord>,
    /// Lines that failed CRC, schema, or field validation.
    pub skipped: usize,
}

fn get_u64(v: &JsonValue, key: &str) -> Option<u64> {
    let n = v.get(key)?.as_f64()?;
    if n.is_finite() && n >= 0.0 {
        Some(n as u64)
    } else {
        None
    }
}

fn get_hex(v: &JsonValue, key: &str) -> Option<u64> {
    u64::from_str_radix(v.get(key)?.as_str()?, 16).ok()
}

fn parse_line(line: &str) -> Option<LedgerRecord> {
    // CRC first: everything before `,"crc":"` must hash to the recorded
    // value, so a torn tail or bit flip is rejected before JSON parsing.
    let crc_at = line.rfind(",\"crc\":\"")?;
    let doc = JsonValue::parse(line).ok()?;
    if doc.get("schema")?.as_str()? != LEDGER_SCHEMA {
        return None;
    }
    if get_hex(&doc, "crc")? != fnv1a(&line.as_bytes()[..crc_at]) {
        return None;
    }
    Some(LedgerRecord {
        id: doc.get("id")?.as_str()?.to_string(),
        unix_ms: get_u64(&doc, "unix_ms")?,
        fingerprint: get_hex(&doc, "fingerprint")?,
        kernel: doc.get("kernel")?.as_str()?.to_string(),
        threads: get_u64(&doc, "threads")?,
        points: get_u64(&doc, "points")?,
        seconds: doc.get("seconds")?.as_f64().unwrap_or(f64::NAN),
        cache_hits: get_u64(&doc, "cache_hits")?,
        cache_misses: get_u64(&doc, "cache_misses")?,
        ok: get_u64(&doc, "ok")?,
        degraded: get_u64(&doc, "degraded")?,
        failed: get_u64(&doc, "failed")?,
        non_finite: get_u64(&doc, "non_finite")?,
        // Resilience counters arrived mid-schema; absent on older lines,
        // which default to zero rather than being skipped.
        retries: get_u64(&doc, "retries").unwrap_or(0),
        breaker_trips: get_u64(&doc, "breaker_trips").unwrap_or(0),
        restarts: get_u64(&doc, "restarts").unwrap_or(0),
        // The SIMD tier stamp also arrived mid-schema: older lines carry
        // no field and parse as "unknown" (append-tolerant, never skipped).
        simd: doc
            .get("simd")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string(),
        digest: get_hex(&doc, "digest")?,
    })
}

/// Parse ledger text: one record per valid line, counting every invalid
/// non-empty line as skipped.
#[must_use]
pub fn parse_ledger(text: &str) -> ParsedLedger {
    let mut out = ParsedLedger::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(rec) => out.records.push(rec),
            None => out.skipped += 1,
        }
    }
    out
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub enum Regression {
    /// Same id + fingerprint + kernel, different result digest.
    Digest {
        /// Run id of the offending pair.
        id: String,
        /// Kernel capability stamp shared by the pair.
        kernel: String,
        /// Digest of the earlier run.
        prev: u64,
        /// Digest of the later run.
        got: u64,
    },
    /// Same id + fingerprint + kernel, different digest, but the runs
    /// also report **different SIMD tiers**. The dispatched kernels are
    /// bitwise across tiers by contract, so this *should* never happen —
    /// but a cross-machine ledger (or a `BEVRA_SIMD` override) is the one
    /// place an honest tier difference and a genuine determinism break
    /// are indistinguishable. Surfaced as an informational divergence
    /// instead of a gating regression.
    TierDivergence {
        /// Run id of the offending pair.
        id: String,
        /// Kernel capability stamp shared by the pair.
        kernel: String,
        /// SIMD tier of the earlier run.
        prev_simd: String,
        /// SIMD tier of the later run.
        got_simd: String,
        /// Digest of the earlier run.
        prev: u64,
        /// Digest of the later run.
        got: u64,
    },
    /// Latest ns-per-point blew past the history for this id + kernel.
    Perf {
        /// Run id.
        id: String,
        /// Kernel capability stamp.
        kernel: String,
        /// Median ns-per-point of the prior runs.
        baseline_ns: f64,
        /// The latest run's ns-per-point.
        latest_ns: f64,
    },
}

impl Regression {
    /// Whether this finding should fail the gate (`obs-report` exit 1).
    /// Tier divergences are reported but non-fatal.
    #[must_use]
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Regression::TierDivergence { .. })
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Regression::Digest { id, kernel, prev, got } => write!(
                f,
                "digest regression: {id} ({kernel}): {prev:016x} -> {got:016x} \
                 for the same config fingerprint"
            ),
            Regression::TierDivergence { id, kernel, prev_simd, got_simd, prev, got } => write!(
                f,
                "digest divergence across SIMD tiers: {id} ({kernel}): \
                 {prev:016x} [{prev_simd}] vs {got:016x} [{got_simd}] — \
                 expected bitwise parity; compare tiers on one machine to \
                 decide whether this is a determinism break"
            ),
            Regression::Perf { id, kernel, baseline_ns, latest_ns } => write!(
                f,
                "perf regression: {id} ({kernel}): {latest_ns:.0} ns/point vs \
                 {baseline_ns:.0} ns/point historical median"
            ),
        }
    }
}

/// Scan records (in append order) for digest and perf regressions.
///
/// Digest: within each (id, fingerprint, kernel) group every record must
/// repeat the first record's digest. Perf: for each (id, kernel) pair
/// with at least [`MIN_PERF_HISTORY`] timed runs, the latest ns-per-point
/// must stay within `threshold ×` the median of its predecessors.
#[must_use]
pub fn find_regressions(records: &[LedgerRecord], threshold: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    // Digest: map (id, fingerprint, kernel) -> first (digest, simd) seen.
    // A mismatch within one tier is a determinism regression; across
    // tiers it is flagged as an informational divergence instead.
    type FirstSeen<'a> = ((&'a str, u64, &'a str), (u64, &'a str));
    let mut first: Vec<FirstSeen<'_>> = Vec::new();
    for r in records {
        let key = (r.id.as_str(), r.fingerprint, r.kernel.as_str());
        match first.iter().find(|(k, _)| *k == key) {
            Some(&(_, (digest, simd))) if digest != r.digest => {
                if simd == r.simd {
                    out.push(Regression::Digest {
                        id: r.id.clone(),
                        kernel: r.kernel.clone(),
                        prev: digest,
                        got: r.digest,
                    });
                } else {
                    out.push(Regression::TierDivergence {
                        id: r.id.clone(),
                        kernel: r.kernel.clone(),
                        prev_simd: simd.to_string(),
                        got_simd: r.simd.clone(),
                        prev: digest,
                        got: r.digest,
                    });
                }
            }
            Some(_) => {}
            None => first.push((key, (r.digest, r.simd.as_str()))),
        }
    }
    // Perf: per (id, kernel), latest vs median of priors.
    let mut pairs: Vec<(&str, &str)> =
        records.iter().map(|r| (r.id.as_str(), r.kernel.as_str())).collect();
    pairs.sort_unstable();
    pairs.dedup();
    for (id, kernel) in pairs {
        let ns: Vec<f64> = records
            .iter()
            .filter(|r| r.id == id && r.kernel == kernel && r.points > 0)
            .map(LedgerRecord::ns_per_point)
            .filter(|n| n.is_finite() && *n > 0.0)
            .collect();
        if ns.len() < MIN_PERF_HISTORY {
            continue;
        }
        let latest = ns[ns.len() - 1];
        let mut prior: Vec<f64> = ns[..ns.len() - 1].to_vec();
        prior.sort_unstable_by(f64::total_cmp);
        let baseline = prior[prior.len() / 2];
        if baseline > 0.0 && latest > threshold * baseline {
            out.push(Regression::Perf {
                id: id.to_string(),
                kernel: kernel.to_string(),
                baseline_ns: baseline,
                latest_ns: latest,
            });
        }
    }
    out
}

/// Minimum timed runs of an (id, kernel) pair before the perf gate
/// engages: one latest plus at least two priors, so a single noisy first
/// run can't trip it.
pub const MIN_PERF_HISTORY: usize = 3;

/// Default perf-regression threshold (same headroom as the perf-smoke
/// gate over `BENCH_baseline.json`).
pub const DEFAULT_THRESHOLD: f64 = 3.0;

/// Render the ledger history as a Markdown trend table, newest last.
#[must_use]
pub fn trend_table(records: &[LedgerRecord]) -> String {
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            let hit_rate = {
                let total = r.cache_hits + r.cache_misses;
                if total == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}", r.cache_hits as f64 / total as f64)
                }
            };
            vec![
                r.id.clone(),
                r.unix_ms.to_string(),
                if r.kernel.is_empty() { "-".to_string() } else { r.kernel.clone() },
                if r.simd.is_empty() { "-".to_string() } else { r.simd.clone() },
                r.threads.to_string(),
                r.points.to_string(),
                format!("{:.0}", r.ns_per_point()),
                hit_rate,
                format!("{}/{}/{}", r.ok, r.degraded, r.failed),
                format!("{}/{}/{}", r.retries, r.breaker_trips, r.restarts),
                format!("{:016x}", r.digest),
            ]
        })
        .collect();
    markdown_table(
        &[
            "id",
            "unix_ms",
            "kernel",
            "simd",
            "threads",
            "points",
            "ns/point",
            "cache-hit",
            "ok/deg/fail",
            "retry/trip/restart",
            "digest",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, fingerprint: u64, digest: u64, seconds: f64) -> LedgerRecord {
        LedgerRecord {
            id: id.into(),
            unix_ms: 1_754_000_000_000,
            fingerprint,
            kernel: "batch".into(),
            simd: "autovec".into(),
            threads: 4,
            points: 100,
            seconds,
            cache_hits: 3,
            cache_misses: 1,
            ok: 100,
            degraded: 0,
            failed: 0,
            non_finite: 0,
            retries: 2,
            breaker_trips: 0,
            restarts: 1,
            digest,
        }
    }

    #[test]
    fn round_trips_written_lines() {
        let a = rec("fig2", 0xAB, 0xCD, 0.25);
        let b = rec("fig3", 0xEF, 0x01, 0.5);
        let text = format!("{}\n{}\n", a.to_line(), b.to_line());
        let parsed = parse_ledger(&text);
        assert_eq!(parsed.skipped, 0);
        assert_eq!(parsed.records, vec![a, b]);
    }

    #[test]
    fn pre_resilience_lines_default_counters_to_zero() {
        // A v1 line written before the resilience counters existed: same
        // schema tag, no retries/breaker_trips/restarts fields. Rebuild
        // one by splicing them out of a fresh line and re-CRCing.
        let line = rec("fig2", 0xAB, 0xCD, 0.25).to_line();
        let crc_at = line.rfind(",\"crc\":\"").unwrap();
        let old_prefix = line[..crc_at]
            .replace(",\"retries\":2,\"breaker_trips\":0,\"restarts\":1", "");
        let old_line = format!("{old_prefix},\"crc\":\"{:016x}\"}}", fnv1a(old_prefix.as_bytes()));
        let parsed = parse_ledger(&old_line);
        assert_eq!(parsed.skipped, 0, "old lines must still parse");
        assert_eq!(parsed.records.len(), 1);
        let r = &parsed.records[0];
        assert_eq!((r.retries, r.breaker_trips, r.restarts), (0, 0, 0));
        assert_eq!(r.digest, 0xCD, "other fields unaffected");
    }

    #[test]
    fn pre_simd_lines_parse_as_unknown_tier() {
        // A line written before the simd stamp existed: splice the field
        // out and re-CRC, exactly as an old writer would have produced it.
        let line = rec("fig2", 0xAB, 0xCD, 0.25).to_line();
        let crc_at = line.rfind(",\"crc\":\"").unwrap();
        let old_prefix = line[..crc_at].replace(",\"simd\":\"autovec\"", "");
        assert!(!old_prefix.contains("simd"), "splice failed: {old_prefix}");
        let old_line = format!("{old_prefix},\"crc\":\"{:016x}\"}}", fnv1a(old_prefix.as_bytes()));
        let parsed = parse_ledger(&old_line);
        assert_eq!(parsed.skipped, 0, "pre-simd lines must still parse");
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.records[0].simd, "unknown");
        assert_eq!(parsed.records[0].digest, 0xCD, "other fields unaffected");
    }

    #[test]
    fn cross_tier_digest_mismatch_is_divergence_not_regression() {
        let mut a = rec("fig2", 0xAA, 0x11, 0.2);
        a.simd = "avx512".into();
        let mut b = rec("fig2", 0xAA, 0x33, 0.2);
        b.simd = "unknown".into(); // e.g. appended by an older binary
        let regs = find_regressions(&[a.clone(), b], DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 1);
        match &regs[0] {
            Regression::TierDivergence { prev_simd, got_simd, prev, got, .. } => {
                assert_eq!((prev_simd.as_str(), got_simd.as_str()), ("avx512", "unknown"));
                assert_eq!((*prev, *got), (0x11, 0x33));
                assert!(!regs[0].is_fatal(), "divergence must not gate");
            }
            other => panic!("expected tier divergence, got {other:?}"),
        }
        // Same tier, same mismatch: a genuine (fatal) digest regression.
        let mut c = rec("fig2", 0xAA, 0x33, 0.2);
        c.simd = "avx512".into();
        let regs = find_regressions(&[a, c], DEFAULT_THRESHOLD);
        assert!(matches!(&regs[0], Regression::Digest { .. }));
        assert!(regs[0].is_fatal());
    }

    #[test]
    fn torn_and_corrupt_lines_are_skipped_not_fatal() {
        let good = rec("fig2", 1, 2, 0.25).to_line();
        let torn = &good[..good.len() / 2];
        let mut flipped = good.clone();
        // Flip a digit inside the payload; the CRC no longer matches.
        flipped = flipped.replacen("\"points\":100", "\"points\":999", 1);
        let foreign = "{\"schema\":\"other-v9\",\"x\":1}";
        let text = format!("{good}\n{torn}\n{flipped}\n{foreign}\n\n{good}\n");
        let parsed = parse_ledger(&text);
        assert_eq!(parsed.records.len(), 2, "only the intact lines parse");
        assert_eq!(parsed.skipped, 3);
    }

    #[test]
    fn digest_regression_detected_same_fingerprint_only() {
        let records = vec![
            rec("fig2", 0xAA, 0x11, 0.2),
            rec("fig2", 0xAA, 0x11, 0.2), // same digest: fine
            rec("fig2", 0xBB, 0x22, 0.2), // different fingerprint: new group
            rec("fig2", 0xAA, 0x33, 0.2), // regression
        ];
        let regs = find_regressions(&records, DEFAULT_THRESHOLD);
        assert_eq!(regs.len(), 1);
        match &regs[0] {
            Regression::Digest { id, prev, got, .. } => {
                assert_eq!(id, "fig2");
                assert_eq!((*prev, *got), (0x11, 0x33));
            }
            other => panic!("expected digest regression, got {other:?}"),
        }
    }

    #[test]
    fn perf_regression_needs_history_and_threshold() {
        let mut records = vec![
            rec("fig2", 1, 9, 0.10),
            rec("fig2", 1, 9, 0.11),
            rec("fig2", 1, 9, 0.09),
        ];
        assert!(find_regressions(&records, 3.0).is_empty(), "steady history is clean");
        records.push(rec("fig2", 1, 9, 1.0)); // 10x the median
        let regs = find_regressions(&records, 3.0);
        assert!(
            regs.iter().any(|r| matches!(r, Regression::Perf { .. })),
            "blow-up flagged: {regs:?}"
        );
        // Two runs only: below MIN_PERF_HISTORY, never flagged.
        let short = vec![rec("fig9", 1, 9, 0.1), rec("fig9", 1, 9, 10.0)];
        assert!(find_regressions(&short, 3.0).is_empty());
    }

    #[test]
    fn trend_table_has_one_row_per_record() {
        let records =
            vec![rec("fig2", 1, 2, 0.25), rec("fig3", 3, 4, 0.5), rec("fig4", 5, 6, 0.75)];
        let table = trend_table(&records);
        assert_eq!(table.lines().count(), 2 + records.len(), "header + rule + rows");
        assert!(table.contains("ns/point"));
        assert!(table.contains("fig3"));
        assert!(table.contains(&format!("{:016x}", 4)));
    }
}
