//! Regenerate every quantitative claim in the paper's text (§3.3–§5.2) and
//! the simulator validation, emitting a paper-vs-measured Markdown report to
//! stdout and `results/experiments.md`.
//!
//! Pass `--fast` to use coarse tables (CI smoke test); the full run takes a
//! few minutes, dominated by the algebraic load tables.

use bevra_core::continuum::AlgebraicClosed;
use bevra_core::retrying::{AlgebraicFamily, RetryModel};
use bevra_core::{bandwidth_gap, performance_gap, DiscreteModel, SamplingModel};
use bevra_engine::{Architecture, SweepEngine};
use bevra_load::{Algebraic, Geometric, Poisson, Tabulated, PAPER_MEAN_LOAD};
use bevra_report::table::{fmt, markdown_table};
use bevra_sim::{Discipline, HoldingDist, MixedPoisson, RateMixing, SimConfig, Simulation};
use bevra_utility::{AdaptiveExp, Rigid, Utility};
use std::fmt::Write as _;
use std::sync::Arc;

struct Row {
    id: &'static str,
    what: &'static str,
    paper: &'static str,
    measured: String,
}

fn rows_to_table(rows: &[Row]) -> String {
    markdown_table(
        &["exp", "quantity", "paper", "measured"],
        &rows
            .iter()
            .map(|r| {
                vec![r.id.to_string(), r.what.to_string(), r.paper.to_string(), r.measured.clone()]
            })
            .collect::<Vec<_>>(),
    )
}

/// `γ(p)` for each requested price: one engine builds both welfare tables
/// in parallel (memoized `B`/`R` shared between them) and sweeps the
/// prices.
fn gammas_of<U: Utility>(load: &Arc<Tabulated>, u: U, prices: &[f64], grid: usize) -> Vec<f64> {
    let engine = SweepEngine::new(DiscreteModel::new(Arc::clone(load), u));
    let kbar = load.mean();
    let sv_b = engine.value_table(Architecture::BestEffort, kbar, 300.0 * kbar, grid);
    let sv_r = engine.value_table(Architecture::Reservation, kbar, 300.0 * kbar, grid);
    engine.gamma_sweep(prices, &sv_b, &sv_r)
}

fn gamma_of<U: Utility>(load: &Arc<Tabulated>, u: U, p: f64, grid: usize) -> f64 {
    gammas_of(load, u, &[p], grid)[0]
}

#[allow(clippy::too_many_lines)]
fn main() -> std::io::Result<()> {
    bevra_report::emit::announce_kernel();
    bevra_report::emit::arm_run("experiments");
    let fast = std::env::args().any(|a| a == "--fast");
    let cap = if fast { 1 << 16 } else { 1 << 20 };
    let grid = if fast { 300 } else { 800 };
    let kbar = PAPER_MEAN_LOAD;
    let mut out = String::new();
    let mut rows: Vec<Row> = Vec::new();

    // ---- T-P: Poisson claims (§3.3) -------------------------------------
    let poisson = Arc::new(Tabulated::from_model(&Poisson::new(kbar), 1e-13, cap));
    let pr = DiscreteModel::new(Arc::clone(&poisson), Rigid::unit());
    let delta_peak = (40..140)
        .map(|c| performance_gap(&pr, f64::from(c)))
        .fold(0.0f64, f64::max);
    rows.push(Row { id: "T-P", what: "Poisson rigid: peak δ(C)", paper: "≈ 0.8", measured: fmt(delta_peak) });
    let gap_peak = (1..140)
        .map(|c| bandwidth_gap(&pr, f64::from(c)).unwrap_or(0.0))
        .fold(0.0f64, f64::max);
    rows.push(Row { id: "T-P", what: "Poisson rigid: peak Δ(C)", paper: "≈ 80", measured: fmt(gap_peak) });
    rows.push(Row {
        id: "T-P",
        what: "Poisson rigid: δ(2k̄)",
        paper: "< 1e−15",
        measured: fmt(performance_gap(&pr, 2.0 * kbar)),
    });
    rows.push(Row {
        id: "T-P",
        what: "Poisson rigid: δ(4k̄)",
        paper: "< 1e−15",
        measured: fmt(performance_gap(&pr, 4.0 * kbar)),
    });

    // ---- T-E: exponential claims (§3.3) ----------------------------------
    let geo = Arc::new(Tabulated::from_model(&Geometric::from_mean(kbar), 1e-13, cap));
    let er = DiscreteModel::new(Arc::clone(&geo), Rigid::unit());
    rows.push(Row { id: "T-E", what: "exp rigid: δ(2k̄)", paper: "≈ 0.27", measured: fmt(performance_gap(&er, 200.0)) });
    rows.push(Row { id: "T-E", what: "exp rigid: δ(4k̄)", paper: "≈ 0.07", measured: fmt(performance_gap(&er, 400.0)) });
    let d2 = bandwidth_gap(&er, 200.0).unwrap_or(f64::NAN);
    let d8 = bandwidth_gap(&er, 800.0).unwrap_or(f64::NAN);
    // The §3.3 closed form: βΔ = ln(1 + β(C + Δ)), asymptotically ln(βC)/β.
    let closed = bevra_core::continuum::ExponentialRigidClosed::from_mean(kbar);
    let cd2 = closed.bandwidth_gap(200.0).unwrap_or(f64::NAN);
    let cd8 = closed.bandwidth_gap(800.0).unwrap_or(f64::NAN);
    rows.push(Row {
        id: "T-E",
        what: "exp rigid: Δ(2k̄), Δ(8k̄) discrete vs continuum closed form (log growth)",
        paper: "monotone, log-growing",
        measured: format!(
            "{} → {} (closed form {} → {})",
            fmt(d2),
            fmt(d8),
            fmt(cd2),
            fmt(cd8)
        ),
    });
    let ea = DiscreteModel::new(Arc::clone(&geo), AdaptiveExp::paper());
    rows.push(Row { id: "T-E", what: "exp adaptive: δ(2k̄)", paper: "< 0.01", measured: fmt(performance_gap(&ea, 200.0)) });
    rows.push(Row { id: "T-E", what: "exp adaptive: δ(4k̄)", paper: "< 0.001", measured: fmt(performance_gap(&ea, 400.0)) });
    let ad_peak = (2..30)
        .map(|i| bandwidth_gap(&ea, f64::from(i) * 10.0).unwrap_or(0.0))
        .fold(0.0f64, f64::max);
    let ad_far = bandwidth_gap(&ea, 10.0 * kbar).unwrap_or(f64::NAN);
    rows.push(Row {
        id: "T-E",
        what: "exp adaptive: peak Δ then decay (Δpeak, Δ(10k̄))",
        paper: "peak ≈ 9, then ↓",
        measured: format!("{}, {}", fmt(ad_peak), fmt(ad_far)),
    });

    // ---- T-A: algebraic claims (§3.3) -------------------------------------
    let alg_model = Algebraic::from_mean(3.0, kbar).expect("calibration");
    let alg = Arc::new(Tabulated::from_model(&alg_model, 1e-9, cap));
    let ar = DiscreteModel::new(Arc::clone(&alg), Rigid::unit());
    rows.push(Row { id: "T-A", what: "alg(z=3) rigid: R−B at 2k̄", paper: "≈ 0.20", measured: fmt(performance_gap(&ar, 200.0)) });
    rows.push(Row { id: "T-A", what: "alg(z=3) rigid: R−B at 4k̄", paper: "≈ 0.10", measured: fmt(performance_gap(&ar, 400.0)) });
    let slope = (bandwidth_gap(&ar, 800.0).unwrap_or(f64::NAN)
        - bandwidth_gap(&ar, 400.0).unwrap_or(f64::NAN))
        / 400.0;
    rows.push(Row { id: "T-A", what: "alg(z=3) rigid: dΔ/dC at large C", paper: "1 (linear, slope (z−1)^{1/(z−2)}−1)", measured: fmt(slope) });
    let aa = DiscreteModel::new(Arc::clone(&alg), AdaptiveExp::paper());
    let slope_a = (bandwidth_gap(&aa, 800.0).unwrap_or(f64::NAN)
        - bandwidth_gap(&aa, 400.0).unwrap_or(f64::NAN))
        / 400.0;
    rows.push(Row {
        id: "T-A",
        what: "alg(z=3) adaptive: dΔ/dC (rigid/adaptive slope ratio)",
        paper: "slope smaller by > 20×",
        measured: format!("{} (ratio {})", fmt(slope_a), fmt(slope / slope_a)),
    });
    rows.push(Row {
        id: "T-A",
        what: "continuum z→2⁺ limit of Δ/C",
        paper: "e − 1 ≈ 1.718",
        measured: fmt(AlgebraicClosed::rigid(2.000_001).bandwidth_gap(1.0)),
    });

    // ---- T-W: welfare claims (§4) -----------------------------------------
    let poisson_rigid_gammas = gammas_of(&poisson, Rigid::unit(), &[0.05, 0.3], grid);
    rows.push(Row {
        id: "T-W",
        what: "Poisson rigid: γ(p) at p = 0.05 / 0.3",
        paper: "1.1–1.2 over most of the range",
        measured: format!("{} / {}", fmt(poisson_rigid_gammas[0]), fmt(poisson_rigid_gammas[1])),
    });
    rows.push(Row {
        id: "T-W",
        what: "Poisson adaptive: γ(0.05)",
        paper: "≈ 1",
        measured: fmt(gamma_of(&poisson, AdaptiveExp::paper(), 0.05, grid)),
    });
    rows.push(Row {
        id: "T-W",
        what: "exp rigid: γ(1e−4) (→1 as p→0)",
        paper: "→ 1 slowly",
        measured: fmt(gamma_of(&geo, Rigid::unit(), 1e-4, grid)),
    });
    rows.push(Row {
        id: "T-W",
        what: "alg(z=3) rigid: γ(1e−4)",
        paper: "→ (z−1)^{1/(z−2)} = 2",
        measured: fmt(gamma_of(&alg, Rigid::unit(), 1e-4, grid)),
    });
    rows.push(Row {
        id: "T-W",
        what: "alg(z=3) adaptive: γ(1e−4)",
        paper: "≈ 1.02",
        measured: fmt(gamma_of(&alg, AdaptiveExp::paper(), 1e-4, grid)),
    });

    // ---- E-S: sampling extension (§5.1) -----------------------------------
    let sm10 = SamplingModel::new(DiscreteModel::new(Arc::clone(&geo), AdaptiveExp::paper()), 10);
    rows.push(Row {
        id: "E-S",
        what: "exp adaptive S=10: δ_S(2k̄) vs basic",
        paper: "≈ 0.21 vs < 0.01",
        measured: format!("{} vs {}", fmt(sm10.performance_gap(200.0)), fmt(performance_gap(&ea, 200.0))),
    });
    let (mut peak_c, mut peak_v) = (0.0, 0.0);
    for i in 2..40 {
        let c = f64::from(i) * 10.0;
        let v = sm10.bandwidth_gap(c).unwrap_or(0.0);
        if v > peak_v {
            peak_v = v;
            peak_c = c;
        }
    }
    rows.push(Row {
        id: "E-S",
        what: "exp adaptive S=10: Δ_S peak (value at capacity)",
        paper: "≈ 2k̄ near C ≈ 1.5k̄",
        measured: format!("{} at C = {}", fmt(peak_v), fmt(peak_c)),
    });
    rows.push(Row {
        id: "E-S",
        what: "alg rigid sampling asymptotic ratio, S=2, z=2.5",
        paper: "(S(z−1))^{1/(z−2)} = 9",
        measured: fmt(bevra_core::asymptotics::alg_sampling_gap_ratio(2.5, 1.5, 2)),
    });

    // ---- E-R: retrying extension (§5.2) -----------------------------------
    let fam = AlgebraicFamily::new(3.0, 1e-7, cap.min(1 << 18));
    let rm = RetryModel::new(fam, AdaptiveExp::paper(), kbar, 0.1);
    let basic_alg_delta = performance_gap(&aa, 400.0);
    rows.push(Row {
        id: "E-R",
        what: "alg(z=3) adaptive α=0.1: δ̃(4k̄) vs basic",
        paper: "≈ 0.027 vs ≈ 0.0025",
        measured: format!(
            "{} vs {}",
            fmt(rm.performance_gap(400.0).unwrap_or(f64::NAN)),
            fmt(basic_alg_delta)
        ),
    });
    rows.push(Row {
        id: "E-R",
        what: "alg retry asymptotic ratio (z=3, H=2, α=0.1)",
        paper: "(H/α)^{1/(z−2)} = 20",
        measured: fmt(bevra_core::asymptotics::alg_retry_gap_ratio(3.0, 2.0, 0.1)),
    });

    // ---- V-SIM: simulator validation ---------------------------------------
    let horizon = if fast { 2_000.0 } else { 20_000.0 };
    let mut sim_rows: Vec<Row> = Vec::new();
    let sim_specs = [
        ("poisson", RateMixing::Fixed, "var ≈ mean (Poisson)"),
        ("exponential", RateMixing::Exponential, "var ≈ k̄² (geometric)"),
    ];
    // Both validation runs fan out together over the worker pool; each is
    // seeded, so the batch is bit-identical to running them one at a time.
    let cfgs: Vec<SimConfig> = sim_specs
        .iter()
        .map(|&(_, mixing, _)| SimConfig {
            capacity: 25.0,
            discipline: Discipline::BestEffort,
            arrivals: MixedPoisson::new(20.0, mixing, 50.0),
            holding: HoldingDist::Exponential { mean: 1.0 },
            utility: Arc::new(AdaptiveExp::paper()),
            warmup: 100.0,
            horizon,
            seed: 7,
            max_events: None,
        })
        .collect();
    let sim_reports = Simulation::run_batch(&cfgs);
    for (&(name, _, paper_var), rep) in sim_specs.iter().zip(&sim_reports) {
        let occ = rep.occupancy();
        // Analytic B from the *empirical* occupancy (the model closes the
        // loop on the simulator's own load).
        let analytic = DiscreteModel::new(occ.clone(), AdaptiveExp::paper());
        let b_model = analytic.best_effort(25.0);
        sim_rows.push(Row {
            id: "V-SIM",
            what: match name {
                "poisson" => "sim Poisson: B_sim(at-admission) vs B_model(empirical occupancy)",
                _ => "sim exponential: B_sim vs B_model",
            },
            paper: paper_var,
            measured: format!(
                "{} vs {} (occ mean {}, var {})",
                fmt(rep.utility_at_admission.mean()),
                fmt(b_model),
                fmt(occ.mean()),
                fmt(occ.variance())
            ),
        });
    }
    rows.extend(sim_rows);

    // ---- Emit ---------------------------------------------------------------
    writeln!(out, "# Regenerated experimental claims (paper vs measured)\n").unwrap();
    writeln!(out, "Mode: {}\n", if fast { "fast (--fast)" } else { "full" }).unwrap();
    out.push_str(&rows_to_table(&rows));
    println!("{out}");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/experiments.md", out)?;
    // The only binary that drives the simulator: with `BEVRA_OBS=summary`+
    // this surfaces the sim event counters / occupancy histogram (and at
    // `trace`, the per-run span timeline).
    let obs = bevra_obs::export::export_run("experiments", std::path::Path::new("results"))?;
    if let Some(table) = &obs.summary {
        print!("{table}");
    }
    if let Some(trace) = &obs.trace_path {
        println!("obs: wrote {}", trace.display());
    }
    Ok(())
}
