//! Regenerate Figure 4 (algebraic load z = 3, six panels). Pass `--fast`
//! for the coarse preset.

fn main() -> std::io::Result<()> {
    bevra_report::emit::announce_kernel();
    bevra_report::emit::arm_run("fig4");
    let q = bevra_report::emit::cli_quality();
    let fig = bevra_report::figures::fig4(q);
    bevra_report::emit::emit_figure(&fig, &bevra_report::emit::results_dir())
}
