//! Regenerate the §5.1 sampling-extension study. Pass `--fast` for the
//! coarse preset.

fn main() -> std::io::Result<()> {
    bevra_report::emit::announce_kernel();
    bevra_report::emit::arm_run("ext-sampling");
    let q = bevra_report::emit::cli_quality();
    let fig = bevra_report::figures::ext_sampling(q);
    bevra_report::emit::emit_figure(&fig, &bevra_report::emit::results_dir())
}
