//! Regenerate Figure 1 (the adaptive utility curve).

fn main() -> std::io::Result<()> {
    bevra_report::emit::announce_kernel();
    bevra_report::emit::arm_run("fig1");
    let fig = bevra_report::figures::fig1();
    bevra_report::emit::emit_figure(&fig, &bevra_report::emit::results_dir())
}
