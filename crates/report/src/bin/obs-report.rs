//! Cross-run observability report over `results/ledger.jsonl`.
//!
//! Renders the ledger history as a Markdown trend table and scans it for
//! digest and perf regressions (see [`bevra_report::ledger`]). Exit
//! status: `0` when the ledger is clean, `1` when any regression was
//! found, `2` on usage or I/O errors — so CI can gate on it directly.
//!
//! ```text
//! obs-report [--ledger <path>] [--threshold <x>] [--last <n>]
//! ```
//!
//! * `--ledger` — ledger file (default `results/ledger.jsonl`);
//! * `--threshold` — perf-regression headroom over the historical median
//!   ns-per-point (default 3.0, matching the perf-smoke gate);
//! * `--last` — only render the newest `n` rows in the trend table
//!   (regression scanning always sees the full history).

use bevra_report::ledger::{find_regressions, parse_ledger, trend_table, DEFAULT_THRESHOLD};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs-report [--ledger <path>] [--threshold <x>] [--last <n>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut ledger_path = std::path::PathBuf::from("results").join("ledger.jsonl");
    let mut threshold = DEFAULT_THRESHOLD;
    let mut last: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ledger" => match args.next() {
                Some(p) => ledger_path = p.into(),
                None => return usage(),
            },
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t > 0.0 => threshold = t,
                _ => return usage(),
            },
            "--last" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => last = Some(n),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let text = match std::fs::read_to_string(&ledger_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-report: cannot read {}: {e}", ledger_path.display());
            return ExitCode::from(2);
        }
    };
    let parsed = parse_ledger(&text);
    if parsed.records.is_empty() {
        eprintln!(
            "obs-report: no valid records in {} ({} line(s) skipped)",
            ledger_path.display(),
            parsed.skipped,
        );
        return ExitCode::from(2);
    }

    println!(
        "== run ledger: {} ({} record(s), {} skipped) ==\n",
        ledger_path.display(),
        parsed.records.len(),
        parsed.skipped,
    );
    let shown = match last {
        Some(n) if n < parsed.records.len() => &parsed.records[parsed.records.len() - n..],
        _ => &parsed.records[..],
    };
    print!("{}", trend_table(shown));
    let (retries, trips, restarts) = parsed
        .records
        .iter()
        .fold((0u64, 0u64, 0u64), |(a, b, c), r| {
            (a + r.retries, b + r.breaker_trips, c + r.restarts)
        });
    if retries + trips + restarts > 0 {
        println!(
            "\nresilience: {retries} retry(ies), {trips} breaker trip(s), \
             {restarts} restart(s) across recorded runs"
        );
    }

    let regressions = find_regressions(&parsed.records, threshold);
    if regressions.is_empty() {
        println!("\nno regressions (threshold {threshold}x)");
        return ExitCode::SUCCESS;
    }
    println!();
    let mut fatal = false;
    for r in &regressions {
        // Digest mismatches across different SIMD tiers are informational
        // (cross-machine ledgers mix tiers legitimately); everything else
        // gates.
        if r.is_fatal() {
            fatal = true;
            println!("REGRESSION: {r}");
        } else {
            println!("NOTE: {r}");
        }
    }
    if fatal {
        ExitCode::FAILURE
    } else {
        println!("\nno gating regressions (threshold {threshold}x)");
        ExitCode::SUCCESS
    }
}
