//! Terminal line charts — the workspace's figure renderer.

use crate::series::Panel;

/// Plot symbols assigned to successive series.
const SYMBOLS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

/// Render a panel as an ASCII chart of the given size (interior plot area).
///
/// Each series is drawn with its own symbol; y-axis limits span all series,
/// x is assumed shared/increasing. Collisions show the later symbol. The
/// output ends with a legend line.
#[must_use]
pub fn render_panel(panel: &Panel, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &panel.series {
        for (&x, &y) in s.x.iter().zip(&s.y) {
            if x.is_finite() {
                x_min = x_min.min(x);
                x_max = x_max.max(x);
            }
            if y.is_finite() {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
    }
    if !x_min.is_finite() || !y_min.is_finite() {
        return format!("{}\n(no finite data)\n", panel.title);
    }
    if (x_max - x_min).abs() < f64::MIN_POSITIVE {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::MIN_POSITIVE {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in panel.series.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        for (&x, &y) in s.x.iter().zip(&s.y) {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = sym;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{}\n", panel.title));
    out.push_str(&format!("{:>10.4} ┤", y_max));
    out.extend(grid[0].iter());
    out.push('\n');
    for row in grid.iter().take(height - 1).skip(1) {
        out.push_str("           │");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10.4} ┤", y_min));
    out.extend(grid[height - 1].iter());
    out.push('\n');
    out.push_str(&format!("           └{}\n", "─".repeat(width)));
    out.push_str(&format!(
        "            {:<12.6}{:>width$.6}\n",
        x_min,
        x_max,
        width = width.saturating_sub(12)
    ));
    out.push_str(&format!("            x: {}   y: {}\n", panel.xlabel, panel.ylabel));
    let legend: Vec<String> = panel
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", SYMBOLS[i % SYMBOLS.len()], s.label))
        .collect();
    out.push_str(&format!("            {}\n", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    fn panel() -> Panel {
        Panel {
            title: "Utility".into(),
            xlabel: "C".into(),
            ylabel: "B(C)".into(),
            series: vec![
                Series::new("reservation", vec![0.0, 1.0, 2.0], vec![0.0, 0.8, 1.0]),
                Series::new("best-effort", vec![0.0, 1.0, 2.0], vec![0.0, 0.4, 0.9]),
            ],
        }
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let s = render_panel(&panel(), 40, 10);
        assert!(s.contains("Utility"));
        assert!(s.contains("reservation"));
        assert!(s.contains("best-effort"));
        assert!(s.contains("x: C"));
        assert!(s.contains('*') && s.contains('+'));
    }

    #[test]
    fn handles_empty_and_degenerate_data() {
        let empty = Panel {
            title: "e".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series::new("s", vec![], vec![])],
        };
        assert!(render_panel(&empty, 30, 8).contains("no finite data"));
        let flat = Panel {
            title: "f".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![Series::new("s", vec![1.0, 2.0], vec![5.0, 5.0])],
        };
        let out = render_panel(&flat, 30, 8);
        assert!(out.contains('*'));
    }

    #[test]
    fn grid_dimensions_respected() {
        let s = render_panel(&panel(), 50, 12);
        let plot_rows: Vec<&str> =
            s.lines().filter(|l| l.contains('│') || l.contains('┤')).collect();
        assert_eq!(plot_rows.len(), 12);
    }
}
