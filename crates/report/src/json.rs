//! Minimal JSON support for figure persistence.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! are unavailable; the figure schema is tiny and fixed, so this module
//! hand-rolls a [`JsonValue`] tree with a full parser and a pretty
//! printer. Numbers serialize via Rust's shortest-round-trip `{:?}`
//! formatting, so `f64` values survive a save/load cycle bit-for-bit;
//! non-finite values serialize as `null` (JSON has no NaN/Inf) and parse
//! back as NaN.

use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (None for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload: numbers directly, `null` as NaN (the inverse
    /// of the non-finite serialization convention).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest digits that round-trip.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(JsonValue::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by this
                        // workspace's writers; reject rather than mangle.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u{hex} escape"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing at
                // the next char boundary is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let Some(ch) = rest.chars().next() else {
                    unreachable!("Some(_) guard proves the slice non-empty")
                };
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at byte {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = JsonValue::Obj(vec![
            ("id".into(), JsonValue::Str("fig\"x\"\n".into())),
            ("n".into(), JsonValue::Num(0.1 + 0.2)),
            ("flag".into(), JsonValue::Bool(true)),
            (
                "xs".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Null, JsonValue::Num(1e-300)]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        let text = doc.pretty();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0, 123_456_789.123_456_79] {
            let text = JsonValue::Num(x).pretty();
            let JsonValue::Num(back) = JsonValue::parse(&text).unwrap() else {
                panic!("number expected");
            };
            assert_eq!(x.to_bits(), back.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).pretty(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).pretty(), "null");
        assert!(JsonValue::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = JsonValue::parse(r#""a\tbé π""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\tbé π");
    }
}
