//! JSON persistence of regenerated figures (for diffing across runs).
//!
//! Writes go through `bevra_faults::atomic_write` (render in memory,
//! write a sibling temp file, rename over): an interrupted run leaves
//! either the complete previous artifact or the complete new one on
//! disk, never a truncated hybrid — asserted by the workspace's chaos
//! suite under injected I/O faults.

use crate::series::Figure;
use std::path::Path;

/// Save a figure as pretty JSON at `dir/<figure id>.json`, atomically
/// (temp file + rename, bounded retry on transient errors).
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn save_figure(fig: &Figure, dir: &Path) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", fig.id));
    bevra_faults::atomic_write("report/figure", &path, fig.to_json().as_bytes())?;
    Ok(path)
}

/// Load a previously saved figure.
///
/// # Errors
///
/// Propagates I/O and deserialization errors.
pub fn load_figure(path: &Path) -> std::io::Result<Figure> {
    let json = std::fs::read_to_string(path)?;
    Figure::from_json(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Panel, Series};

    #[test]
    fn save_load_roundtrip() {
        let fig = Figure {
            id: "unit-test-fig".into(),
            caption: "roundtrip".into(),
            panels: vec![Panel {
                title: "p".into(),
                xlabel: "x".into(),
                ylabel: "y".into(),
                series: vec![Series::new("s", vec![1.0], vec![2.0])],
            }],
        };
        let dir = std::env::temp_dir().join("bevra-persist-test");
        let path = save_figure(&fig, &dir).unwrap();
        let back = load_figure(&path).unwrap();
        assert_eq!(fig, back);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_figure(Path::new("/nonexistent/fig.json")).is_err());
    }
}
