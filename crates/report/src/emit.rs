//! Shared output pipeline for the figure binaries: print ASCII charts,
//! persist JSON, write per-panel CSVs, and emit the engine's perf report.

use crate::ascii::render_panel;
use crate::csv::write_panel_csv;
use crate::persist::save_figure;
use crate::series::Figure;
use bevra_engine::ledger::{fnv1a, LedgerRecord, LEDGER_FILE};
use bevra_engine::{drain_caches, drain_health, drain_stages, thread_count, SweepReport};
use bevra_obs::recorder;
use std::path::Path;

/// Arm the flight recorder's black box for run `id`: a panic anywhere in
/// this process from now on drains the recorder's last events to
/// `results/<id>-blackbox.jsonl`. The figure binaries call this right
/// after [`announce_kernel`], so even a fault-injected run that dies
/// mid-sweep leaves a post-mortem artifact.
pub fn arm_run(id: &str) {
    recorder::arm_blackbox(id, &results_dir());
}

/// Config fingerprint of a figure: FNV-1a over its id plus, per series,
/// the panel/series labels and the exact x-grid bit patterns — everything
/// that determines *what* was evaluated, nothing that depends on the
/// results. Two runs of the same figure at the same quality preset get
/// equal fingerprints.
fn figure_fingerprint(fig: &Figure) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(fig.id.as_bytes());
    for p in &fig.panels {
        bytes.extend_from_slice(p.title.as_bytes());
        for s in &p.series {
            bytes.push(0);
            bytes.extend_from_slice(s.label.as_bytes());
            for &x in &s.x {
                bytes.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
    }
    fnv1a(&bytes)
}

/// Result digest of a figure: FNV-1a over every series' y-value bit
/// patterns (in panel order). Bitwise-stable results hash identically, so
/// consecutive ledger entries with equal fingerprints must repeat this
/// digest — the determinism check `obs-report` enforces.
fn figure_digest(fig: &Figure) -> u64 {
    let mut bytes = Vec::new();
    for p in &fig.panels {
        for s in &p.series {
            bytes.push(0);
            bytes.extend_from_slice(s.label.as_bytes());
            for &y in &s.y {
                bytes.extend_from_slice(&y.to_bits().to_le_bytes());
            }
        }
    }
    fnv1a(&bytes)
}

/// Build the run's ledger record from the figure and its drained perf
/// report.
fn ledger_record(fig: &Figure, report: &SweepReport) -> LedgerRecord {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let mut health = bevra_engine::SweepHealth::new();
    for (_, h) in &report.health {
        health.merge(h);
    }
    let (cache_hits, cache_misses) = report
        .caches
        .iter()
        .fold((0, 0), |(h, m), (_, st)| (h + st.hits, m + st.misses));
    LedgerRecord {
        id: fig.id.clone(),
        unix_ms,
        fingerprint: figure_fingerprint(fig),
        kernel: health.kernel.clone().unwrap_or_default(),
        simd: health.simd.clone().unwrap_or_default(),
        threads: report.threads as u64,
        points: report.total_points(),
        seconds: report.total_seconds(),
        cache_hits,
        cache_misses,
        ok: health.ok,
        degraded: health.degraded,
        failed: health.failed,
        non_finite: health.non_finite,
        retries: health.retries,
        breaker_trips: health.breaker_trips,
        restarts: health.restarts,
        digest: figure_digest(fig),
    }
}

/// Print a figure to stdout and write `results/<id>.json` plus
/// `results/<id>-panel<N>.csv`, then drain the sweep instrumentation
/// accumulated while the figure was built into `results/<id>-perf.json`
/// and `results/<id>-perf.csv` (stage timings, throughput, cache
/// hit/miss counters).
///
/// Every run also appends one record to `results/ledger.jsonl` — the
/// cross-run history `obs-report` renders and gates on — and, when the
/// flight recorder saw fault trips, drains a black box to
/// `results/<id>-blackbox.jsonl`.
///
/// With `BEVRA_OBS=summary` a metrics table is additionally printed and
/// the metrics registry is exported as `results/<id>-metrics.prom`; with
/// `BEVRA_OBS=trace` the buffered span events become
/// `results/<id>-trace.json` (Perfetto-loadable chrome-trace) and
/// `results/<id>-obs.jsonl`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn emit_figure(fig: &Figure, dir: &Path) -> std::io::Result<()> {
    println!("==== {} — {} ====\n", fig.id, fig.caption);
    for (i, p) in fig.panels.iter().enumerate() {
        println!("{}", render_panel(p, 72, 18));
        let csv_path = dir.join(format!("{}-panel{}.csv", fig.id, i + 1));
        // Render fully in memory, then write atomically: a failed or
        // interrupted run never leaves a truncated panel CSV behind.
        let mut rendered = Vec::new();
        write_panel_csv(p, &mut rendered)?;
        bevra_faults::atomic_write("report/panel-csv", &csv_path, &rendered)?;
    }
    let json = save_figure(fig, dir)?;
    let report = SweepReport::new(drain_stages(), drain_caches(), thread_count())
        .with_health(drain_health());
    if !report.stages.is_empty() || !report.caches.is_empty() || !report.health.is_empty() {
        bevra_faults::atomic_write(
            "report/perf-json",
            &dir.join(format!("{}-perf.json", fig.id)),
            report.to_json().as_bytes(),
        )?;
        bevra_faults::atomic_write(
            "report/perf-csv",
            &dir.join(format!("{}-perf.csv", fig.id)),
            report.to_csv().as_bytes(),
        )?;
        println!(
            "perf: {threads} thread(s), {pts} points in {secs:.3}s ({rate:.0} points/s)",
            threads = report.threads,
            pts = report.total_points(),
            secs = report.total_seconds(),
            rate = report.points_per_sec(),
        );
        for (label, health) in &report.health {
            if !health.is_clean() {
                println!("health: {label}: {health}");
            }
        }
    }
    // One ledger line per run, regardless of obs level: the trend history
    // `obs-report` reads. A ledger that can't be reached degrades to a
    // warning — the figure artifacts above are already on disk.
    let record = ledger_record(fig, &report);
    let ledger_path = dir.join(LEDGER_FILE);
    match record.append(&ledger_path) {
        Ok(()) => println!(
            "ledger: appended {} (fingerprint {:016x}, digest {:016x})",
            ledger_path.display(),
            record.fingerprint,
            record.digest,
        ),
        Err(e) => eprintln!("ledger: append to {} failed: {e}", ledger_path.display()),
    }
    let obs = bevra_obs::export::export_run(&fig.id, dir)?;
    if let Some(table) = &obs.summary {
        print!("{table}");
    }
    if let Some(trace) = &obs.trace_path {
        println!("obs: wrote {} (load in https://ui.perfetto.dev)", trace.display());
    }
    if let Some(prom) = &obs.prom_path {
        println!("obs: wrote {}", prom.display());
    }
    // A run that tripped injected faults but survived to the end (panic
    // isolation did its job) still ships its black box for post-mortems.
    if recorder::fault_trips() > 0 {
        if let Some(path) = recorder::write_blackbox("fault trips recorded during run") {
            println!("blackbox: wrote {}", path.display());
        }
    }
    println!("saved {} and {} CSV panel file(s) in {}", json.display(), fig.panels.len(), dir.display());
    Ok(())
}

/// Resolve and announce the kernel backend every engine in this process
/// will pick up (`BEVRA_KERNEL` via the engine registry): one line naming
/// the backend and its capability record, so a figure run's stdout
/// records which parity class produced the artifacts. The figure binaries
/// call this at the top of `main`; the per-sweep stamp also lands in the
/// emitted `-perf` artifacts through the health ledger's `kernel` column.
pub fn announce_kernel() {
    let cap = bevra_engine::registry::from_env().capability();
    println!(
        "kernel: {} ({:?} parity, simd {:?}{}{})",
        cap.name,
        cap.parity,
        cap.simd,
        if cap.portable { ", portable" } else { "" },
        if cap.grid_priming { ", grid-priming" } else { ", per-point" },
    );
}

/// Resolve the output directory (`results/` relative to the workspace root
/// or cwd) and quality from CLI args: `--fast` selects the coarse preset.
#[must_use]
pub fn cli_quality() -> crate::figures::Quality {
    if std::env::args().any(|a| a == "--fast") {
        crate::figures::Quality::Fast
    } else {
        crate::figures::Quality::Full
    }
}

/// Default results directory.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Panel, Series};

    #[test]
    fn emit_writes_all_artifacts() {
        let fig = Figure {
            id: "emit-test".into(),
            caption: "c".into(),
            panels: vec![Panel {
                title: "p".into(),
                xlabel: "x".into(),
                ylabel: "y".into(),
                series: vec![Series::new("s", vec![0.0, 1.0], vec![0.0, 1.0])],
            }],
        };
        let dir = std::env::temp_dir().join("bevra-emit-test");
        emit_figure(&fig, &dir).unwrap();
        assert!(dir.join("emit-test.json").exists());
        assert!(dir.join("emit-test-panel1.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The obs exporter's chrome-trace output must be real JSON with the
    /// shape Perfetto expects — validated here with the report crate's own
    /// parser rather than string matching.
    #[test]
    fn obs_trace_json_parses_with_report_parser() {
        let events = vec![bevra_obs::SpanEvent {
            name: "sweep/points".into(),
            tid: 7,
            depth: 0,
            parent: None,
            start_us: 1.0,
            dur_us: 42.5,
            points: 16,
        }];
        let text = bevra_obs::export::trace_json(&events);
        let doc = crate::json::JsonValue::parse(&text).expect("trace JSON must parse");
        let items = doc.get("traceEvents").and_then(crate::json::JsonValue::as_arr).unwrap();
        // One process_name and one thread_name metadata event plus one "X"
        // complete event.
        assert_eq!(items.len(), 3);
        let x = items
            .iter()
            .find(|e| e.get("ph").and_then(crate::json::JsonValue::as_str) == Some("X"))
            .expect("has a complete event");
        assert_eq!(x.get("name").and_then(crate::json::JsonValue::as_str), Some("sweep/points"));
        assert_eq!(x.get("tid").and_then(crate::json::JsonValue::as_f64), Some(7.0));
        assert_eq!(x.get("dur").and_then(crate::json::JsonValue::as_f64), Some(42.5));
    }
}
