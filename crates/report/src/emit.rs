//! Shared output pipeline for the figure binaries: print ASCII charts,
//! persist JSON, write per-panel CSVs, and emit the engine's perf report.

use crate::ascii::render_panel;
use crate::csv::write_panel_csv;
use crate::persist::save_figure;
use crate::series::Figure;
use bevra_engine::{drain_caches, drain_stages, thread_count, SweepReport};
use std::path::Path;

/// Print a figure to stdout and write `results/<id>.json` plus
/// `results/<id>-panel<N>.csv`, then drain the sweep instrumentation
/// accumulated while the figure was built into `results/<id>-perf.json`
/// and `results/<id>-perf.csv` (stage timings, throughput, cache
/// hit/miss counters).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn emit_figure(fig: &Figure, dir: &Path) -> std::io::Result<()> {
    println!("==== {} — {} ====\n", fig.id, fig.caption);
    for (i, p) in fig.panels.iter().enumerate() {
        println!("{}", render_panel(p, 72, 18));
        let csv_path = dir.join(format!("{}-panel{}.csv", fig.id, i + 1));
        std::fs::create_dir_all(dir)?;
        let file = std::fs::File::create(&csv_path)?;
        write_panel_csv(p, std::io::BufWriter::new(file))?;
    }
    let json = save_figure(fig, dir)?;
    let report = SweepReport::new(drain_stages(), drain_caches(), thread_count());
    if !report.stages.is_empty() || !report.caches.is_empty() {
        std::fs::write(dir.join(format!("{}-perf.json", fig.id)), report.to_json())?;
        std::fs::write(dir.join(format!("{}-perf.csv", fig.id)), report.to_csv())?;
        println!(
            "perf: {threads} thread(s), {pts} points in {secs:.3}s ({rate:.0} points/s)",
            threads = report.threads,
            pts = report.total_points(),
            secs = report.total_seconds(),
            rate = report.points_per_sec(),
        );
    }
    println!("saved {} and {} CSV panel file(s) in {}", json.display(), fig.panels.len(), dir.display());
    Ok(())
}

/// Resolve the output directory (`results/` relative to the workspace root
/// or cwd) and quality from CLI args: `--fast` selects the coarse preset.
#[must_use]
pub fn cli_quality() -> crate::figures::Quality {
    if std::env::args().any(|a| a == "--fast") {
        crate::figures::Quality::Fast
    } else {
        crate::figures::Quality::Full
    }
}

/// Default results directory.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Panel, Series};

    #[test]
    fn emit_writes_all_artifacts() {
        let fig = Figure {
            id: "emit-test".into(),
            caption: "c".into(),
            panels: vec![Panel {
                title: "p".into(),
                xlabel: "x".into(),
                ylabel: "y".into(),
                series: vec![Series::new("s", vec![0.0, 1.0], vec![0.0, 1.0])],
            }],
        };
        let dir = std::env::temp_dir().join("bevra-emit-test");
        emit_figure(&fig, &dir).unwrap();
        assert!(dir.join("emit-test.json").exists());
        assert!(dir.join("emit-test-panel1.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
