//! Generation of every figure in the paper's evaluation (Figures 1–4) plus
//! the §5 extension studies. Shared by the CLI binaries and the Criterion
//! benches.
//!
//! All discrete-model figures use the paper's calibration `k̄ = 100`.
//! Capacities run to `10·k̄` and prices sweep four decades, matching the
//! published axes. Absolute values need not match the paper's plots point
//! for point (the paper's own numerics are unpublished), but every
//! qualitative feature — who wins, where gaps peak, which gaps diverge — is
//! asserted against the text's claims in `EXPERIMENTS.md` and the
//! integration tests.

use crate::series::{Figure, Panel, Series};
use bevra_core::continuum::AlgebraicClosed;
use bevra_core::retrying::{AlgebraicFamily, GeometricFamily, LoadFamily, RetryModel};
use bevra_core::{equalizing_price_ratio, DiscreteModel, SampledValue, SamplingModel};
use bevra_engine::{
    parallel_map, record_caches, record_health, span, Architecture, SweepEngine, SweepHealth,
};
use bevra_load::{Algebraic, Geometric, Poisson, Tabulated, PAPER_MEAN_LOAD};
use bevra_utility::{AdaptiveExp, Rigid, Utility};
use std::sync::Arc;

/// Resolution/size preset: `Fast` for benches and CI, `Full` for the real
/// figure regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Coarse grids, capped tables — seconds.
    Fast,
    /// Publication grids.
    Full,
}

impl Quality {
    fn capacity_points(self) -> usize {
        match self {
            Quality::Fast => 12,
            Quality::Full => 48,
        }
    }

    fn price_points(self) -> usize {
        match self {
            Quality::Fast => 8,
            Quality::Full => 24,
        }
    }

    fn table_cap(self) -> usize {
        match self {
            Quality::Fast => 1 << 16,
            Quality::Full => 1 << 20,
        }
    }

    fn welfare_grid(self) -> usize {
        match self {
            Quality::Fast => 200,
            Quality::Full => 800,
        }
    }
}

/// Capacity sweep `[k̄/20, 10·k̄]`, denser below `k̄` where the action is.
fn capacity_grid(q: Quality, kbar: f64) -> Vec<f64> {
    let n = q.capacity_points();
    let lo = kbar / 20.0;
    let hi = 10.0 * kbar;
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Price sweep, log-spaced over `[1e−4, 0.9]`.
fn price_grid(q: Quality) -> Vec<f64> {
    let n = q.price_points();
    let (lo, hi) = (1e-4f64, 0.9f64);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Build the three per-utility panels (utility curves, bandwidth gap,
/// equalizing price ratio) for one load table and one utility.
///
/// All sweeps run through a [`SweepEngine`] (parallel per `BEVRA_THREADS`,
/// memoized, bitwise-identical to the serial scalar path); its cache
/// counters are published for the figure's perf report.
fn utility_panels<U: Utility>(
    load: &Arc<Tabulated>,
    utility: U,
    which: &str,
    q: Quality,
) -> Vec<Panel> {
    let kbar = load.mean();
    let engine = SweepEngine::new(DiscreteModel::new(Arc::clone(load), utility));
    let cs = capacity_grid(q, kbar);
    let tag = which.to_lowercase();
    // Checked sweep: a failed point (isolated worker panic) degrades to
    // NaN in the plotted series instead of aborting the figure, and the
    // ledger lands in the perf report via record_health.
    let checked = engine.sweep_checked(&cs);
    let field = |get: fn(&bevra_engine::SweepPoint) -> f64| -> Vec<f64> {
        checked.outcomes.iter().map(|o| o.point().map_or(f64::NAN, get)).collect()
    };
    let b = field(|p| p.best_effort);
    let r = field(|p| p.reservation);
    let gap = field(|p| p.bandwidth_gap);
    record_health(&format!("{tag}/sweep"), checked.health.clone());
    // Welfare: sample V_B and V_R once on a capacity grid, then sweep p.
    // The ceiling must exceed the optimal capacity at the cheapest price
    // swept; for the heavy-tailed loads that is ~100·k̄ at p = 1e−4.
    let c_max = 300.0 * kbar;
    let (sv_b, hb) =
        engine.value_table_checked(Architecture::BestEffort, kbar, c_max, q.welfare_grid());
    let (sv_r, hr) =
        engine.value_table_checked(Architecture::Reservation, kbar, c_max, q.welfare_grid());
    record_health(&format!("{tag}/value-table-B"), hb);
    record_health(&format!("{tag}/value-table-R"), hr);
    let ps = price_grid(q);
    let (gamma, hg) = engine.gamma_sweep_checked(&ps, &sv_b, &sv_r);
    record_health(&format!("{tag}/gamma"), hg);
    record_caches(&tag, engine.cache_stats());
    vec![
        Panel {
            title: format!("Utility - {which} Applications"),
            xlabel: "capacity C".into(),
            ylabel: "normalized utility".into(),
            series: vec![
                Series::new("reservation R(C)", cs.clone(), r),
                Series::new("best-effort B(C)", cs.clone(), b),
            ],
        },
        Panel {
            title: format!("Bandwidth Gap - {which} Applications"),
            xlabel: "capacity C".into(),
            ylabel: "Δ(C)".into(),
            series: vec![Series::new("bandwidth gap", cs, gap)],
        },
        Panel {
            title: format!("Equalizing Price Ratio - {which} Applications"),
            xlabel: "bandwidth price p".into(),
            ylabel: "γ(p)".into(),
            series: vec![Series::new("gamma", ps, gamma)],
        },
    ]
}

/// Assemble a full six-panel figure (rigid a–c, adaptive d–f) for a load.
fn six_panel_figure(id: &str, caption: &str, load: Tabulated, q: Quality) -> Figure {
    let load = Arc::new(load);
    let mut panels = utility_panels(&load, Rigid::unit(), "Rigid", q);
    panels.extend(utility_panels(&load, AdaptiveExp::paper(), "Adaptive", q));
    Figure { id: id.into(), caption: caption.into(), panels }
}

/// **Figure 1** — the adaptive utility curve `π(b) = 1 − e^{−b²/(κ+b)}`.
#[must_use]
pub fn fig1() -> Figure {
    let u = AdaptiveExp::paper();
    let x: Vec<f64> = (0..=400).map(|i| f64::from(i) * 0.025).collect();
    let y: Vec<f64> = x.iter().map(|&b| u.value(b)).collect();
    Figure {
        id: "fig1".into(),
        caption: "Adaptive utility function (paper Eq. 2, κ = 0.62086)".into(),
        panels: vec![Panel {
            title: "Adaptive Utility Function".into(),
            xlabel: "bandwidth b".into(),
            ylabel: "π(b)".into(),
            series: vec![Series::new("π(b)", x, y)],
        }],
    }
}

/// **Figure 2** — Poisson load (`ν = k̄ = 100`), all six panels.
#[must_use]
pub fn fig2(q: Quality) -> Figure {
    let load = Tabulated::from_model(&Poisson::new(PAPER_MEAN_LOAD), 1e-12, q.table_cap());
    six_panel_figure(
        "fig2",
        "Poisson distribution: utility, bandwidth gap, and price ratio to equalize welfare",
        load,
        q,
    )
}

/// **Figure 3** — exponential load (`β = ln(1.01)`, mean 100), six panels.
#[must_use]
pub fn fig3(q: Quality) -> Figure {
    let load = Tabulated::from_model(&Geometric::from_mean(PAPER_MEAN_LOAD), 1e-12, q.table_cap());
    six_panel_figure(
        "fig3",
        "Exponential distribution: utility, bandwidth gap, and price ratio to equalize welfare",
        load,
        q,
    )
}

/// **Figure 4** — algebraic load (`z = 3`, mean 100), six panels.
///
/// # Panics
///
/// Panics if the algebraic calibration fails (cannot happen for z = 3,
/// mean 100).
#[must_use]
pub fn fig4(q: Quality) -> Figure {
    let model = Algebraic::from_mean(3.0, PAPER_MEAN_LOAD)
        .unwrap_or_else(|e| panic!("fig4 calibration (z = 3, mean 100): {e:?}"));
    let load = Tabulated::from_model(&model, 1e-9, q.table_cap());
    six_panel_figure(
        "fig4",
        "Algebraic distribution (z = 3): utility, bandwidth gap, and price ratio to equalize welfare",
        load,
        q,
    )
}

/// **§5.1 sampling extension**: performance and bandwidth gaps versus
/// capacity for `S ∈ {1, 2, 5, 10}` samples, exponential load + adaptive
/// applications (the case the paper quantifies), plus the asymptotic
/// algebraic ratio `(S(z−1))^{1/(z−2)}` versus `z`.
#[must_use]
pub fn ext_sampling(q: Quality) -> Figure {
    let kbar = PAPER_MEAN_LOAD;
    let load =
        Arc::new(Tabulated::from_model(&Geometric::from_mean(kbar), 1e-12, q.table_cap()));
    let cs = capacity_grid(q, kbar);
    let s_values = [1u32, 2, 5, 10];
    let mut perf_series = Vec::new();
    let mut gap_series = Vec::new();
    for &s in &s_values {
        let sm = SamplingModel::new(
            DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()),
            s,
        );
        let mut sp = span(format!("sampling/gaps-S{s}"));
        sp.add_points(cs.len() as u64);
        let gaps = parallel_map(&cs, |&c| {
            let d = sm.performance_gap(c);
            match sm.bandwidth_gap(c) {
                Ok(g) => (d, g, None),
                Err(e) => (d, f64::NAN, Some(format!("sampling gap at C = {c}: {e}"))),
            }
        });
        drop(sp);
        let mut health = SweepHealth::new();
        let mut d = Vec::with_capacity(gaps.len());
        let mut g = Vec::with_capacity(gaps.len());
        for (dv, gv, cause) in gaps {
            let bad = u64::from(health.tally_non_finite(dv)) + u64::from(health.tally_non_finite(gv));
            match cause {
                Some(c) => health.note_degraded(&c),
                None if bad > 0 => health.note_degraded("non-finite sampling gap"),
                None => health.note_ok(),
            }
            d.push(dv);
            g.push(gv);
        }
        record_health(&format!("ext-sampling/S{s}"), health);
        perf_series.push(Series::new(format!("S = {s}"), cs.clone(), d));
        gap_series.push(Series::new(format!("S = {s}"), cs.clone(), g));
    }
    let zs: Vec<f64> = (0..40).map(|i| 2.05 + f64::from(i) * 0.05).collect();
    let ratio_series: Vec<Series> = s_values
        .iter()
        .map(|&s| {
            let y: Vec<f64> = zs
                .iter()
                .map(|&z| bevra_core::asymptotics::alg_sampling_gap_ratio(z, z - 1.0, s))
                .collect();
            Series::new(format!("S = {s}"), zs.clone(), y)
        })
        .collect();
    Figure {
        id: "ext-sampling".into(),
        caption: "Sampling extension (§5.1): gaps grow with the number of load samples S".into(),
        panels: vec![
            Panel {
                title: "Performance Gap under Sampling - Exponential/Adaptive".into(),
                xlabel: "capacity C".into(),
                ylabel: "δ_S(C)".into(),
                series: perf_series,
            },
            Panel {
                title: "Bandwidth Gap under Sampling - Exponential/Adaptive".into(),
                xlabel: "capacity C".into(),
                ylabel: "Δ_S(C)".into(),
                series: gap_series,
            },
            Panel {
                title: "Asymptotic Ratio (S(z-1))^(1/(z-2)) - Algebraic/Rigid".into(),
                xlabel: "tail exponent z".into(),
                ylabel: "lim (C+Δ)/C".into(),
                series: ratio_series,
            },
        ],
    }
}

/// Continuum algebraic welfare with retrying: `γ(p)` computed from the
/// closed forms plus the §5.2 load-inflation fixed point (lower-bound Pareto
/// scale `m = 1 + D`, blocking `θ = (C/m)^{2−z}/(z−1)`).
fn retry_gamma_continuum(z: f64, alpha: f64, prices: &[f64]) -> Vec<f64> {
    let closed = AlgebraicClosed::rigid(z);
    let kbar = closed.mean_load();
    // Reservation total utility with retries at capacity C.
    let v_r = |c: f64| -> f64 {
        if c <= 1.0 {
            return 0.0;
        }
        let theta_at = |m: f64| ((c / m).powf(2.0 - z) / (z - 1.0)).min(0.99);
        let mut m = 1.0f64;
        for _ in 0..200 {
            let theta = theta_at(m);
            let next = 1.0 + theta / (1.0 - theta);
            if (next - m).abs() < 1e-12 * m {
                m = next;
                break;
            }
            m = 0.5 * m + 0.5 * next;
        }
        let theta = theta_at(m);
        let d = theta / (1.0 - theta);
        let r = (m * closed.reservation(c / m) - alpha * d).max(0.0);
        kbar * r
    };
    let sv_r = SampledValue::build(v_r, kbar, 1e6, 2000);
    let mut sp = span(format!("retrying/gamma-continuum-a{alpha}"));
    sp.add_points(prices.len() as u64);
    let raw = parallel_map(prices, |&p| {
        let wb = closed.welfare_best_effort(p);
        match equalizing_price_ratio(|ph| sv_r.welfare(ph).welfare, wb, p) {
            Ok(g) => (g, None),
            Err(e) => (f64::NAN, Some(format!("retry gamma at p = {p}: {e}"))),
        }
    });
    drop(sp);
    let mut health = SweepHealth::new();
    let mut out = Vec::with_capacity(raw.len());
    for (g, cause) in raw {
        let bad = health.tally_non_finite(g);
        match cause {
            Some(c) => health.note_degraded(&c),
            None if bad => health.note_degraded("non-finite retry gamma"),
            None => health.note_ok(),
        }
        out.push(g);
    }
    record_health(&format!("ext-retrying/gamma-a{alpha}"), health);
    out
}

/// Evaluate a fallible per-capacity gap over `cs` in parallel, degrading
/// failures to NaN with a recorded [`SweepHealth`] ledger under `label` —
/// the structured replacement for the old silent `unwrap_or(NAN)`.
fn gap_sweep_with_health(
    label: &str,
    cs: &[f64],
    eval: impl Fn(f64) -> bevra_num::NumResult<f64> + Sync,
) -> Vec<f64> {
    let raw = parallel_map(cs, |&c| match eval(c) {
        Ok(v) => (v, None),
        Err(e) => (f64::NAN, Some(format!("{label} at C = {c}: {e}"))),
    });
    let mut health = SweepHealth::new();
    let mut out = Vec::with_capacity(raw.len());
    for (v, cause) in raw {
        let bad = health.tally_non_finite(v);
        match cause {
            Some(c) => health.note_degraded(&c),
            None if bad => health.note_degraded("non-finite gap"),
            None => health.note_ok(),
        }
        out.push(v);
    }
    record_health(label, health);
    out
}

/// **§5.2 retrying extension**: discrete performance gaps with and without
/// the retry penalty (exponential and algebraic loads, adaptive
/// applications) and the continuum `γ(p)` with retries.
///
/// # Panics
///
/// Panics if the retry fixed point diverges (not reachable on these grids).
#[must_use]
pub fn ext_retrying(q: Quality) -> Figure {
    let kbar = PAPER_MEAN_LOAD;
    let cs = capacity_grid(q, kbar);
    let alphas = [0.0, 0.1, 0.5];
    let mut exp_series = Vec::new();
    let mut alg_series = Vec::new();
    for &alpha in &alphas {
        let rm = RetryModel::new(
            GeometricFamily::new(1e-10, q.table_cap()),
            AdaptiveExp::paper(),
            kbar,
            alpha,
        );
        let mut sp = span(format!("retrying/exp-a{alpha}"));
        sp.add_points(cs.len() as u64);
        let d = gap_sweep_with_health(&format!("ext-retrying/exp-a{alpha}"), &cs, |c| {
            rm.performance_gap(c)
        });
        drop(sp);
        exp_series.push(Series::new(format!("α = {alpha}"), cs.clone(), d));

        let fam = AlgebraicFamily::new(3.0, 1e-7, q.table_cap().min(1 << 18));
        // Algebraic calibration cannot go below the λ = 0 minimum mean, and
        // the retry inflation keeps means ≥ k̄, so construction succeeds.
        let _ = fam.make(kbar);
        let rma = RetryModel::new(fam, AdaptiveExp::paper(), kbar, alpha);
        let mut sp = span(format!("retrying/alg-a{alpha}"));
        sp.add_points(cs.len() as u64);
        let da = gap_sweep_with_health(&format!("ext-retrying/alg-a{alpha}"), &cs, |c| {
            rma.performance_gap(c)
        });
        drop(sp);
        alg_series.push(Series::new(format!("α = {alpha}"), cs.clone(), da));
    }
    let ps = price_grid(q);
    let gamma_series: Vec<Series> = [0.05, 0.1, 0.5]
        .iter()
        .map(|&alpha| {
            Series::new(
                format!("α = {alpha}"),
                ps.clone(),
                retry_gamma_continuum(3.0, alpha, &ps),
            )
        })
        .collect();
    Figure {
        id: "ext-retrying".into(),
        caption: "Retrying extension (§5.2): gaps and price ratios with blocked-request retries"
            .into(),
        panels: vec![
            Panel {
                title: "Performance Gap with Retries - Exponential/Adaptive".into(),
                xlabel: "capacity C".into(),
                ylabel: "δ̃(C)".into(),
                series: exp_series,
            },
            Panel {
                title: "Performance Gap with Retries - Algebraic(z=3)/Adaptive".into(),
                xlabel: "capacity C".into(),
                ylabel: "δ̃(C)".into(),
                series: alg_series,
            },
            Panel {
                title: "Equalizing Price Ratio with Retries - Algebraic(z=3), continuum".into(),
                xlabel: "bandwidth price p".into(),
                ylabel: "γ(p)".into(),
                series: gamma_series,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_curve_shape() {
        let f = fig1();
        let s = &f.panels[0].series[0];
        assert_eq!(s.x.len(), 401);
        assert_eq!(s.y[0], 0.0);
        assert!(*s.y.last().unwrap() > 0.999);
        assert!(s.y.windows(2).all(|w| w[1] >= w[0]), "monotone");
    }

    #[test]
    fn grids_are_increasing_and_sized() {
        let cs = capacity_grid(Quality::Fast, 100.0);
        assert_eq!(cs.len(), Quality::Fast.capacity_points());
        assert!(cs.windows(2).all(|w| w[1] > w[0]));
        assert!(cs[0] >= 4.9 && *cs.last().unwrap() <= 1001.0);
        let ps = price_grid(Quality::Fast);
        assert!(ps.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn fig2_fast_panels_have_expected_structure() {
        let f = fig2(Quality::Fast);
        assert_eq!(f.panels.len(), 6);
        // Panel a: R dominates B everywhere.
        let r = &f.panels[0].series[0].y;
        let b = &f.panels[0].series[1].y;
        for (rv, bv) in r.iter().zip(b) {
            assert!(rv + 1e-9 >= *bv);
        }
    }
}
