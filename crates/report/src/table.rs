//! Markdown table rendering for EXPERIMENTS.md-style comparisons.

/// Render a Markdown table from a header and rows. Cells are plain strings;
/// numbers should be formatted by the caller (so precision stays an
/// experiment-level decision).
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
#[must_use]
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Format a float compactly for tables: scientific below 1e−3, fixed
/// otherwise.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 1e-3 || v.abs() >= 1e6 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let t = markdown_table(
            &["quantity", "paper", "measured"],
            &[vec!["δ(2k̄)".into(), "0.27".into(), fmt(0.2712)]],
        );
        assert!(t.starts_with("| quantity | paper | measured |"));
        assert!(t.contains("|---|---|---|"));
        assert!(t.contains("0.2712"));
    }

    #[test]
    fn fmt_switches_notation() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1e-9).contains('e'));
        assert_eq!(fmt(0.25), "0.2500");
        assert!(fmt(2.5e7).contains('e'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let _ = markdown_table(&["a", "b"], &[vec!["only".into()]]);
    }
}
