//! CSV export of figure panels.

use crate::series::Panel;
use std::io::Write;

/// Write a panel as CSV: first column the x of the first series, one column
/// per series. Assumes series share their x grid (true for every generated
/// figure); panels with differing grids are written long-form instead.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_panel_csv(panel: &Panel, mut w: impl Write) -> std::io::Result<()> {
    let shared_grid = panel
        .series
        .windows(2)
        .all(|p| p[0].x == p[1].x);
    if shared_grid && !panel.series.is_empty() {
        write!(w, "{}", sanitize(&panel.xlabel))?;
        for s in &panel.series {
            write!(w, ",{}", sanitize(&s.label))?;
        }
        writeln!(w)?;
        for (i, &x) in panel.series[0].x.iter().enumerate() {
            write!(w, "{x}")?;
            for s in &panel.series {
                write!(w, ",{}", s.y[i])?;
            }
            writeln!(w)?;
        }
    } else {
        writeln!(w, "series,{},{}", sanitize(&panel.xlabel), sanitize(&panel.ylabel))?;
        for s in &panel.series {
            for (&x, &y) in s.x.iter().zip(&s.y) {
                writeln!(w, "{},{x},{y}", sanitize(&s.label))?;
            }
        }
    }
    Ok(())
}

fn sanitize(s: &str) -> String {
    s.replace(',', ";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Series;

    #[test]
    fn shared_grid_wide_format() {
        let p = Panel {
            title: "t".into(),
            xlabel: "C".into(),
            ylabel: "u".into(),
            series: vec![
                Series::new("a", vec![1.0, 2.0], vec![0.1, 0.2]),
                Series::new("b", vec![1.0, 2.0], vec![0.3, 0.4]),
            ],
        };
        let mut buf = Vec::new();
        write_panel_csv(&p, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().next().unwrap(), "C,a,b");
        assert!(s.contains("1,0.1,0.3"));
    }

    #[test]
    fn mismatched_grids_long_format() {
        let p = Panel {
            title: "t".into(),
            xlabel: "C".into(),
            ylabel: "u".into(),
            series: vec![
                Series::new("a", vec![1.0], vec![0.1]),
                Series::new("b", vec![2.0, 3.0], vec![0.3, 0.4]),
            ],
        };
        let mut buf = Vec::new();
        write_panel_csv(&p, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("series,C,u"));
        assert!(s.contains("b,3,0.4"));
    }

    #[test]
    fn commas_sanitized() {
        let p = Panel {
            title: "t".into(),
            xlabel: "C, stuff".into(),
            ylabel: "u".into(),
            series: vec![Series::new("a,b", vec![1.0], vec![2.0])],
        };
        let mut buf = Vec::new();
        write_panel_csv(&p, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("C; stuff,a;b"));
    }
}
