//! Data model for regenerated figures.

use crate::json::JsonValue;

/// One named curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Abscissae.
    pub x: Vec<f64>,
    /// Ordinates (same length as `x`).
    pub y: Vec<f64>,
}

impl Series {
    /// New series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    #[must_use]
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series coordinates must pair up");
        Self { label: label.into(), x, y }
    }
}

/// One panel of a figure (one plot).
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel title, e.g. `"Bandwidth Gap - Rigid Applications"`.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// Curves.
    pub series: Vec<Series>,
}

/// A regenerated figure: several panels plus identification.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Identifier matching DESIGN.md's experiment index (e.g. `"fig3"`).
    pub id: String,
    /// Human caption.
    pub caption: String,
    /// Panels in paper order.
    pub panels: Vec<Panel>,
}

fn floats_to_json(xs: &[f64]) -> JsonValue {
    JsonValue::Arr(xs.iter().map(|&x| JsonValue::Num(x)).collect())
}

fn floats_from_json(v: &JsonValue, what: &str) -> Result<Vec<f64>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("{what}: expected numbers")))
        .collect()
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

impl Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("x".into(), floats_to_json(&self.x)),
            ("y".into(), floats_to_json(&self.y)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let x = floats_from_json(v.get("x").ok_or("missing `x`")?, "series.x")?;
        let y = floats_from_json(v.get("y").ok_or("missing `y`")?, "series.y")?;
        if x.len() != y.len() {
            return Err("series coordinates must pair up".into());
        }
        Ok(Self { label: str_field(v, "label")?, x, y })
    }
}

impl Panel {
    fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("title".into(), JsonValue::Str(self.title.clone())),
            ("xlabel".into(), JsonValue::Str(self.xlabel.clone())),
            ("ylabel".into(), JsonValue::Str(self.ylabel.clone())),
            (
                "series".into(),
                JsonValue::Arr(self.series.iter().map(Series::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let series = v
            .get("series")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `series` array")?
            .iter()
            .map(Series::from_json)
            .collect::<Result<_, _>>()?;
        Ok(Self {
            title: str_field(v, "title")?,
            xlabel: str_field(v, "xlabel")?,
            ylabel: str_field(v, "ylabel")?,
            series,
        })
    }
}

impl Figure {
    /// Serialize to the persisted JSON document (pretty-printed).
    ///
    /// Non-finite values (e.g. NaN gap points the solver could not
    /// bracket) serialize as `null` and come back as NaN.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonValue::Obj(vec![
            ("id".into(), JsonValue::Str(self.id.clone())),
            ("caption".into(), JsonValue::Str(self.caption.clone())),
            (
                "panels".into(),
                JsonValue::Arr(self.panels.iter().map(Panel::to_json).collect()),
            ),
        ])
        .pretty()
    }

    /// Parse a document produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema violation.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let panels = v
            .get("panels")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `panels` array")?
            .iter()
            .map(Panel::from_json)
            .collect::<Result<_, _>>()?;
        Ok(Self { id: str_field(&v, "id")?, caption: str_field(&v, "caption")?, panels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrips_through_json() {
        let fig = Figure {
            id: "figX".into(),
            caption: "test \"quoted\" κ".into(),
            panels: vec![Panel {
                title: "t".into(),
                xlabel: "C".into(),
                ylabel: "B".into(),
                series: vec![Series::new(
                    "best-effort",
                    vec![1.0, 2.0, 0.1 + 0.2],
                    vec![0.1, 0.2, 1.0 / 3.0],
                )],
            }],
        };
        let json = fig.to_json();
        let back = Figure::from_json(&json).unwrap();
        assert_eq!(fig, back);
        // Bitwise float fidelity, not just approximate equality.
        assert_eq!(fig.panels[0].series[0].x[2].to_bits(), back.panels[0].series[0].x[2].to_bits());
    }

    #[test]
    fn nan_points_roundtrip_as_nan() {
        let fig = Figure {
            id: "nan".into(),
            caption: String::new(),
            panels: vec![Panel {
                title: "t".into(),
                xlabel: "x".into(),
                ylabel: "y".into(),
                series: vec![Series::new("gap", vec![1.0], vec![f64::NAN])],
            }],
        };
        let back = Figure::from_json(&fig.to_json()).unwrap();
        assert!(back.panels[0].series[0].y[0].is_nan());
    }

    #[test]
    fn schema_violations_are_reported() {
        assert!(Figure::from_json("{\"id\": \"x\"}").is_err());
        assert!(Figure::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn mismatched_lengths_rejected() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }
}
