//! Data model for regenerated figures.

use serde::{Deserialize, Serialize};

/// One named curve.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Abscissae.
    pub x: Vec<f64>,
    /// Ordinates (same length as `x`).
    pub y: Vec<f64>,
}

impl Series {
    /// New series.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ.
    #[must_use]
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series coordinates must pair up");
        Self { label: label.into(), x, y }
    }
}

/// One panel of a figure (one plot).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Panel {
    /// Panel title, e.g. `"Bandwidth Gap - Rigid Applications"`.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// Curves.
    pub series: Vec<Series>,
}

/// A regenerated figure: several panels plus identification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Figure {
    /// Identifier matching DESIGN.md's experiment index (e.g. `"fig3"`).
    pub id: String,
    /// Human caption.
    pub caption: String,
    /// Panels in paper order.
    pub panels: Vec<Panel>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_roundtrips_through_json() {
        let fig = Figure {
            id: "figX".into(),
            caption: "test".into(),
            panels: vec![Panel {
                title: "t".into(),
                xlabel: "C".into(),
                ylabel: "B".into(),
                series: vec![Series::new("best-effort", vec![1.0, 2.0], vec![0.1, 0.2])],
            }],
        };
        let json = serde_json::to_string(&fig).unwrap();
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(fig, back);
    }

    #[test]
    #[should_panic(expected = "must pair up")]
    fn mismatched_lengths_rejected() {
        let _ = Series::new("bad", vec![1.0], vec![]);
    }
}
