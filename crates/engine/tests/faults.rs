//! Fault-injected degradation tests for the sweep engine.
//!
//! Every test here installs a `bevra_faults` plan; the install guard's
//! internal lock serializes them, so the process-global injection state
//! never leaks between concurrently scheduled tests. Keep plan-free tests
//! out of this binary — they would race against an active plan.

use bevra_core::DiscreteModel;
use bevra_engine::{ExecMode, PointOutcome, SweepEngine};
use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
use bevra_load::{Poisson, Tabulated};
use bevra_utility::AdaptiveExp;

fn engine(threads: usize) -> SweepEngine<AdaptiveExp> {
    let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 16);
    let mode = if threads <= 1 { ExecMode::Serial } else { ExecMode::Parallel { threads } };
    SweepEngine::with_mode(DiscreteModel::new(load, AdaptiveExp::paper()), mode)
}

fn grid() -> Vec<f64> {
    (1..=24).map(|i| f64::from(i) * 9.0).collect()
}

/// The headline acceptance test: a sweep with an injected panic in one
/// point completes with results for every other point and exactly one
/// structured failure — the process does not abort.
#[test]
fn injected_panic_degrades_exactly_one_point() {
    let cs = grid();
    // Clean reference sweep, outside any plan... but taken under the
    // install guard below would race; take it after installing a plan
    // whose only rule targets the panic site, which never corrupts values.
    let plan = FaultPlan::seeded(11).rule(FaultRule::at_key(FaultKind::Panic, "engine/point", 3));
    let guard = install(plan);
    for threads in [1, 8] {
        let checked = engine(threads).sweep_checked(&cs);
        assert_eq!(checked.outcomes.len(), cs.len());
        let failed: Vec<_> = checked
            .outcomes
            .iter()
            .filter_map(|o| match o {
                PointOutcome::Failed { index, cause, .. } => Some((*index, cause.clone())),
                PointOutcome::Ok(_) => None,
            })
            .collect();
        assert_eq!(failed.len(), 1, "exactly one failed point (threads={threads})");
        assert_eq!(failed[0].0, 3);
        assert!(failed[0].1.contains("injected panic"), "cause: {}", failed[0].1);
        assert_eq!(checked.health.failed, 1);
        assert_eq!(checked.health.ok, cs.len() as u64 - 1);
        assert_eq!(checked.health.degraded, 0);
        assert_eq!(
            checked.health.first_failure.as_deref().map(|c| c.contains("injected panic")),
            Some(true)
        );
    }
    drop(guard);
    // With the plan gone the same engine evaluates the full grid cleanly,
    // including the previously failed index: no lingering poisoned state.
    let clean = engine(8).sweep_checked(&cs);
    assert!(clean.health.is_clean(), "health: {}", clean.health);
    assert_eq!(clean.points().len(), cs.len());
}

/// Injected NaN is tainted and counted — never silently merged. Untouched
/// points stay bitwise-identical to an uninjected sweep.
#[test]
fn injected_nan_is_counted_not_merged() {
    let cs = grid();
    let poisoned_c = cs[5];
    let plan = FaultPlan::seeded(2).rule(FaultRule::at_key(
        FaultKind::Nan,
        "eval/best_effort",
        poisoned_c.to_bits(),
    ));
    let clean = {
        // Reference values with injection active but keyed off every other
        // capacity: only point 5 differs from a fully clean sweep.
        let _guard = install(FaultPlan::seeded(2));
        engine(4).sweep_checked(&cs)
    };
    let _guard = install(plan);
    let checked = engine(4).sweep_checked(&cs);
    assert_eq!(checked.health.failed, 0);
    assert_eq!(checked.health.degraded, 1, "health: {}", checked.health);
    assert!(checked.health.non_finite >= 1, "health: {}", checked.health);
    for (i, (got, want)) in checked.outcomes.iter().zip(&clean.outcomes).enumerate() {
        let (got, want) = (got.point().expect("no failures"), want.point().expect("clean"));
        if i == 5 {
            assert!(got.best_effort.is_nan(), "corrupted field surfaces as NaN");
        } else {
            assert_eq!(got.best_effort.to_bits(), want.best_effort.to_bits(), "point {i}");
            assert_eq!(got.bandwidth_gap.to_bits(), want.bandwidth_gap.to_bits(), "point {i}");
        }
    }
}

/// A forced `NumError` from the root-finder degrades the bandwidth gap to
/// NaN with the solver's error recorded as the cause.
#[test]
fn forced_numerr_degrades_gap_solves() {
    let cs = grid();
    let plan =
        FaultPlan::seeded(3).rule(FaultRule::always(FaultKind::NumErr, "num/roots/brent"));
    let _guard = install(plan);
    let checked = engine(4).sweep_checked(&cs);
    assert_eq!(checked.health.failed, 0);
    assert!(checked.health.degraded >= 1, "health: {}", checked.health);
    let cause = checked.health.first_failure.clone().expect("a recorded cause");
    assert!(cause.contains("bandwidth gap"), "cause: {cause}");
    for o in &checked.outcomes {
        let p = o.point().expect("numerr never fails a whole point");
        assert!(p.best_effort.is_finite() && p.reservation.is_finite());
    }
}

/// Same fault-plan seed ⇒ identical outcomes and SweepHealth, regardless
/// of worker-thread count.
#[test]
fn fault_injection_is_deterministic_across_threads() {
    let cs = grid();
    let plan = || {
        FaultPlan::seeded(99)
            .rule(FaultRule::with_prob(FaultKind::Panic, "engine/point", 0.2))
            .rule(FaultRule::with_prob(FaultKind::Nan, "eval/best_effort", 0.1))
    };
    let reference = {
        let _guard = install(plan());
        engine(1).sweep_checked(&cs)
    };
    assert!(
        reference.health.failed > 0,
        "seed 99 must trip at least one panic for this test to bite: {}",
        reference.health
    );
    for threads in [2, 8] {
        let _guard = install(plan());
        let got = engine(threads).sweep_checked(&cs);
        assert_eq!(got.health, reference.health, "threads={threads}");
        assert_eq!(got.outcomes.len(), reference.outcomes.len());
        for (a, b) in got.outcomes.iter().zip(&reference.outcomes) {
            match (a, b) {
                (PointOutcome::Ok(x), PointOutcome::Ok(y)) => {
                    assert_eq!(x.capacity.to_bits(), y.capacity.to_bits());
                    // NaN != NaN, so compare bits field by field.
                    assert_eq!(x.best_effort.to_bits(), y.best_effort.to_bits());
                    assert_eq!(x.reservation.to_bits(), y.reservation.to_bits());
                }
                (
                    PointOutcome::Failed { index: i, .. },
                    PointOutcome::Failed { index: j, .. },
                ) => assert_eq!(i, j),
                (a, b) => panic!("outcome shape diverged across threads: {a:?} vs {b:?}"),
            }
        }
    }
}

/// A panic injected while sibling workers hold cache/merge locks must not
/// cascade: the engine keeps evaluating through recovered locks, and the
/// caches stay usable for a follow-up sweep under the same plan.
#[test]
fn panicked_sweep_leaves_caches_usable() {
    let cs = grid();
    let plan = FaultPlan::seeded(7).rule(FaultRule::at_key(FaultKind::Panic, "engine/point", 0));
    let _guard = install(plan);
    let eng = engine(8);
    let first = eng.sweep_checked(&cs);
    assert_eq!(first.health.failed, 1, "health: {}", first.health);
    // Re-sweep the same engine: the panic re-trips deterministically, every
    // other point is served (now from warm caches), and the counters move.
    let second = eng.sweep_checked(&cs);
    assert_eq!(second.health, first.health);
    let hits: u64 = eng.cache_stats().iter().map(|(_, s)| s.hits).sum();
    assert!(hits > 0, "second sweep hits the memo tables");
}
