//! The [`SweepEngine`]: memoized, data-parallel evaluation of the paper's
//! capacity and price sweeps.

use crate::cache::{f64_key, CacheStats, ShardedCache};
use crate::checkpoint::{CheckpointStore, BATCH_POINTS};
use crate::instrument::{span, SweepHealth};
use crate::persist::{grid_key, GridRow, PersistentCache};
use crate::pool::{
    compute_retry_policy, parallel_map_supervised, parallel_map_with, thread_count, ItemError,
};
use bevra_core::welfare::SampledValue;
use bevra_core::{equalizing_price_ratio, DiscreteModel, Kernel};
use bevra_num::{brent, expand_bracket_up, NumError, NumResult};
use bevra_obs::{enabled, metrics, ObsLevel};
use bevra_resilience::Deadline;
use bevra_utility::Utility;
use std::time::Instant;

/// Time one grid-point evaluation into `hist` when per-point timing is on
/// (`BEVRA_OBS=summary|trace`); otherwise just evaluate. Timing is
/// observation only — the evaluated value is returned untouched, so
/// parallel/serial output stays bitwise-identical with instrumentation
/// enabled.
#[inline]
fn timed_point<T>(
    timing: bool,
    hist: &metrics::Histogram,
    eval: impl FnOnce() -> T,
) -> T {
    if timing {
        let t0 = Instant::now();
        let out = eval();
        hist.record(t0.elapsed().as_nanos() as u64);
        out
    } else {
        eval()
    }
}

/// Execution strategy of an engine's sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Evaluate every point on the calling thread, in grid order.
    Serial,
    /// Fan points out across scoped worker threads. Output is
    /// bitwise-identical to [`ExecMode::Serial`] — see the crate docs.
    Parallel {
        /// Worker-thread count (clamped to at least 1).
        threads: usize,
    },
}

impl ExecMode {
    fn threads(self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => threads.max(1),
        }
    }
}

/// Which architecture's total-utility curve a welfare table samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// Best-effort: everyone admitted, `V_B(C) = k̄·B(C)`.
    BestEffort,
    /// Reservations: admission capped at `k_max(C)`, `V_R(C) = k̄·R(C)`.
    Reservation,
}

/// One evaluated capacity point of a sweep: the paper's four headline
/// quantities at capacity `C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Capacity `C`.
    pub capacity: f64,
    /// Normalized best-effort utility `B(C)`.
    pub best_effort: f64,
    /// Normalized reservation utility `R(C)`.
    pub reservation: f64,
    /// Performance gap `δ(C) = max(R − B, 0)`.
    pub performance_gap: f64,
    /// Bandwidth gap `Δ(C)` solving `B(C + Δ) = R(C)`; NaN if the solver
    /// could not bracket a root (pathologically truncated tables only).
    pub bandwidth_gap: f64,
}

/// What one attempt at a grid point produced, before outcome mapping.
enum PointEval {
    /// The point evaluated; the optional string is a gap-solver cause.
    Done(SweepPoint, Option<String>),
    /// The ambient deadline expired before this point was evaluated.
    DeadlineSkipped,
}

/// What one grid point of a checked sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point evaluated (possibly with non-finite fields, which the
    /// sweep's [`SweepHealth`] counts as degraded).
    Ok(SweepPoint),
    /// The point produced no value: its worker panicked on every attempt
    /// the retry policy permitted, its result slot was lost, or the
    /// ambient deadline expired before it could be evaluated.
    Failed {
        /// The capacity that failed.
        capacity: f64,
        /// The grid index that failed.
        index: usize,
        /// Human-readable failure cause (panic message or slot loss).
        cause: String,
    },
}

impl PointOutcome {
    /// The evaluated point, if the outcome is [`PointOutcome::Ok`].
    #[must_use]
    pub fn point(&self) -> Option<&SweepPoint> {
        match self {
            PointOutcome::Ok(p) => Some(p),
            PointOutcome::Failed { .. } => None,
        }
    }
}

/// Result of [`SweepEngine::sweep_checked`]: one outcome per input
/// capacity (in grid order) plus the degradation ledger derived from
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedSweep {
    /// One outcome per grid capacity, in input order.
    pub outcomes: Vec<PointOutcome>,
    /// Ok/degraded/failed/non-finite accounting over `outcomes`.
    pub health: SweepHealth,
}

impl CheckedSweep {
    /// The evaluated points, skipping failed ones.
    #[must_use]
    pub fn points(&self) -> Vec<SweepPoint> {
        self.outcomes.iter().filter_map(|o| o.point().copied()).collect()
    }

    /// The evaluated points, panicking on the first failed one — the
    /// legacy all-or-nothing contract of [`SweepEngine::sweep`].
    #[must_use]
    pub fn expect_points(&self) -> Vec<SweepPoint> {
        self.outcomes
            .iter()
            .map(|o| match o {
                PointOutcome::Ok(p) => *p,
                PointOutcome::Failed { capacity, index, cause } => {
                    panic!("sweep point {index} (C = {capacity}) failed: {cause}")
                }
            })
            .collect()
    }
}

/// Memoized, parallel evaluator of `B(C)`, `R(C)`, `δ(C)`, `Δ(C)` and the
/// welfare tables for one (load, utility) pair.
///
/// The engine wraps a [`DiscreteModel`] and adds:
///
/// * **memoization** — sharded thread-safe caches for the `k_max(C)`
///   table, `B(C)`, and `R(C)`, keyed by the capacity's bit pattern. The
///   bandwidth-gap root-finder and the welfare tables re-probe the same
///   capacities many times; with the caches every distinct capacity is
///   summed over the load table exactly once per engine;
/// * **data parallelism** — [`Self::sweep`], [`Self::value_table`] and
///   [`Self::gamma_sweep`] fan their grids out over scoped threads
///   ([`crate::pool`]), with output **bitwise-identical** to serial
///   because every per-point computation is a pure function evaluated by
///   the same scalar code path;
/// * **instrumentation** — every sweep stage opens a
///   [`crate::instrument::span()`], and [`Self::cache_stats`] exposes
///   hit/miss counters for the emitted perf reports.
pub struct SweepEngine<U: Utility> {
    model: DiscreteModel<U>,
    mode: ExecMode,
    kernel: &'static dyn Kernel,
    persist: Option<PersistentCache>,
    ckpt: Option<CheckpointStore>,
    kmax: ShardedCache<Option<u64>>,
    b: ShardedCache<f64>,
    r: ShardedCache<f64>,
}

impl<U: Utility> SweepEngine<U> {
    /// Engine in the default parallel mode ([`thread_count`] workers —
    /// the `BEVRA_THREADS` environment variable or all cores).
    #[must_use]
    pub fn new(model: DiscreteModel<U>) -> Self {
        Self::with_mode(model, ExecMode::Parallel { threads: thread_count() })
    }

    /// Engine that evaluates everything on the calling thread — the
    /// reference path the parallel mode is verified against.
    #[must_use]
    pub fn serial(model: DiscreteModel<U>) -> Self {
        Self::with_mode(model, ExecMode::Serial)
    }

    /// Engine with an explicit execution mode. The kernel backend comes
    /// from `BEVRA_KERNEL` via the registry, the persistent cache from
    /// `BEVRA_CACHE` (see [`crate::registry::from_env`] and
    /// [`PersistentCache::from_env`]), and the crash-safe sweep
    /// checkpoint store from `BEVRA_CHECKPOINT`
    /// ([`CheckpointStore::from_env`]); all can be overridden with the
    /// builder methods.
    #[must_use]
    pub fn with_mode(model: DiscreteModel<U>, mode: ExecMode) -> Self {
        Self {
            model,
            mode,
            kernel: crate::registry::from_env(),
            persist: PersistentCache::from_env(),
            ckpt: CheckpointStore::from_env("bevra-engine"),
            kmax: ShardedCache::new(),
            b: ShardedCache::new(),
            r: ShardedCache::new(),
        }
    }

    /// Replace the kernel backend (builder style). Use the accessors in
    /// `bevra_core::kernel` (e.g. `kernel::fast()`) or a registry lookup
    /// (`crate::registry::lookup`).
    #[must_use]
    pub fn with_kernel(mut self, kernel: &'static dyn Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Attach an explicit persistent cache (builder style), replacing
    /// whatever `BEVRA_CACHE` configured.
    #[must_use]
    pub fn with_persistent_cache(mut self, cache: PersistentCache) -> Self {
        self.persist = Some(cache);
        self
    }

    /// Attach an explicit crash-safe checkpoint store (builder style),
    /// replacing whatever `BEVRA_CHECKPOINT` configured.
    #[must_use]
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        self.ckpt = Some(store);
        self
    }

    /// The attached checkpoint store, if any (for inspecting its
    /// restored/store counters after a sweep).
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.ckpt.as_ref()
    }

    /// The wrapped model.
    pub fn model(&self) -> &DiscreteModel<U> {
        &self.model
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The active kernel backend.
    pub fn kernel(&self) -> &'static dyn Kernel {
        self.kernel
    }

    /// The attached persistent cache, if any (for inspecting its
    /// counters after a sweep).
    pub fn persistent_cache(&self) -> Option<&PersistentCache> {
        self.persist.as_ref()
    }

    /// Prime the memo tables for a capacity grid with the active kernel
    /// backend (no-op for backends whose capability reports
    /// `grid_priming: false`, e.g. the scalar reference backend).
    ///
    /// Non-finite and nonpositive capacities are left to the scalar path;
    /// the rest are sorted, deduplicated, filtered to what is not already
    /// memoized, then either loaded from the persistent cache (keyed by
    /// the backend's capability record, so cached rows never cross parity
    /// classes) or computed by the backend's grid entry points — in
    /// parallel contiguous chunks under [`ExecMode::Parallel`] — and
    /// inserted. Bitwise-class backends mirror the scalar path exactly;
    /// tolerance-class backends are deterministic within their documented
    /// budget. Either way, results are identical under any thread count
    /// or chunking.
    ///
    /// A panic inside the batched compute is caught and counted
    /// (`engine/prime/panic`): the sweep then falls back to the per-point
    /// scalar path, preserving the engine's degradation contract.
    pub fn prime(&self, capacities: &[f64]) {
        let cap = self.kernel.capability();
        if !cap.grid_priming {
            return;
        }
        let mut cs: Vec<f64> =
            capacities.iter().copied().filter(|c| c.is_finite() && *c > 0.0).collect();
        cs.sort_unstable_by(f64::total_cmp);
        cs.dedup_by(|a, b| a.to_bits() == b.to_bits());
        cs.retain(|&c| {
            let k = f64_key(c);
            self.kmax.peek(k).is_none()
                || self.b.peek(k).is_none()
                || self.r.peek(k).is_none()
        });
        if cs.is_empty() {
            return;
        }

        metrics::counter(&format!("engine/kernel/{}/primes", cap.name)).inc();
        if let Some(pc) = &self.persist {
            let key = grid_key(&self.model, &cap, &cs);
            if let Some(rows) = pc.load(key, &cs) {
                self.insert_rows(&cs, &rows);
                return;
            }
            if let Some(rows) = self.compute_rows(&cs) {
                self.insert_rows(&cs, &rows);
                pc.store(key, &cs, &rows);
            }
            return;
        }
        if let Some(rows) = self.compute_rows(&cs) {
            self.insert_rows(&cs, &rows);
        }
    }

    /// Batched evaluation of `(k_max, B, R)` rows for a sorted deduped
    /// grid through the active backend; `None` if the kernel panicked
    /// (fall back to scalar).
    fn compute_rows(&self, cs: &[f64]) -> Option<Vec<GridRow>> {
        let kernel = self.kernel;
        let threads = self.mode.threads();
        let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // One type-erased view shared by all workers: an Arc clone of
            // the load plus a borrow of the utility — no table copies.
            let dyn_model = self.model.as_dyn();
            let chunk_len = cs.len().div_ceil(threads).max(1);
            let chunks: Vec<&[f64]> = cs.chunks(chunk_len).collect();
            let parts = parallel_map_with(&chunks, threads, |chunk| {
                // Backends with a carried argmax restart the bracket per
                // chunk; the search returns the smallest maximizer
                // regardless of the carry, so chunking never changes bits.
                // `sweep_grid` lets fused backends serve B and R from one
                // table traversal; for the rest it composes the same three
                // primitives this loop used to call, in the same order.
                let sweep = kernel.sweep_grid(&dyn_model, chunk);
                sweep
                    .k_max
                    .into_iter()
                    .zip(sweep.best_effort)
                    .zip(sweep.reservation)
                    .map(|((k, b), r)| (k, b, r))
                    .collect::<Vec<GridRow>>()
            });
            parts.into_iter().flatten().collect::<Vec<GridRow>>()
        }));
        match computed {
            Ok(rows) => Some(rows),
            Err(_) => {
                metrics::counter("engine/prime/panic").inc();
                None
            }
        }
    }

    fn insert_rows(&self, cs: &[f64], rows: &[GridRow]) {
        for (&c, &(kmax, b, r)) in cs.iter().zip(rows) {
            let k = f64_key(c);
            self.kmax.insert(k, kmax);
            self.b.insert(k, b);
            self.r.insert(k, r);
        }
    }

    /// Memoized admission threshold `k_max(C)`.
    pub fn k_max(&self, capacity: f64) -> Option<u64> {
        self.kmax.get_or_insert_with(f64_key(capacity), || self.model.k_max(capacity))
    }

    /// Memoized normalized best-effort utility `B(C)`.
    pub fn best_effort(&self, capacity: f64) -> f64 {
        self.b.get_or_insert_with(f64_key(capacity), || self.model.best_effort(capacity))
    }

    /// Memoized normalized reservation utility `R(C)`, reusing the
    /// memoized `k_max` table.
    pub fn reservation(&self, capacity: f64) -> f64 {
        self.r.get_or_insert_with(f64_key(capacity), || {
            self.model.reservation_with_kmax(capacity, self.k_max(capacity))
        })
    }

    /// Performance gap `δ(C) = max(R(C) − B(C), 0)` from the caches.
    pub fn performance_gap(&self, capacity: f64) -> f64 {
        (self.reservation(capacity) - self.best_effort(capacity)).max(0.0)
    }

    /// Bandwidth gap `Δ(C)` solving `B(C + Δ) = R(C)`.
    ///
    /// Same algorithm as [`bevra_core::bandwidth_gap`] (upward bracket
    /// expansion + Brent, zero for sub-ULP gaps), but every `B` probe goes
    /// through the memo table, so bracketing probes shared between grid
    /// points are paid for once.
    ///
    /// # Errors
    ///
    /// Propagates bracketing/root-finding failures, exactly as the serial
    /// implementation does.
    pub fn bandwidth_gap(&self, capacity: f64) -> NumResult<f64> {
        let target = self.reservation(capacity);
        let here = self.best_effort(capacity);
        if target <= here + 1e-12 {
            return Ok(0.0);
        }
        let kbar = self.model.mean_load();
        let max_extra = 1e6 * kbar;
        let f = |delta: f64| self.best_effort(capacity + delta) - target;
        let bracket = expand_bracket_up(f, 0.0, 0.01 * kbar.max(1.0), max_extra)?;
        if bracket.lo == bracket.hi {
            return Ok(bracket.lo);
        }
        let delta = brent(f, bracket.lo, bracket.hi, 1e-9 * kbar.max(1.0))?;
        if delta.is_finite() && delta >= 0.0 {
            Ok(delta)
        } else {
            Err(NumError::InvalidInput { what: "bandwidth gap solver produced a negative gap" })
        }
    }

    /// Evaluate all four headline quantities over a capacity grid,
    /// parallel per [`Self::mode`]. Failed gap solves surface as NaN.
    ///
    /// Legacy all-or-nothing wrapper over [`Self::sweep_checked`]: a
    /// point whose evaluation panics on every attempt its retry policy
    /// permits (see [`crate::pool::parallel_map_supervised`]) panics here
    /// too, after every other point has been evaluated. Use
    /// `sweep_checked` to get structured per-point outcomes instead.
    pub fn sweep(&self, capacities: &[f64]) -> Vec<SweepPoint> {
        self.sweep_checked(capacities).expect_points()
    }

    /// [`Self::sweep`] with per-point panic isolation and structured
    /// degradation: every grid point gets a [`PointOutcome`] (in input
    /// order), and the returned [`SweepHealth`] counts clean, degraded
    /// (non-finite or failed gap solve) and failed (panicked) points —
    /// one bad point no longer aborts the sweep.
    ///
    /// Resilience wiring:
    ///
    /// * **retry** — per-point panics are retried under the ambient
    ///   compute policy ([`compute_retry_policy`]: one immediate serial
    ///   retry, `BEVRA_RETRY` overrides); retries spent land in
    ///   `health.retries`.
    /// * **deadline** — the ambient `BEVRA_DEADLINE_MS` deadline is
    ///   checked at sweep-point granularity; points skipped after expiry
    ///   degrade to [`PointOutcome::Failed`] with a deadline cause.
    /// * **checkpointing** — with a [`CheckpointStore`] attached
    ///   (`BEVRA_CHECKPOINT=rw`), completed clean points are persisted
    ///   every [`BATCH_POINTS`] grid points and restored bitwise on the
    ///   next run over the same key, so a killed sweep resumes instead of
    ///   recomputing; a fully clean sweep clears its checkpoint. The
    ///   `engine/ckpt-batch` fault site between batches is the chaos
    ///   suite's kill point.
    ///
    /// With no fault plan active and a panic-free evaluation, the `Ok`
    /// points are bitwise-identical to the legacy [`Self::sweep`] under
    /// any thread count, and `health` is all-ok; the ledger itself is
    /// derived serially from the input-ordered outcomes, so it is
    /// deterministic too.
    pub fn sweep_checked(&self, capacities: &[f64]) -> CheckedSweep {
        let mut sp = span("sweep/points");
        sp.add_points(capacities.len() as u64);
        self.prime(capacities);
        let timing = enabled(ObsLevel::Summary);
        let lat = metrics::histogram("engine/sweep_point_ns");
        let deadline = Deadline::from_env("bevra-engine");
        let policy = compute_retry_policy();
        let threads = self.mode.threads();
        let indexed: Vec<(usize, f64)> = capacities.iter().copied().enumerate().collect();
        let n = indexed.len();
        let eval = |&(i, c): &(usize, f64), attempt: u32| -> PointEval {
            if deadline.expired() {
                return PointEval::DeadlineSkipped;
            }
            bevra_faults::panic_point_attempt("engine/point", i as u64, u64::from(attempt));
            timed_point(timing, &lat, || {
                let best_effort = self.best_effort(c);
                let reservation = self.reservation(c);
                let performance_gap = self.performance_gap(c);
                let (bandwidth_gap, gap_cause) = match self.bandwidth_gap(c) {
                    Ok(g) => (g, None),
                    Err(e) => (f64::NAN, Some(format!("bandwidth gap at C = {c}: {e}"))),
                };
                PointEval::Done(
                    SweepPoint {
                        capacity: c,
                        best_effort,
                        reservation,
                        performance_gap,
                        bandwidth_gap,
                    },
                    gap_cause,
                )
            })
        };

        let mut slots: Vec<Option<Result<PointEval, ItemError>>> = (0..n).map(|_| None).collect();
        let mut retries_total = 0u64;
        if let Some(cs) = &self.ckpt {
            let key = grid_key(&self.model, &self.kernel.capability(), capacities);
            for (i, pt) in cs.load(key, n).into_iter().enumerate() {
                if let Some(pt) = pt {
                    slots[i] = Some(Ok(PointEval::Done(pt, None)));
                }
            }
            let is_clean = |pt: &SweepPoint| {
                [pt.best_effort, pt.reservation, pt.performance_gap, pt.bandwidth_gap]
                    .iter()
                    .all(|v| v.is_finite())
            };
            let mut clean: Vec<(usize, SweepPoint)> = slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Some(Ok(PointEval::Done(pt, None))) if is_clean(pt) => Some((i, *pt)),
                    _ => None,
                })
                .collect();
            for (batch_idx, batch) in indexed.chunks(BATCH_POINTS).enumerate() {
                let todo: Vec<(usize, f64)> =
                    batch.iter().filter(|(i, _)| slots[*i].is_none()).copied().collect();
                if !todo.is_empty() {
                    let (results, retries) =
                        parallel_map_supervised(&todo, threads, &policy, eval);
                    retries_total += retries;
                    for ((i, _), r) in todo.iter().zip(results) {
                        if let Ok(PointEval::Done(pt, None)) = &r {
                            if is_clean(pt) {
                                clean.push((*i, *pt));
                            }
                        }
                        slots[*i] = Some(r);
                    }
                    cs.store(key, n, &clean);
                }
                // Kill site: a `panic:engine/ckpt-batch` rule crashes the
                // sweep *between* batches — everything evaluated so far is
                // already on disk, so the next run resumes from here.
                bevra_faults::panic_point("engine/ckpt-batch", batch_idx as u64);
            }
            if clean.len() == n {
                cs.clear(key);
            }
        } else {
            let (results, retries) = parallel_map_supervised(&indexed, threads, &policy, eval);
            retries_total += retries;
            for (slot, r) in slots.iter_mut().zip(results) {
                *slot = Some(r);
            }
        }

        let mut health = SweepHealth::new();
        let cap = self.kernel.capability();
        health.kernel = Some(cap.name.to_string());
        health.simd = Some(cap.simd.as_str().to_string());
        health.retries = retries_total;
        let outcomes = slots
            .into_iter()
            .zip(&indexed)
            .map(|(r, &(index, capacity))| match r.unwrap_or(Err(ItemError::Missing)) {
                Ok(PointEval::Done(pt, gap_cause)) => {
                    let mut non_finite_fields = 0u64;
                    for v in
                        [pt.best_effort, pt.reservation, pt.performance_gap, pt.bandwidth_gap]
                    {
                        if health.tally_non_finite(v) {
                            non_finite_fields += 1;
                        }
                    }
                    if let Some(cause) = gap_cause {
                        health.note_degraded(&cause);
                    } else if non_finite_fields > 0 {
                        health.note_degraded(&format!(
                            "{non_finite_fields} non-finite value(s) at C = {capacity}"
                        ));
                    } else {
                        health.note_ok();
                    }
                    PointOutcome::Ok(pt)
                }
                Ok(PointEval::DeadlineSkipped) => {
                    let cause = format!("deadline expired before evaluating C = {capacity}");
                    health.note_failed(&cause);
                    PointOutcome::Failed { capacity, index, cause }
                }
                Err(e @ (ItemError::Panic { .. } | ItemError::Missing)) => {
                    let cause = e.to_string();
                    health.note_failed(&cause);
                    PointOutcome::Failed { capacity, index, cause }
                }
            })
            .collect();
        CheckedSweep { outcomes, health }
    }

    /// Build the welfare sampling table `V(C)` for one architecture over
    /// the standard [`SampledValue::grid`], evaluating grid points in
    /// parallel per [`Self::mode`].
    ///
    /// Identical (bitwise) to `SampledValue::build` over the same model:
    /// `V_B(C) = k̄·B(C)` and `V_R(C) = k̄·R(C)` are evaluated by the
    /// same scalar code, only fanned out and memoized.
    pub fn value_table(
        &self,
        arch: Architecture,
        c_scale: f64,
        c_max: f64,
        n: usize,
    ) -> SampledValue {
        self.value_table_checked(arch, c_scale, c_max, n).0
    }

    /// [`Self::value_table`] plus a degradation ledger counting grid
    /// values that came out non-finite (from truncated load tables or
    /// injected corruption) — nothing non-finite enters a welfare table
    /// silently.
    pub fn value_table_checked(
        &self,
        arch: Architecture,
        c_scale: f64,
        c_max: f64,
        n: usize,
    ) -> (SampledValue, SweepHealth) {
        let cs = SampledValue::grid(c_scale, c_max, n);
        let mut sp = span(match arch {
            Architecture::BestEffort => "welfare/value-table-B",
            Architecture::Reservation => "welfare/value-table-R",
        });
        sp.add_points(cs.len() as u64);
        self.prime(&cs);
        let kbar = self.model.mean_load();
        let timing = enabled(ObsLevel::Summary);
        let lat = metrics::histogram("engine/value_point_ns");
        let vs = parallel_map_with(&cs, self.mode.threads(), |&c| {
            timed_point(timing, &lat, || match arch {
                Architecture::BestEffort => kbar * self.best_effort(c),
                Architecture::Reservation => kbar * self.reservation(c),
            })
        });
        let mut health = SweepHealth::new();
        let cap = self.kernel.capability();
        health.kernel = Some(cap.name.to_string());
        health.simd = Some(cap.simd.as_str().to_string());
        for (&c, &v) in cs.iter().zip(&vs) {
            if health.tally_non_finite(v) {
                health.note_degraded(&format!("non-finite welfare value at C = {c}"));
            } else {
                health.note_ok();
            }
        }
        (SampledValue::from_samples(cs, vs), health)
    }

    /// Equalizing price ratio `γ(p)` over a price grid, parallel per
    /// [`Self::mode`]: for each price, best-effort welfare comes from
    /// `sv_b` and the ratio is solved against `sv_r`. Failed solves
    /// surface as NaN.
    pub fn gamma_sweep(&self, prices: &[f64], sv_b: &SampledValue, sv_r: &SampledValue) -> Vec<f64> {
        self.gamma_sweep_checked(prices, sv_b, sv_r).0
    }

    /// [`Self::gamma_sweep`] plus a degradation ledger: each price whose
    /// ratio solve failed (NaN output) is counted degraded, with the
    /// solver's error as the recorded cause.
    pub fn gamma_sweep_checked(
        &self,
        prices: &[f64],
        sv_b: &SampledValue,
        sv_r: &SampledValue,
    ) -> (Vec<f64>, SweepHealth) {
        let mut sp = span("welfare/gamma");
        sp.add_points(prices.len() as u64);
        let timing = enabled(ObsLevel::Summary);
        let lat = metrics::histogram("engine/gamma_point_ns");
        let raw = parallel_map_with(prices, self.mode.threads(), |&p| {
            timed_point(timing, &lat, || {
                let wb = sv_b.welfare(p).welfare;
                match equalizing_price_ratio(|ph| sv_r.welfare(ph).welfare, wb, p) {
                    Ok(g) => (g, None),
                    Err(e) => (f64::NAN, Some(format!("gamma solve at p = {p}: {e}"))),
                }
            })
        });
        let mut health = SweepHealth::new();
        let mut out = Vec::with_capacity(raw.len());
        for (g, cause) in raw {
            match cause {
                Some(c) => {
                    health.tally_non_finite(g);
                    health.note_degraded(&c);
                }
                None if health.tally_non_finite(g) => {
                    health.note_degraded("non-finite gamma from a nominally successful solve");
                }
                None => health.note_ok(),
            }
            out.push(g);
        }
        (out, health)
    }

    /// Hit/miss counters of the three memo tables — plus the persistent
    /// cross-run cache, when one is attached — named for reports.
    pub fn cache_stats(&self) -> Vec<(String, CacheStats)> {
        let mut out = vec![
            ("k_max".into(), self.kmax.stats()),
            ("best_effort".into(), self.b.stats()),
            ("reservation".into(), self.r.stats()),
        ];
        if let Some(pc) = &self.persist {
            out.push(("persistent".into(), pc.stats()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Geometric, Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, Rigid};

    fn poisson_engine(mode: ExecMode) -> SweepEngine<AdaptiveExp> {
        let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 16);
        SweepEngine::with_mode(DiscreteModel::new(load, AdaptiveExp::paper()), mode)
    }

    fn grid() -> Vec<f64> {
        (1..=24).map(|i| f64::from(i) * 9.0).collect()
    }

    /// Keep injected-panic backtrace spam out of the test output without
    /// racing other tests on the global hook (installed once, filters by
    /// the fault marker, delegates everything else).
    fn silence_injected_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !msg.contains("bevra-faults: injected panic") {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn parallel_sweep_bitwise_matches_serial() {
        let cs = grid();
        let serial = poisson_engine(ExecMode::Serial).sweep(&cs);
        let par = poisson_engine(ExecMode::Parallel { threads: 8 }).sweep(&cs);
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.best_effort.to_bits(), p.best_effort.to_bits());
            assert_eq!(s.reservation.to_bits(), p.reservation.to_bits());
            assert_eq!(s.performance_gap.to_bits(), p.performance_gap.to_bits());
            assert_eq!(s.bandwidth_gap.to_bits(), p.bandwidth_gap.to_bits());
        }
    }

    #[test]
    fn engine_matches_legacy_model_path() {
        let cs = grid();
        let load = Tabulated::from_model(&Geometric::from_mean(50.0), 1e-12, 1 << 16);
        let model = DiscreteModel::new(load.clone(), Rigid::unit());
        let engine = SweepEngine::new(DiscreteModel::new(load, Rigid::unit()));
        for (&c, pt) in cs.iter().zip(engine.sweep(&cs)) {
            assert_eq!(model.best_effort(c).to_bits(), pt.best_effort.to_bits());
            assert_eq!(model.reservation(c).to_bits(), pt.reservation.to_bits());
            let legacy_gap = bevra_core::bandwidth_gap(&model, c).unwrap_or(f64::NAN);
            assert_eq!(legacy_gap.to_bits(), pt.bandwidth_gap.to_bits());
        }
    }

    #[test]
    fn caches_hit_on_resweep() {
        let engine = poisson_engine(ExecMode::Parallel { threads: 4 });
        let cs = grid();
        let first = engine.sweep(&cs);
        let misses_after_first: u64 = engine.cache_stats().iter().map(|(_, s)| s.misses).sum();
        let second = engine.sweep(&cs);
        let misses_after_second: u64 = engine.cache_stats().iter().map(|(_, s)| s.misses).sum();
        assert_eq!(misses_after_first, misses_after_second, "second sweep is all hits");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.best_effort.to_bits(), b.best_effort.to_bits());
        }
    }

    #[test]
    fn value_table_matches_sampled_build() {
        let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 16);
        let model = DiscreteModel::new(load.clone(), AdaptiveExp::paper());
        let engine = SweepEngine::new(DiscreteModel::new(load, AdaptiveExp::paper()));
        let sv_legacy = SampledValue::build(|c| model.total_best_effort(c), 50.0, 5e3, 64);
        let sv_engine = engine.value_table(Architecture::BestEffort, 50.0, 5e3, 64);
        for c in [10.0, 75.0, 320.0, 4000.0] {
            assert_eq!(sv_legacy.value(c).to_bits(), sv_engine.value(c).to_bits(), "C={c}");
        }
    }

    #[test]
    fn batched_priming_matches_scalar_kernel_bitwise() {
        let cs = grid();
        let scalar =
            poisson_engine(ExecMode::Serial).with_kernel(bevra_core::kernel::scalar()).sweep(&cs);
        let batched =
            poisson_engine(ExecMode::Serial).with_kernel(bevra_core::kernel::batch()).sweep(&cs);
        let batched_par = poisson_engine(ExecMode::Parallel { threads: 5 })
            .with_kernel(bevra_core::kernel::batch())
            .sweep(&cs);
        for ((s, b), p) in scalar.iter().zip(&batched).zip(&batched_par) {
            assert_eq!(s.best_effort.to_bits(), b.best_effort.to_bits());
            assert_eq!(s.reservation.to_bits(), b.reservation.to_bits());
            assert_eq!(s.bandwidth_gap.to_bits(), b.bandwidth_gap.to_bits());
            assert_eq!(s.best_effort.to_bits(), p.best_effort.to_bits());
            assert_eq!(s.reservation.to_bits(), p.reservation.to_bits());
            assert_eq!(s.bandwidth_gap.to_bits(), p.bandwidth_gap.to_bits());
        }
    }

    #[test]
    fn fast_kernel_is_close_but_fast_tables_never_cross_keys() {
        let cs = grid();
        let exact =
            poisson_engine(ExecMode::Serial).with_kernel(bevra_core::kernel::batch()).sweep(&cs);
        let fast =
            poisson_engine(ExecMode::Serial).with_kernel(bevra_core::kernel::fast()).sweep(&cs);
        for (e, f) in exact.iter().zip(&fast) {
            let tol = 1e-12 * e.best_effort.abs().max(1e-300);
            assert!(
                (e.best_effort - f.best_effort).abs() <= tol,
                "C={}: exact {:e} fast {:e}",
                e.capacity,
                e.best_effort,
                f.best_effort
            );
        }
    }

    #[test]
    fn persistent_cache_warm_run_hits_everything() {
        let dir = std::env::temp_dir()
            .join(format!("bevra-engine-pcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cs = grid();

        // Cold run: computes and stores.
        let cold = poisson_engine(ExecMode::Serial).with_persistent_cache(
            crate::persist::PersistentCache::new(&dir, crate::persist::CacheMode::ReadWrite),
        );
        let first = cold.sweep(&cs);
        let cold_stats = cold.cache_stats();
        let (_, pc) = cold_stats.iter().find(|(n, _)| n == "persistent").expect("pcache stats");
        assert_eq!((pc.hits, pc.misses), (0, 1), "cold run misses once");

        // Warm run in a fresh engine (empty memo tables): loads instead of
        // computing, with bitwise-identical sweep output.
        let warm = poisson_engine(ExecMode::Serial).with_persistent_cache(
            crate::persist::PersistentCache::new(&dir, crate::persist::CacheMode::ReadWrite),
        );
        let second = warm.sweep(&cs);
        let warm_stats = warm.cache_stats();
        let (_, pw) = warm_stats.iter().find(|(n, _)| n == "persistent").expect("pcache stats");
        assert_eq!((pw.hits, pw.misses), (1, 0), "warm run is a pure hit");
        assert!((pw.hit_rate() - 1.0).abs() < 1e-15, "hit rate gauge is 100%");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.best_effort.to_bits(), b.best_effort.to_bits());
            assert_eq!(a.reservation.to_bits(), b.reservation.to_bits());
            assert_eq!(a.bandwidth_gap.to_bits(), b.bandwidth_gap.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_sweep_resumes_bitwise_after_kill() {
        use crate::checkpoint::CheckpointStore;
        use crate::persist::CacheMode;
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let dir = std::env::temp_dir()
            .join(format!("bevra-engine-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // 40 points → two checkpoint batches of 32 + 8.
        let cs: Vec<f64> = (1..=40).map(|i| f64::from(i) * 7.0).collect();
        let reference = poisson_engine(ExecMode::Serial).sweep(&cs);

        // Interrupted run: the kill site fires after batch 0 is stored.
        let killed_engine = poisson_engine(ExecMode::Serial)
            .with_checkpoints(CheckpointStore::new(&dir, CacheMode::ReadWrite));
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "engine/ckpt-batch", 0));
        {
            silence_injected_panics();
            let _guard = install(plan);
            let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                killed_engine.sweep_checked(&cs)
            }));
            assert!(killed.is_err(), "the ckpt-batch kill site must fire");
        }
        assert!(
            killed_engine.checkpoint_store().is_some_and(|s| s.stores() >= 1),
            "batch 0 was checkpointed before the kill"
        );

        // Resumed run: restores batch 0 bitwise and completes the rest.
        let resumed_engine = poisson_engine(ExecMode::Serial)
            .with_checkpoints(CheckpointStore::new(&dir, CacheMode::ReadWrite));
        let resumed = resumed_engine.sweep_checked(&cs);
        let store = resumed_engine.checkpoint_store().expect("store attached");
        assert_eq!(store.restored_points(), 32, "first batch restored from disk");
        assert!(resumed.health.is_clean(), "resume is clean: {}", resumed.health);
        for (a, b) in reference.iter().zip(resumed.points()) {
            assert_eq!(a.best_effort.to_bits(), b.best_effort.to_bits());
            assert_eq!(a.reservation.to_bits(), b.reservation.to_bits());
            assert_eq!(a.performance_gap.to_bits(), b.performance_gap.to_bits());
            assert_eq!(a.bandwidth_gap.to_bits(), b.bandwidth_gap.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_point_panic_is_rescued_and_ledgered() {
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let cs = grid();
        let reference = poisson_engine(ExecMode::Serial).sweep(&cs);
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::at_key(FaultKind::Panic, "engine/point", 3).with_n(1));
        let checked = {
            silence_injected_panics();
            let _guard = install(plan);
            poisson_engine(ExecMode::Serial).sweep_checked(&cs)
        };
        assert_eq!(checked.health.failed, 0, "transient fault was rescued");
        assert_eq!(checked.health.retries, 1, "the rescue is ledgered");
        for (a, b) in reference.iter().zip(checked.points()) {
            assert_eq!(a.best_effort.to_bits(), b.best_effort.to_bits());
            assert_eq!(a.bandwidth_gap.to_bits(), b.bandwidth_gap.to_bits());
        }
    }

    #[test]
    fn gamma_sweep_parallel_matches_serial() {
        let ps: Vec<f64> = (0..12).map(|i| 1e-3 * 1.8f64.powi(i)).collect();
        let serial = poisson_engine(ExecMode::Serial);
        let sb = serial.value_table(Architecture::BestEffort, 50.0, 1e4, 200);
        let sr = serial.value_table(Architecture::Reservation, 50.0, 1e4, 200);
        let gs = serial.gamma_sweep(&ps, &sb, &sr);
        let par = poisson_engine(ExecMode::Parallel { threads: 8 });
        let pb = par.value_table(Architecture::BestEffort, 50.0, 1e4, 200);
        let pr = par.value_table(Architecture::Reservation, 50.0, 1e4, 200);
        let gp = par.gamma_sweep(&ps, &pb, &pr);
        for (a, b) in gs.iter().zip(&gp) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
