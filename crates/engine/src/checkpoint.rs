//! Crash-safe sweep checkpoints.
//!
//! A long sweep that dies mid-run (crash, kill, injected panic) loses
//! every grid point it had already evaluated. This module persists
//! completed points to disk incrementally, keyed by the same content hash
//! the persistent cache uses ([`crate::persist::grid_key`]: load digest,
//! utility fingerprint, kernel parity class, exact grid bits), so a
//! resumed run restores them bitwise and re-evaluates only what is
//! missing — the resumed artifacts are bitwise-identical to an
//! uninterrupted run's.
//!
//! Design rules (shared with [`crate::persist`]):
//!
//! * **Never wrong, never fatal.** Entries carry the key, the grid
//!   length, and an FNV checksum; a missing, truncated, corrupt, or
//!   mismatched file restores nothing (full recompute), never a wrong
//!   bit. Store failures are counted and swallowed.
//! * **Atomic writes.** Entries go through [`bevra_faults::atomic_write`]
//!   (write-temp-then-rename), so a crash mid-checkpoint leaves the
//!   previous complete checkpoint behind, not a torn file. The store is
//!   fault site `io/ckpt/store`, the load `io/ckpt/load`.
//! * **Only clean points.** A checkpoint row is written only for a point
//!   that evaluated fully finite with no solver degradation; degraded
//!   points are re-evaluated on resume (deterministically, to the same
//!   bits and causes), so restoring can never change a health ledger.
//!
//! Gating: [`CheckpointStore::from_env`] reads `BEVRA_CHECKPOINT`
//! (`off`/unset, `rw`, `ro` — anything else warns once and is ignored)
//! and `BEVRA_CHECKPOINT_DIR` (default `<repo>/results/checkpoints`).

use crate::engine::SweepPoint;
use crate::persist::CacheMode;
use bevra_num::env::warn_malformed_env;
use bevra_obs::metrics;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable selecting the checkpoint mode (`rw`, `ro`, `off`).
pub const CHECKPOINT_ENV: &str = "BEVRA_CHECKPOINT";

/// Environment variable overriding the checkpoint directory.
pub const CHECKPOINT_DIR_ENV: &str = "BEVRA_CHECKPOINT_DIR";

/// Format tag; bump when the entry layout changes (old entries then
/// restore nothing).
const FORMAT: &str = "bevra-ckpt v1";

/// Grid points per checkpoint batch: `SweepEngine::sweep_checked`
/// persists completed points and crosses the `engine/ckpt-batch` kill
/// site once per this many points.
pub const BATCH_POINTS: usize = 32;

/// An on-disk sweep checkpoint store (see module docs).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    mode: CacheMode,
    restored: AtomicU64,
    stores: AtomicU64,
    io_errors: AtomicU64,
}

/// FNV-1a over a byte stream (the workspace content hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CheckpointStore {
    /// Store rooted at `dir` with an explicit mode. The directory is
    /// created lazily on the first store.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            dir: dir.into(),
            mode,
            restored: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Store configured from the environment: `BEVRA_CHECKPOINT` = `rw`
    /// or `ro` enables it, unset/`off` disables it, and anything else
    /// warns once (attributed to `component`) and disables it — the same
    /// contract as `BEVRA_FAULTS`. `BEVRA_CHECKPOINT_DIR` overrides the
    /// default `<repo>/results/checkpoints` location.
    #[must_use]
    pub fn from_env(component: &str) -> Option<Self> {
        let raw = std::env::var(CHECKPOINT_ENV).ok()?;
        let mode = match raw.trim() {
            "rw" => CacheMode::ReadWrite,
            "ro" => CacheMode::ReadOnly,
            "off" | "" => return None,
            other => {
                warn_malformed_env(
                    component,
                    CHECKPOINT_ENV,
                    &format!("unknown mode {other:?} (expected rw, ro, or off)"),
                );
                return None;
            }
        };
        let dir = std::env::var_os(CHECKPOINT_DIR_ENV).map_or_else(default_dir, PathBuf::from);
        Some(Self::new(dir, mode))
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Grid points restored from disk so far.
    pub fn restored_points(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Successful checkpoint writes.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Load/store attempts absorbed as I/O failures (injected or real);
    /// every one degraded to a recompute or a skipped write.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bvk"))
    }

    /// Restore the completed points recorded under `key` for a grid of
    /// `n` points: one slot per grid index, `None` where nothing was
    /// checkpointed. Any problem — injected I/O fault, missing or
    /// unreadable file, format/key/length/checksum mismatch — restores
    /// nothing.
    pub fn load(&self, key: u64, n: usize) -> Vec<Option<SweepPoint>> {
        let mut out = vec![None; n];
        if bevra_faults::io_fault("io/ckpt/load", key).is_some() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            metrics::counter("engine/ckpt/io_error").inc();
            return out;
        }
        let Ok(text) = std::fs::read_to_string(self.entry_path(key)) else {
            return out;
        };
        if let Some(rows) = parse_entry(&text, key, n) {
            let restored = rows.len() as u64;
            for (i, pt) in rows {
                out[i] = Some(pt);
            }
            self.restored.fetch_add(restored, Ordering::Relaxed);
            metrics::counter("engine/ckpt/restored").add(restored);
        }
        out
    }

    /// Persist the completed `points` (grid index, point) of an
    /// `n`-point sweep under `key`, replacing any previous checkpoint
    /// (no-op in [`CacheMode::ReadOnly`]). Failures are counted and
    /// swallowed: a sweep that can't checkpoint still completes.
    pub fn store(&self, key: u64, n: usize, points: &[(usize, SweepPoint)]) {
        if self.mode == CacheMode::ReadOnly {
            return;
        }
        let bytes = serialize_entry(key, n, points);
        match bevra_faults::atomic_write("ckpt/store", &self.entry_path(key), &bytes) {
            Ok(_) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                metrics::counter("engine/ckpt/store").inc();
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                metrics::counter("engine/ckpt/io_error").inc();
            }
        }
    }

    /// Remove the checkpoint stored under `key` — called after a sweep
    /// completes so a finished run leaves no stale state behind (no-op in
    /// read-only mode or when no entry exists).
    pub fn clear(&self, key: u64) {
        if self.mode == CacheMode::ReadOnly {
            return;
        }
        let _ = std::fs::remove_file(self.entry_path(key));
    }
}

/// Default checkpoint directory: `results/checkpoints` under the
/// workspace root.
fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf)
        .join("results")
        .join("checkpoints")
}

fn serialize_entry(key: u64, n: usize, points: &[(usize, SweepPoint)]) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut sorted: Vec<&(usize, SweepPoint)> = points.iter().collect();
    sorted.sort_by_key(|(i, _)| *i);
    let mut body = String::new();
    let _ = writeln!(body, "{FORMAT}");
    let _ = writeln!(body, "key {key:016x}");
    let _ = writeln!(body, "n {n}");
    for (i, p) in sorted {
        let _ = writeln!(
            body,
            "{i:08x} {:016x} {:016x} {:016x} {:016x} {:016x}",
            p.capacity.to_bits(),
            p.best_effort.to_bits(),
            p.reservation.to_bits(),
            p.performance_gap.to_bits(),
            p.bandwidth_gap.to_bits(),
        );
    }
    let _ = writeln!(body, "crc {:016x}", fnv1a(body.as_bytes()));
    body.into_bytes()
}

/// Parse and fully validate one entry; `None` on any mismatch.
fn parse_entry(text: &str, key: u64, n: usize) -> Option<Vec<(usize, SweepPoint)>> {
    let crc_at = text.rfind("crc ")?;
    let (body, crc_line) = text.split_at(crc_at);
    let recorded = u64::from_str_radix(crc_line.strip_prefix("crc ")?.trim(), 16).ok()?;
    if fnv1a(body.as_bytes()) != recorded {
        return None;
    }
    let mut lines = body.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let stored_key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    if stored_key != key {
        return None;
    }
    let stored_n: usize = lines.next()?.strip_prefix("n ")?.parse().ok()?;
    if stored_n != n {
        return None;
    }
    let mut rows = Vec::new();
    for line in lines {
        let mut fields = line.split_ascii_whitespace();
        let i: usize = usize::from_str_radix(fields.next()?, 16).ok()?;
        if i >= n {
            return None;
        }
        let mut next_f64 =
            || -> Option<f64> { Some(f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?)) };
        let pt = SweepPoint {
            capacity: next_f64()?,
            best_effort: next_f64()?,
            reservation: next_f64()?,
            performance_gap: next_f64()?,
            bandwidth_gap: next_f64()?,
        };
        if fields.next().is_some() {
            return None;
        }
        rows.push((i, pt));
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bevra-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn point(c: f64) -> SweepPoint {
        SweepPoint {
            capacity: c,
            best_effort: c * 0.5,
            reservation: c * 0.75,
            performance_gap: c * 0.25,
            bandwidth_gap: c * 0.125,
        }
    }

    #[test]
    fn partial_round_trip_is_bitwise() {
        let cs = CheckpointStore::new(tmp_dir("rt"), CacheMode::ReadWrite);
        let key = 0xFEED_u64;
        assert!(cs.load(key, 5).iter().all(Option::is_none), "cold restore is empty");
        let done = vec![(0usize, point(1.0)), (3, point(40.0))];
        cs.store(key, 5, &done);
        let got = cs.load(key, 5);
        assert_eq!(got.len(), 5);
        assert!(got[1].is_none() && got[2].is_none() && got[4].is_none());
        for (i, want) in &done {
            let g = got[*i].expect("restored");
            assert_eq!(g.best_effort.to_bits(), want.best_effort.to_bits());
            assert_eq!(g.bandwidth_gap.to_bits(), want.bandwidth_gap.to_bits());
        }
        assert_eq!(cs.restored_points(), 2);
        assert_eq!(cs.stores(), 1);
    }

    #[test]
    fn mismatch_and_corruption_restore_nothing() {
        let cs = CheckpointStore::new(tmp_dir("bad"), CacheMode::ReadWrite);
        let key = 9;
        cs.store(key, 4, &[(1, point(2.0))]);
        // Different grid length under the same key: nothing restored.
        assert!(cs.load(key, 5).iter().all(Option::is_none));
        // Different key: nothing restored.
        assert!(cs.load(key + 1, 4).iter().all(Option::is_none));
        // Flip one byte: the checksum rejects the entry.
        let path = cs.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(cs.load(key, 4).iter().all(Option::is_none));
        // Truncation too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(cs.load(key, 4).iter().all(Option::is_none));
        assert_eq!(cs.restored_points(), 0);
    }

    #[test]
    fn read_only_never_writes_and_clear_removes() {
        let dir = tmp_dir("ro");
        let ro = CheckpointStore::new(dir.clone(), CacheMode::ReadOnly);
        ro.store(3, 2, &[(0, point(1.0))]);
        assert!(!dir.exists(), "read-only mode must not create the dir");
        let rw = CheckpointStore::new(dir.clone(), CacheMode::ReadWrite);
        rw.store(3, 2, &[(0, point(1.0))]);
        assert!(rw.load(3, 2)[0].is_some());
        rw.clear(3);
        assert!(rw.load(3, 2).iter().all(Option::is_none), "cleared entry restores nothing");
    }

    #[test]
    fn store_absorbs_injected_permanent_io_faults() {
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let cs = CheckpointStore::new(tmp_dir("io"), CacheMode::ReadWrite);
        let plan =
            FaultPlan::seeded(0).rule(FaultRule::always(FaultKind::IoPermanent, "io/ckpt/store"));
        {
            let _guard = install(plan);
            cs.store(11, 1, &[(0, point(1.0))]);
        }
        assert_eq!(cs.stores(), 0);
        assert_eq!(cs.io_errors(), 1);
        assert!(cs.load(11, 1)[0].is_none(), "failed store left nothing behind");
    }
}
