//! Process-global backend registry: the single source of truth for which
//! [`Kernel`] backends exist and which one `BEVRA_KERNEL` selects.
//!
//! The registry is seeded with the four built-ins
//! (`bevra_core::kernel::builtin()`) on first touch. External backends
//! (AVX-512, NEON, offload, …) register a `&'static dyn Kernel` with
//! [`register`]; from then on the parity suite and the chaos harness pick
//! them up automatically via [`backends`], and `BEVRA_KERNEL=<name>`
//! selects them — no engine changes required.
//!
//! # Selection semantics (`BEVRA_KERNEL`)
//!
//! * unset → the `batch` backend (bitwise, grid-priming — the default);
//! * a registered name (`scalar`, `batch`, `fast`,
//!   `deterministic-portable`, or anything registered later) → that
//!   backend; `portable` is accepted as an alias for
//!   `deterministic-portable`;
//! * anything else → the `scalar` reference backend, with a warning on
//!   stderr and a `kernel/unknown_env` metric — the safest backend wins
//!   when the request is unintelligible.
//!
//! # Registering a backend
//!
//! ```
//! use bevra_core::kernel::{DynModel, Kernel, KernelCapability, ParityClass, SimdLevel};
//!
//! /// A demo backend that delegates to the built-in batch kernel.
//! struct Offload;
//!
//! impl Kernel for Offload {
//!     fn capability(&self) -> KernelCapability {
//!         KernelCapability {
//!             name: "offload-demo",
//!             parity: ParityClass::Bitwise,
//!             simd: SimdLevel::None,
//!             portable: false,
//!             grid_priming: true,
//!             fused: false,
//!             fault_sites: &["eval/best_effort", "eval/reservation"],
//!             cache_tag: 17,
//!         }
//!     }
//!     fn k_max_grid(&self, m: &DynModel<'_>, cs: &[f64]) -> Vec<Option<u64>> {
//!         bevra_core::kernel::batch().k_max_grid(m, cs)
//!     }
//!     fn best_effort_grid(&self, m: &DynModel<'_>, cs: &[f64]) -> Vec<f64> {
//!         bevra_core::kernel::batch().best_effort_grid(m, cs)
//!     }
//!     fn reservation_grid(
//!         &self,
//!         m: &DynModel<'_>,
//!         cs: &[f64],
//!         k: &[Option<u64>],
//!         b: &[f64],
//!     ) -> Vec<f64> {
//!         bevra_core::kernel::batch().reservation_grid(m, cs, k, b)
//!     }
//! }
//!
//! static OFFLOAD: Offload = Offload;
//! bevra_engine::registry::register(&OFFLOAD).expect("fresh name");
//! let found = bevra_engine::registry::lookup("offload-demo").expect("registered");
//! assert_eq!(found.capability().cache_tag, 17);
//! // Registered backends are selectable and enumerable like built-ins.
//! assert!(bevra_engine::registry::backends().len() >= 5);
//! ```

use bevra_core::kernel::{self, Kernel};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Why a [`register`] call was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A backend with this capability name is already registered. Names
    /// key the persistent cache and `BEVRA_KERNEL` selection, so they
    /// must be unique for the life of the process.
    DuplicateName(&'static str),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateName(name) => {
                write!(f, "a kernel backend named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The outcome of resolving a `BEVRA_KERNEL` request (see [`resolve`]).
#[derive(Clone, Copy)]
pub struct Selection {
    /// The backend the engine will use.
    pub kernel: &'static dyn Kernel,
    /// Human-readable warning when the request named an unknown backend
    /// and the scalar fallback was substituted; `None` on a clean match.
    pub warning: Option<&'static str>,
}

impl std::fmt::Debug for Selection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Selection")
            .field("kernel", &self.kernel.capability().name)
            .field("warning", &self.warning)
            .finish()
    }
}

static REGISTRY: OnceLock<Mutex<Vec<&'static dyn Kernel>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<&'static dyn Kernel>> {
    REGISTRY.get_or_init(|| Mutex::new(kernel::builtin().to_vec()))
}

fn with_registry<T>(f: impl FnOnce(&mut Vec<&'static dyn Kernel>) -> T) -> T {
    // A poisoned lock only means another thread panicked mid-read; the
    // Vec itself is always in a consistent state (push is the only write).
    f(&mut registry().lock().unwrap_or_else(PoisonError::into_inner))
}

/// Register an external backend.
///
/// # Errors
///
/// Returns [`RegistryError::DuplicateName`] if a backend with the same
/// capability name (built-in or previously registered) already exists;
/// the registry is unchanged in that case.
pub fn register(backend: &'static dyn Kernel) -> Result<(), RegistryError> {
    let name = backend.capability().name;
    with_registry(|reg| {
        if reg.iter().any(|k| k.capability().name == name) {
            return Err(RegistryError::DuplicateName(name));
        }
        reg.push(backend);
        Ok(())
    })
}

/// Look a backend up by capability name (exact match, plus the
/// `portable` alias for `deterministic-portable`).
#[must_use]
pub fn lookup(name: &str) -> Option<&'static dyn Kernel> {
    let name = if name == "portable" { "deterministic-portable" } else { name };
    with_registry(|reg| reg.iter().copied().find(|k| k.capability().name == name))
}

/// Snapshot of every registered backend, in registration order
/// (built-ins first). The parity suite and the chaos harness iterate
/// this, so a newly registered backend is covered automatically.
#[must_use]
pub fn backends() -> Vec<&'static dyn Kernel> {
    with_registry(|reg| reg.clone())
}

/// The backend used when `BEVRA_KERNEL` is unset: grid-batched, bitwise.
#[must_use]
pub fn default_kernel() -> &'static dyn Kernel {
    kernel::batch()
}

/// Pure resolution of a `BEVRA_KERNEL` request — the testable core of
/// [`from_env`]. `None` (variable unset) selects the default backend;
/// an unknown name falls back to the scalar reference backend with a
/// warning, never an abort: a misspelled selector must not silently
/// change numeric results, and scalar is the parity anchor.
#[must_use]
pub fn resolve(request: Option<&str>) -> Selection {
    match request {
        None => Selection { kernel: default_kernel(), warning: None },
        Some(name) => match lookup(name) {
            Some(kernel) => Selection { kernel, warning: None },
            None => Selection {
                kernel: kernel::scalar(),
                warning: Some(
                    "unknown BEVRA_KERNEL backend; falling back to the scalar reference kernel",
                ),
            },
        },
    }
}

/// Resolve `BEVRA_KERNEL` from the environment (see the module docs for
/// the selection table). Unknown names warn on stderr and bump the
/// `kernel/unknown_env` counter before falling back to scalar.
#[must_use]
pub fn from_env() -> &'static dyn Kernel {
    let request = std::env::var("BEVRA_KERNEL").ok();
    let selection = resolve(request.as_deref());
    if let Some(warning) = selection.warning {
        bevra_obs::metrics::counter("kernel/unknown_env").inc();
        eprintln!("bevra: BEVRA_KERNEL={}: {warning}", request.as_deref().unwrap_or(""));
    }
    selection.kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_core::kernel::{DynModel, KernelCapability, ParityClass, SimdLevel};

    /// A minimal backend delegating to batch, for registration tests.
    struct Delegating(&'static str);
    impl Kernel for Delegating {
        fn capability(&self) -> KernelCapability {
            KernelCapability {
                name: self.0,
                parity: ParityClass::Bitwise,
                simd: SimdLevel::None,
                portable: false,
                grid_priming: true,
                fused: false,
                fault_sites: &["eval/best_effort", "eval/reservation"],
                cache_tag: 0xAA,
            }
        }
        fn k_max_grid(&self, m: &DynModel<'_>, cs: &[f64]) -> Vec<Option<u64>> {
            kernel::batch().k_max_grid(m, cs)
        }
        fn best_effort_grid(&self, m: &DynModel<'_>, cs: &[f64]) -> Vec<f64> {
            kernel::batch().best_effort_grid(m, cs)
        }
        fn reservation_grid(
            &self,
            m: &DynModel<'_>,
            cs: &[f64],
            k: &[Option<u64>],
            b: &[f64],
        ) -> Vec<f64> {
            kernel::batch().reservation_grid(m, cs, k, b)
        }
    }

    #[test]
    fn builtins_are_registered_and_lookup_works() {
        let names: Vec<_> = backends().iter().map(|k| k.capability().name).collect();
        for want in ["scalar", "batch", "fast", "deterministic-portable"] {
            assert!(names.contains(&want), "missing builtin {want}: {names:?}");
            assert!(lookup(want).is_some());
        }
        // The short alias resolves to the portable backend.
        assert_eq!(lookup("portable").map(|k| k.capability().name), Some("deterministic-portable"));
    }

    #[test]
    fn duplicate_names_are_rejected_builtin_and_registered() {
        static CLASH: Delegating = Delegating("batch");
        assert_eq!(register(&CLASH), Err(RegistryError::DuplicateName("batch")));

        static FRESH: Delegating = Delegating("registry-test-fresh");
        assert_eq!(register(&FRESH), Ok(()));
        static AGAIN: Delegating = Delegating("registry-test-fresh");
        assert_eq!(register(&AGAIN), Err(RegistryError::DuplicateName("registry-test-fresh")));
        // The winner is still the first registration.
        assert!(lookup("registry-test-fresh").is_some());
    }

    #[test]
    fn resolve_unset_is_default_batch() {
        let sel = resolve(None);
        assert_eq!(sel.kernel.capability().name, "batch");
        assert!(sel.warning.is_none());
    }

    #[test]
    fn resolve_known_names() {
        for (req, want) in [
            ("scalar", "scalar"),
            ("batch", "batch"),
            ("fast", "fast"),
            ("deterministic-portable", "deterministic-portable"),
            ("portable", "deterministic-portable"),
        ] {
            let sel = resolve(Some(req));
            assert_eq!(sel.kernel.capability().name, want, "request {req}");
            assert!(sel.warning.is_none(), "request {req} warned spuriously");
        }
    }

    #[test]
    fn resolve_unknown_falls_back_to_scalar_with_warning() {
        let sel = resolve(Some("no-such-backend"));
        assert_eq!(sel.kernel.capability().name, "scalar");
        assert!(sel.warning.is_some(), "unknown backend must warn");
    }
}
