//! Scoped-thread data parallelism with deterministic output ordering.
//!
//! The workspace cannot pull `rayon` from crates.io, so parallel sweeps run
//! on `std::thread::scope` workers pulling indices from a shared atomic
//! counter. Results are collected per worker as `(index, value)` pairs and
//! merged back into input order, so the output of [`parallel_map`] is
//! **position-for-position identical** to a serial `map` — only wall-clock
//! time differs. Per-point work in this workspace is microseconds to
//! milliseconds, so the one-atomic-op-per-item scheduling cost is noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "BEVRA_THREADS";

/// Number of worker threads a parallel sweep will use: the value of
/// [`THREADS_ENV`] (`BEVRA_THREADS`) if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Apply `f` to every item, using up to `threads` workers, returning the
/// results in input order.
///
/// With `threads <= 1` (or fewer than two items) this degenerates to a
/// plain serial `map` on the calling thread — the two paths produce
/// bitwise-identical results for any pure `f`.
pub fn parallel_map_with<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected.lock().expect("worker panicked holding lock").extend(local);
            });
        }
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in collected.into_inner().expect("worker panicked holding lock") {
        slots[i] = Some(v);
    }
    slots.into_iter().map(|s| s.expect("every index scheduled exactly once")).collect()
}

/// [`parallel_map_with`] at the ambient [`thread_count`].
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, thread_count(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(&items, threads, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map_with(&[42u32], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn float_results_bitwise_stable() {
        let cs: Vec<f64> = (1..500).map(|i| f64::from(i) * 0.37).collect();
        let work = |&c: &f64| (c.sin() * c.sqrt()).exp() / (1.0 + c);
        let serial = parallel_map_with(&cs, 1, work);
        let par = parallel_map_with(&cs, 16, work);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn thread_count_env_override() {
        // Can't mutate the environment safely in parallel tests; just check
        // the ambient value is sane.
        assert!(thread_count() >= 1);
    }
}
