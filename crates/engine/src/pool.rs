//! Scoped-thread data parallelism with deterministic output ordering.
//!
//! The workspace cannot pull `rayon` from crates.io, so parallel sweeps run
//! on `std::thread::scope` workers pulling indices from a shared atomic
//! counter. Results are collected per worker as `(index, value)` pairs and
//! merged back into input order, so the output of [`parallel_map`] is
//! **position-for-position identical** to a serial `map` — only wall-clock
//! time differs. Per-point work in this workspace is microseconds to
//! milliseconds, so the one-atomic-op-per-item scheduling cost is noise.
//!
//! # Failure isolation
//!
//! [`parallel_map_supervised`] wraps every per-item call in
//! [`std::panic::catch_unwind`] and retries panicked items **serially on
//! the same worker** under a [`bevra_resilience::RetryPolicy`]: the
//! attempt index is passed to the closure (so fault sites can distinguish
//! attempts), backoff waits go through the fault-aware clock (virtual
//! under an active plan — chaos runs never sleep), and the retries spent
//! are returned for the health ledger. An item that fails every permitted
//! attempt degrades to an [`ItemError::Panic`] in its output slot while
//! every other item completes normally. A result slot that was never
//! filled (a worker died outside the per-item guard) degrades to
//! [`ItemError::Missing`]. One bad grid point can therefore no longer
//! abort a whole sweep process — the engine turns these errors into
//! structured `PointOutcome::Failed` entries and `SweepHealth` counts.
//!
//! [`parallel_map_isolated`] is the policy-free wrapper: the historical
//! "one immediate serial retry" behavior, now spelled
//! [`RetryPolicy::compute`] and overridable with `BEVRA_RETRY`.
//!
//! Retry decisions are **per-item-local** (a pure function of the item and
//! its attempt count), never shared across workers — shared retry state
//! would make rescue decisions scheduling-dependent and break the
//! workspace's bitwise replay invariant.

use bevra_resilience::RetryPolicy;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "BEVRA_THREADS";

/// Upper bound on an explicitly requested worker count. Values above this
/// fall back to the default rather than spawning an unbounded number of
/// scoped threads (each sweep re-spawns its workers).
pub const MAX_THREADS: usize = 512;

/// Parse a `BEVRA_THREADS`-style override. `None` (fall back to the
/// default worker count) unless the string is an integer in
/// `1..=`[`MAX_THREADS`] — so `"0"`, negatives, garbage, and absurdly
/// large values all degrade to the default instead of panicking or
/// oversubscribing the host. The validation policy is shared with the
/// workspace's other count-valued overrides (`BEVRA_CHECK_CASES`) via
/// [`bevra_num::env::parse_bounded_count`].
#[must_use]
pub fn parse_thread_count(raw: &str) -> Option<usize> {
    bevra_num::env::parse_bounded_count(raw, MAX_THREADS)
}

/// The fallback worker count: [`std::thread::available_parallelism`],
/// or 1 if unavailable.
#[must_use]
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Number of worker threads a parallel sweep will use: the value of
/// [`THREADS_ENV`] (`BEVRA_THREADS`) if it parses per
/// [`parse_thread_count`], otherwise [`default_thread_count`].
#[must_use]
pub fn thread_count() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| parse_thread_count(&v))
        .unwrap_or_else(default_thread_count)
}

/// Why an isolated item produced no value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemError {
    /// The item's closure panicked on every attempt its retry policy
    /// permitted.
    Panic {
        /// The first panic's payload, rendered as text.
        message: String,
        /// Whether the policy permitted (and spent) at least one retry —
        /// `false` only under a single-attempt policy, so health reports
        /// can distinguish "never retried" from "retried and still dead".
        retried: bool,
    },
    /// The item's result slot was never filled — its worker died outside
    /// the per-item guard (e.g. an allocation failure while merging).
    Missing,
}

impl std::fmt::Display for ItemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItemError::Panic { message, retried } => {
                write!(f, "panicked{}: {message}", if *retried { " (retry also panicked)" } else { "" })
            }
            ItemError::Missing => write!(f, "result slot never filled by any worker"),
        }
    }
}

/// Label this worker thread `engine-shard-<w>` for the chrome-trace
/// export, so Perfetto tracks carry shard names instead of bare tids.
/// Only does work at [`bevra_obs::ObsLevel::Trace`] — the label registry
/// takes a short lock, which is noise per sweep but pointless when no
/// trace will be exported.
fn label_shard(w: usize) {
    if bevra_obs::enabled(bevra_obs::ObsLevel::Trace) {
        bevra_obs::set_thread_label(format!("engine-shard-{w}"));
    }
}

/// Render a `catch_unwind` payload as text (panics carry `String` or
/// `&str` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        payload
            .downcast_ref::<&str>()
            .map_or_else(|| "non-string panic payload".to_string(), |s| (*s).to_string())
    })
}

/// Apply `f` to every item, using up to `threads` workers, returning the
/// results in input order.
///
/// With `threads <= 1` (or fewer than two items) this degenerates to a
/// plain serial `map` on the calling thread — the two paths produce
/// bitwise-identical results for any pure `f`.
///
/// A panicking `f` propagates (the scope re-raises the worker's panic),
/// exactly like a serial `map` — use [`parallel_map_isolated`] when one
/// bad item must not take down the whole sweep.
pub fn parallel_map_with<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, collected, f) = (&next, &collected, &f);
            scope.spawn(move || {
                label_shard(w);
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                // Poisoning is recoverable here: workers only ever extend
                // with complete (index, value) pairs, so the vector's
                // contents are valid whether or not a peer panicked.
                collected.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
            });
        }
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in collected.into_inner().unwrap_or_else(PoisonError::into_inner) {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| match s {
            Some(v) => v,
            // Unreachable when no worker panicked (the atomic counter
            // schedules every index exactly once), and a worker panic has
            // already been propagated by the scope above.
            None => panic!("parallel_map_with: slot {i} never filled"),
        })
        .collect()
}

/// The ambient compute-path retry policy: [`RetryPolicy::compute`] (one
/// immediate serial retry, no backoff), overridable with `BEVRA_RETRY`.
#[must_use]
pub fn compute_retry_policy() -> RetryPolicy {
    RetryPolicy::from_env("bevra-engine", RetryPolicy::compute())
}

/// [`parallel_map_with`], but with per-item panic isolation and
/// policy-driven serial retry: each call of `f` runs under
/// [`catch_unwind`] with its attempt index, a panicking item is retried
/// on the same worker per `policy` (backoff on the fault-aware clock —
/// virtual under an active plan), and exhausting the policy degrades the
/// item to [`ItemError::Panic`] instead of aborting the sweep. Output
/// slots that no worker filled degrade to [`ItemError::Missing`].
///
/// Returns the results plus the total retries spent (rescuing or not),
/// for the caller's health ledger.
///
/// Ordering and bitwise determinism match [`parallel_map_with`]: `Ok`
/// values are produced by the same scalar code path in input order, and
/// retry decisions are per-item-local, so rescue behavior is independent
/// of worker count and scheduling.
///
/// `f` must be effectively unwind-safe: observable state it mutates
/// across a panic boundary (caches, instrumentation) must tolerate a
/// panicked writer — true for this workspace's sharded memo caches,
/// which only ever insert complete values and recover poisoned shards.
pub fn parallel_map_supervised<T, U, F>(
    items: &[T],
    threads: usize,
    policy: &RetryPolicy,
    f: F,
) -> (Vec<Result<U, ItemError>>, u64)
where
    T: Sync,
    U: Send,
    F: Fn(&T, u32) -> U + Sync,
{
    let n = items.len();
    let schedule = policy.schedule();
    let retries = AtomicU64::new(0);
    let isolated = |i: usize| -> Result<U, ItemError> {
        let mut clock = bevra_resilience::ambient_clock();
        let mut attempt = 0u32;
        let mut first_message: Option<String> = None;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(&items[i], attempt))) {
                Ok(v) => return Ok(v),
                Err(payload) => {
                    if first_message.is_none() {
                        first_message = Some(panic_message(payload.as_ref()));
                    }
                    if let Some(&wait) = schedule.get(attempt as usize) {
                        clock.sleep_ms(wait);
                        attempt += 1;
                        retries.fetch_add(1, Ordering::Relaxed);
                    } else {
                        return Err(ItemError::Panic {
                            message: first_message.unwrap_or_default(),
                            retried: attempt > 0,
                        });
                    }
                }
            }
        }
    };
    let results = if threads <= 1 || n <= 1 {
        (0..n).map(isolated).collect()
    } else {
        let workers = threads.min(n);
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<U, ItemError>)>> =
            Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let (next, collected, isolated) = (&next, &collected, &isolated);
                scope.spawn(move || {
                    label_shard(w);
                    let mut local: Vec<(usize, Result<U, ItemError>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, isolated(i)));
                    }
                    collected.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
                });
            }
        });
        let mut slots: Vec<Option<Result<U, ItemError>>> = (0..n).map(|_| None).collect();
        for (i, v) in collected.into_inner().unwrap_or_else(PoisonError::into_inner) {
            slots[i] = Some(v);
        }
        slots.into_iter().map(|s| s.unwrap_or(Err(ItemError::Missing))).collect()
    };
    (results, retries.load(Ordering::Relaxed))
}

/// [`parallel_map_supervised`] under the ambient compute policy
/// ([`compute_retry_policy`]), discarding the retry counter — the
/// attempt-blind compatibility entry point.
pub fn parallel_map_isolated<T, U, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<U, ItemError>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_supervised(items, threads, &compute_retry_policy(), |item, _attempt| f(item)).0
}

/// Split `0..n` into `chunks` contiguous, balanced, non-empty ranges
/// (fewer than `chunks` when `n < chunks`; the first `n % chunks` ranges
/// are one longer). The partition depends only on `(n, chunks)` — callers
/// that merge chunk results in range order therefore get an output
/// independent of how many workers actually executed the chunks, which is
/// what the simulator fleet's shard-count-invariant digests rest on.
#[must_use]
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        out.push(lo..lo + len);
        lo += len;
    }
    out
}

/// [`parallel_map_with`] at the ambient [`thread_count`].
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, thread_count(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(&items, threads, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map_with(&[42u32], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn float_results_bitwise_stable() {
        let cs: Vec<f64> = (1..500).map(|i| f64::from(i) * 0.37).collect();
        let work = |&c: &f64| (c.sin() * c.sqrt()).exp() / (1.0 + c);
        let serial = parallel_map_with(&cs, 1, work);
        let par = parallel_map_with(&cs, 16, work);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn thread_count_env_override() {
        // Can't mutate the environment safely in parallel tests; just check
        // the ambient value is sane.
        let n = thread_count();
        assert!(n >= 1);
        assert!(n <= MAX_THREADS.max(default_thread_count()));
    }

    #[test]
    fn isolated_panic_degrades_only_that_item() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 4, 16] {
            let out = parallel_map_isolated(&items, threads, |&x| {
                assert!(x != 41, "boom at {x}");
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 41 {
                    match r {
                        Err(ItemError::Panic { message, retried }) => {
                            assert!(message.contains("boom at 41"), "message: {message}");
                            assert!(retried, "the bounded retry must have been attempted");
                        }
                        other => panic!("expected Panic at 41, got {other:?} (threads={threads})"),
                    }
                } else {
                    assert_eq!(r.as_ref().copied(), Ok(i as u64 * 3), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn isolated_retry_rescues_flaky_item() {
        use std::sync::atomic::AtomicU32;
        // Panics on its first call for item 5 only; the serial retry succeeds.
        let calls = AtomicU32::new(0);
        let out = parallel_map_isolated(&[1u32, 5, 9], 1, |&x| {
            if x == 5 && calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            x + 1
        });
        assert_eq!(out, vec![Ok(2), Ok(6), Ok(10)]);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "exactly one retry");
    }

    #[test]
    fn supervised_reports_retry_count_and_honors_policy() {
        use std::sync::atomic::AtomicU32;
        // Item 3 panics on attempts 0 and 1; a 3-attempt policy rescues it
        // and the retry tally reflects the two spent retries.
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            total_budget_ms: 0,
            seed: 0,
        };
        let (out, retries) = parallel_map_supervised(&[1u32, 3, 7], 1, &policy, |&x, attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert!(!(x == 3 && attempt < 2), "flaky at {x}");
            x * 2
        });
        assert_eq!(out, vec![Ok(2), Ok(6), Ok(14)]);
        assert_eq!(retries, 2, "two retries rescued item 3");
        assert_eq!(calls.load(Ordering::Relaxed), 5, "3 items + 2 extra attempts");
        // A single-attempt policy leaves the flaky item dead with retried=false.
        let strict = RetryPolicy { max_attempts: 1, ..policy };
        let (out, retries) = parallel_map_supervised(&[3u32], 1, &strict, |&x, attempt| {
            assert!(!(x == 3 && attempt < 2), "flaky at {x}");
            x
        });
        assert_eq!(retries, 0);
        match &out[0] {
            Err(ItemError::Panic { message, retried }) => {
                assert!(message.contains("flaky at 3"), "message: {message}");
                assert!(!retried, "single-attempt policy never retries");
            }
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn isolated_matches_plain_map_when_clean() {
        let items: Vec<f64> = (1..300).map(f64::from).collect();
        let work = |&c: &f64| (c.ln() * c.sqrt()).sin();
        let plain = parallel_map_with(&items, 8, work);
        let isolated = parallel_map_isolated(&items, 8, work);
        for (a, b) in plain.iter().zip(&isolated) {
            let b = b.as_ref().expect("no faults injected");
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (n, chunks) in [(10, 3), (7, 7), (3, 8), (1, 1), (1_000_000, 16), (5, 2)] {
            let ranges = chunk_ranges(n, chunks);
            assert_eq!(ranges.len(), chunks.min(n));
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
            let lens: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
            let (min, max) = (lens.iter().min().copied(), lens.iter().max().copied());
            assert!(max.zip(min).is_some_and(|(hi, lo)| hi - lo <= 1), "balanced: {lens:?}");
            assert!(lens.iter().all(|&l| l > 0), "non-empty");
        }
        assert!(chunk_ranges(0, 4).is_empty());
        assert!(chunk_ranges(4, 0).is_empty());
    }

    #[test]
    fn item_error_display_is_descriptive() {
        let e = ItemError::Panic { message: "boom".into(), retried: true };
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("retry"));
        assert!(ItemError::Missing.to_string().contains("never filled"));
    }

    #[test]
    fn invalid_thread_overrides_fall_back_to_default() {
        // Valid range.
        assert_eq!(parse_thread_count("1"), Some(1));
        assert_eq!(parse_thread_count(" 8 "), Some(8), "whitespace tolerated");
        assert_eq!(parse_thread_count("512"), Some(512), "cap itself is accepted");
        // Zero workers makes no sense: default.
        assert_eq!(parse_thread_count("0"), None);
        // Negative numbers don't parse as usize: default.
        assert_eq!(parse_thread_count("-1"), None);
        // Garbage: default.
        assert_eq!(parse_thread_count("a-lot"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("3.5"), None);
        // Huge values must not spawn unbounded threads: default.
        assert_eq!(parse_thread_count("513"), None);
        assert_eq!(parse_thread_count("1000000"), None);
        // Larger than u64: parse overflow, default — not a panic.
        assert_eq!(parse_thread_count("99999999999999999999999999"), None);
        assert!(default_thread_count() >= 1);
    }
}
