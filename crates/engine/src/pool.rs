//! Scoped-thread data parallelism with deterministic output ordering.
//!
//! The workspace cannot pull `rayon` from crates.io, so parallel sweeps run
//! on `std::thread::scope` workers pulling indices from a shared atomic
//! counter. Results are collected per worker as `(index, value)` pairs and
//! merged back into input order, so the output of [`parallel_map`] is
//! **position-for-position identical** to a serial `map` — only wall-clock
//! time differs. Per-point work in this workspace is microseconds to
//! milliseconds, so the one-atomic-op-per-item scheduling cost is noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "BEVRA_THREADS";

/// Upper bound on an explicitly requested worker count. Values above this
/// fall back to the default rather than spawning an unbounded number of
/// scoped threads (each sweep re-spawns its workers).
pub const MAX_THREADS: usize = 512;

/// Parse a `BEVRA_THREADS`-style override. `None` (fall back to the
/// default worker count) unless the string is an integer in
/// `1..=`[`MAX_THREADS`] — so `"0"`, negatives, garbage, and absurdly
/// large values all degrade to the default instead of panicking or
/// oversubscribing the host. The validation policy is shared with the
/// workspace's other count-valued overrides (`BEVRA_CHECK_CASES`) via
/// [`bevra_num::env::parse_bounded_count`].
#[must_use]
pub fn parse_thread_count(raw: &str) -> Option<usize> {
    bevra_num::env::parse_bounded_count(raw, MAX_THREADS)
}

/// The fallback worker count: [`std::thread::available_parallelism`],
/// or 1 if unavailable.
#[must_use]
pub fn default_thread_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Number of worker threads a parallel sweep will use: the value of
/// [`THREADS_ENV`] (`BEVRA_THREADS`) if it parses per
/// [`parse_thread_count`], otherwise [`default_thread_count`].
#[must_use]
pub fn thread_count() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| parse_thread_count(&v))
        .unwrap_or_else(default_thread_count)
}

/// Apply `f` to every item, using up to `threads` workers, returning the
/// results in input order.
///
/// With `threads <= 1` (or fewer than two items) this degenerates to a
/// plain serial `map` on the calling thread — the two paths produce
/// bitwise-identical results for any pure `f`.
pub fn parallel_map_with<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected.lock().expect("worker panicked holding lock").extend(local);
            });
        }
    });
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, v) in collected.into_inner().expect("worker panicked holding lock") {
        slots[i] = Some(v);
    }
    slots.into_iter().map(|s| s.expect("every index scheduled exactly once")).collect()
}

/// [`parallel_map_with`] at the ambient [`thread_count`].
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, thread_count(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial_order() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = parallel_map_with(&items, threads, |&x| x * x + 1);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(&empty, 8, |&x| x).is_empty());
        assert_eq!(parallel_map_with(&[42u32], 8, |&x| x + 1), vec![43]);
    }

    #[test]
    fn float_results_bitwise_stable() {
        let cs: Vec<f64> = (1..500).map(|i| f64::from(i) * 0.37).collect();
        let work = |&c: &f64| (c.sin() * c.sqrt()).exp() / (1.0 + c);
        let serial = parallel_map_with(&cs, 1, work);
        let par = parallel_map_with(&cs, 16, work);
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn thread_count_env_override() {
        // Can't mutate the environment safely in parallel tests; just check
        // the ambient value is sane.
        let n = thread_count();
        assert!(n >= 1);
        assert!(n <= MAX_THREADS.max(default_thread_count()));
    }

    #[test]
    fn invalid_thread_overrides_fall_back_to_default() {
        // Valid range.
        assert_eq!(parse_thread_count("1"), Some(1));
        assert_eq!(parse_thread_count(" 8 "), Some(8), "whitespace tolerated");
        assert_eq!(parse_thread_count("512"), Some(512), "cap itself is accepted");
        // Zero workers makes no sense: default.
        assert_eq!(parse_thread_count("0"), None);
        // Negative numbers don't parse as usize: default.
        assert_eq!(parse_thread_count("-1"), None);
        // Garbage: default.
        assert_eq!(parse_thread_count("a-lot"), None);
        assert_eq!(parse_thread_count(""), None);
        assert_eq!(parse_thread_count("3.5"), None);
        // Huge values must not spawn unbounded threads: default.
        assert_eq!(parse_thread_count("513"), None);
        assert_eq!(parse_thread_count("1000000"), None);
        // Larger than u64: parse overflow, default — not a panic.
        assert_eq!(parse_thread_count("99999999999999999999999999"), None);
        assert!(default_thread_count() >= 1);
    }
}
