//! Persistent cross-run value-table cache.
//!
//! Regenerating a figure recomputes the same `k_max`/`B`/`R` grid tables
//! run after run. This module persists those tables to disk, keyed by a
//! **content hash** of everything the values depend on — the load table's
//! digest, the utility (name plus probed values and knots), the mean load,
//! any admission-cap override, the result-affecting fields of the active
//! backend's [`KernelCapability`], and the exact grid bit patterns — so a
//! warm second run skips every table recomputation while any change to
//! the model (or a switch to a backend in a different parity class)
//! re-keys and recomputes from scratch.
//!
//! Design rules:
//!
//! * **Never wrong, never fatal.** Entries carry the full capacity list
//!   and an FNV checksum; a missing, truncated, corrupt, or mismatched
//!   file is a cache miss (recompute), never an error and never a wrong
//!   number. Store failures are logged to metrics and swallowed.
//! * **Atomic writes.** Entries are written via
//!   [`bevra_faults::atomic_write`] (write-temp-then-rename, the PR 4
//!   path), so a crashed or fault-injected writer can't leave a torn
//!   entry behind. Loads and stores are fault-injection sites
//!   (`io/cache/load`, `io/cache/store`) exercised by the chaos suite.
//! * **No poisoned entries.** When a fault plan with value-corrupting
//!   rules (`nan`/`inf`/`numerr`) is active, the cache disables itself
//!   (loads miss, stores are skipped): injected corruption must stay
//!   inside one run and never leak into — or out of — a cross-run store.
//!
//! Gating: [`PersistentCache::from_env`] reads `BEVRA_CACHE`
//! (`off`/unset, `rw`, `ro`) and `BEVRA_CACHE_DIR` (default
//! `<repo>/results/cache`). Hit/miss/store/error counters are exported
//! through `bevra-obs` metrics (`engine/pcache/*`) and surfaced by
//! `SweepEngine::cache_stats` under the name `"persistent"`.

use crate::cache::CacheStats;
use bevra_core::kernel::{KernelCapability, ParityClass};
use bevra_faults::FaultKind;
use bevra_obs::metrics;
use bevra_utility::Utility;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag; bump when the entry layout changes (old entries then miss).
const FORMAT: &str = "bevra-cache v1";

/// Fixed probe bandwidths hashed into the utility fingerprint. Chosen to
/// straddle every regime the families distinguish (near-zero curvature,
/// thresholds around 1, saturation): two utilities that agree in name and
/// on all probes to the bit are treated as identical.
const PROBES: [f64; 16] = [
    0.0, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 13.0, 144.0,
];

/// One persisted grid row: `(k_max, B, R)` for a capacity.
pub type GridRow = (Option<u64>, f64, f64);

/// Read/write policy of a [`PersistentCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Load existing entries and store fresh ones.
    ReadWrite,
    /// Load existing entries; never write (CI, read-only checkouts).
    ReadOnly,
}

/// An on-disk value-table cache (see module docs).
#[derive(Debug)]
pub struct PersistentCache {
    dir: PathBuf,
    mode: CacheMode,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    io_errors: AtomicU64,
}

/// FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
    fn eat_f64(&mut self, v: f64) {
        self.eat_u64(v.to_bits());
    }
}

/// Content-hash key for one (model, kernel capability, grid) combination.
///
/// Hashes the load digest, mean load, utility fingerprint (name, probed
/// values, knots), admission-cap override, the result-affecting slice of
/// the backend's [`KernelCapability`], and every grid capacity's bit
/// pattern.
///
/// Of the capability record only the fields that can change result *bits*
/// enter the key: the `cache_tag`, the parity class (including a
/// tolerance's bit pattern), and the `portable` flag. SIMD level and
/// fault-site coverage are deliberately excluded — they describe *how* a
/// backend computes, not *what* it computes, so two backends differing
/// only there may legitimately share entries (the built-in `scalar` and
/// `batch` backends do exactly this via a shared `cache_tag`).
#[must_use]
pub fn grid_key<U: Utility>(
    model: &bevra_core::DiscreteModel<U>,
    capability: &KernelCapability,
    capacities: &[f64],
) -> u64 {
    let mut h = Fnv::new();
    h.eat(FORMAT.as_bytes());
    h.eat_u64(model.load().digest());
    h.eat_f64(model.mean_load());
    let u = model.utility();
    h.eat(u.name().as_bytes());
    for &b in &PROBES {
        h.eat_f64(u.value(b));
    }
    for k in u.knots() {
        h.eat_f64(k);
    }
    match model.admission_cap() {
        Some(cap) => {
            h.eat_u64(1);
            h.eat_u64(cap);
        }
        None => h.eat_u64(0),
    }
    h.eat(&[capability.cache_tag]);
    match capability.parity {
        ParityClass::Bitwise => h.eat_u64(0),
        ParityClass::Tolerance(t) => {
            h.eat_u64(1);
            h.eat_f64(t);
        }
    }
    h.eat(&[u8::from(capability.portable)]);
    h.eat_u64(capacities.len() as u64);
    for &c in capacities {
        h.eat_f64(c);
    }
    h.0
}

/// True when the active fault plan can corrupt computed values — the
/// persistent cache must then neither serve nor record anything.
fn plan_corrupts_values() -> bool {
    bevra_faults::current_plan().is_some_and(|plan| {
        plan.rules
            .iter()
            .any(|r| matches!(r.kind, FaultKind::Nan | FaultKind::Inf | FaultKind::NumErr))
    })
}

impl PersistentCache {
    /// Cache rooted at `dir` with an explicit mode. The directory is
    /// created lazily on the first store.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            dir: dir.into(),
            mode,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        }
    }

    /// Cache configured from the environment: `BEVRA_CACHE` = `rw` or
    /// `ro` enables it (anything else, including unset and `off`,
    /// disables → `None`); `BEVRA_CACHE_DIR` overrides the default
    /// `<repo>/results/cache` location.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let mode = match std::env::var("BEVRA_CACHE").ok().as_deref() {
            Some("rw") => CacheMode::ReadWrite,
            Some("ro") => CacheMode::ReadOnly,
            _ => return None,
        };
        let dir = std::env::var_os("BEVRA_CACHE_DIR").map_or_else(default_dir, PathBuf::from);
        Some(Self::new(dir, mode))
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lookup counters, in the same shape as the in-memory memo tables
    /// (`hits`/`misses`; store and I/O-error counts are exported as
    /// metrics only).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Load/store attempts absorbed as I/O failures (injected or real).
    /// Every one degraded to a recompute or a skipped store — never a
    /// wrong number. The chaos suite asserts on this counter.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Successful entry stores.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.bvc"))
    }

    /// Load the rows stored under `key`, verifying the entry matches the
    /// requested grid exactly. Any problem — injected I/O fault, missing
    /// or unreadable file, format/key/grid/checksum mismatch — is a miss.
    pub fn load(&self, key: u64, capacities: &[f64]) -> Option<Vec<GridRow>> {
        if plan_corrupts_values() {
            // Don't count: the cache is administratively bypassed.
            return None;
        }
        let loaded = self.load_inner(key, capacities);
        if loaded.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            metrics::counter("engine/pcache/hit").inc();
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            metrics::counter("engine/pcache/miss").inc();
        }
        let s = self.stats();
        metrics::gauge("engine/pcache/hit_rate").set(s.hit_rate());
        loaded
    }

    fn load_inner(&self, key: u64, capacities: &[f64]) -> Option<Vec<GridRow>> {
        // Fault site: a `io-transient:io/cache/load` or permanent rule
        // makes this lookup fail like an unreadable file. Reads don't
        // retry — recompute is the degradation path.
        if bevra_faults::io_fault("io/cache/load", key).is_some() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            metrics::counter("engine/pcache/io_error").inc();
            return None;
        }
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        parse_entry(&text, key, capacities)
    }

    /// Persist `rows` under `key` (no-op in [`CacheMode::ReadOnly`] or
    /// under a value-corrupting fault plan). Failures are swallowed after
    /// counting: a cache that can't write degrades to recompute-always.
    pub fn store(&self, key: u64, capacities: &[f64], rows: &[GridRow]) {
        if self.mode == CacheMode::ReadOnly || plan_corrupts_values() {
            return;
        }
        debug_assert_eq!(capacities.len(), rows.len());
        let bytes = serialize_entry(key, capacities, rows);
        // `atomic_write` prefixes the site with `io/`, giving the chaos
        // plans the `io/cache/store` site; it retries transient faults
        // with backoff and leaves only temp debris on permanent ones.
        match bevra_faults::atomic_write("cache/store", &self.entry_path(key), &bytes) {
            Ok(_) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                metrics::counter("engine/pcache/store").inc();
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                metrics::counter("engine/pcache/io_error").inc();
            }
        }
    }
}

/// Append one line to a shared JSONL file (the run ledger).
///
/// The file is opened in append mode (`O_APPEND` on POSIX) and the whole
/// line — with a trailing newline added if missing — lands in a **single**
/// `write_all`, so concurrent appenders from different threads or
/// processes interleave at line granularity: each line is contiguous in
/// the file short of a mid-write crash, which a per-line checksum (the
/// ledger's `crc` field) lets readers skip as a torn line.
///
/// `site` is a fault-injection site consulted per attempt as `io/<site>`,
/// like [`bevra_faults::atomic_write`]: transient faults are retried
/// under the workspace I/O retry policy
/// ([`bevra_resilience::RetryPolicy::io`], overridable with
/// `BEVRA_RETRY`), waiting on the ambient fault-aware clock
/// (virtual-clock, sleep-free, whenever a fault plan is active);
/// permanent ones surface as errors.
///
/// # Errors
///
/// The last I/O error once retries are exhausted, or the first
/// non-transient error opening, creating the parent directory for, or
/// writing the file.
pub fn append_line(site: &str, path: &Path, line: &str) -> std::io::Result<()> {
    use bevra_resilience::RetryPolicy;
    use std::io::Write as _;

    let mut buf = line.to_string();
    if !buf.ends_with('\n') {
        buf.push('\n');
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let full_site = format!("io/{site}");
    let policy = RetryPolicy::from_env("bevra-engine", RetryPolicy::io());
    let mut clock = bevra_resilience::ambient_clock();
    let attempt_once = |attempt: u32| -> Result<(), std::io::Error> {
        match bevra_faults::io_fault(&full_site, u64::from(attempt)) {
            Some(bevra_faults::IoFault::Transient) => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("bevra-faults: injected transient I/O error at {full_site}"),
            )),
            Some(bevra_faults::IoFault::Permanent) => Err(std::io::Error::other(format!(
                "bevra-faults: injected permanent I/O error at {full_site}"
            ))),
            None => std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(buf.as_bytes())),
        }
    };
    let schedule = policy.schedule();
    let mut attempt: u32 = 0;
    loop {
        match attempt_once(attempt) {
            Ok(()) => return Ok(()),
            Err(e)
                if (attempt as usize) < schedule.len()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted | std::io::ErrorKind::WouldBlock
                    ) =>
            {
                clock.sleep_ms(schedule[attempt as usize]);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Default cache directory: `results/cache` under the workspace root (the
/// same `results/` tree the report emitters use when run from the root).
fn default_dir() -> PathBuf {
    // crates/engine -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("results"), Path::to_path_buf)
        .join("results")
        .join("cache")
}

fn serialize_entry(key: u64, capacities: &[f64], rows: &[GridRow]) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut body = String::new();
    let _ = writeln!(body, "{FORMAT}");
    let _ = writeln!(body, "key {key:016x}");
    let _ = writeln!(body, "n {}", rows.len());
    for (&c, &(kmax, b, r)) in capacities.iter().zip(rows) {
        let km = kmax.map_or_else(|| "-".to_string(), |k| k.to_string());
        let _ = writeln!(body, "{:016x} {km} {:016x} {:016x}", c.to_bits(), b.to_bits(), r.to_bits());
    }
    let mut h = Fnv::new();
    h.eat(body.as_bytes());
    let _ = writeln!(body, "crc {:016x}", h.0);
    body.into_bytes()
}

/// Parse and fully validate one entry; `None` on any mismatch.
fn parse_entry(text: &str, key: u64, capacities: &[f64]) -> Option<Vec<GridRow>> {
    // Checksum first: everything before the final `crc` line must hash to
    // the recorded value, so torn or bit-flipped files never parse.
    let crc_at = text.rfind("crc ")?;
    let (body, crc_line) = text.split_at(crc_at);
    let recorded = u64::from_str_radix(crc_line.strip_prefix("crc ")?.trim(), 16).ok()?;
    let mut h = Fnv::new();
    h.eat(body.as_bytes());
    if h.0 != recorded {
        return None;
    }

    let mut lines = body.lines();
    if lines.next()? != FORMAT {
        return None;
    }
    let stored_key = u64::from_str_radix(lines.next()?.strip_prefix("key ")?, 16).ok()?;
    if stored_key != key {
        return None;
    }
    let n: usize = lines.next()?.strip_prefix("n ")?.parse().ok()?;
    if n != capacities.len() {
        return None;
    }
    let mut rows = Vec::with_capacity(n);
    for &c in capacities {
        let line = lines.next()?;
        let mut fields = line.split_ascii_whitespace();
        let c_bits = u64::from_str_radix(fields.next()?, 16).ok()?;
        if c_bits != c.to_bits() {
            return None;
        }
        let kmax = match fields.next()? {
            "-" => None,
            k => Some(k.parse().ok()?),
        };
        let b = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        let r = f64::from_bits(u64::from_str_radix(fields.next()?, 16).ok()?);
        if fields.next().is_some() {
            return None;
        }
        rows.push((kmax, b, r));
    }
    if lines.next().is_some() {
        return None;
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_core::DiscreteModel;
    use bevra_load::{Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, Rigid};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bevra-pcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn rows() -> (Vec<f64>, Vec<GridRow>) {
        let caps = vec![1.0, 2.5, 40.0];
        let rows = vec![(Some(1), 0.125, 0.25), (None, 0.5, 0.5), (Some(40), 0.75, 0.875)];
        (caps, rows)
    }

    #[test]
    fn round_trip_is_bitwise() {
        let pc = PersistentCache::new(tmp_dir("rt"), CacheMode::ReadWrite);
        let (caps, rows) = rows();
        let key = 0xDEAD_BEEF_u64;
        assert!(pc.load(key, &caps).is_none(), "cold lookup misses");
        pc.store(key, &caps, &rows);
        let got = pc.load(key, &caps).expect("warm lookup hits");
        for ((gk, gb, gr), (wk, wb, wr)) in got.iter().zip(&rows) {
            assert_eq!(gk, wk);
            assert_eq!(gb.to_bits(), wb.to_bits());
            assert_eq!(gr.to_bits(), wr.to_bits());
        }
        let s = pc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn grid_mismatch_and_corruption_miss() {
        let pc = PersistentCache::new(tmp_dir("bad"), CacheMode::ReadWrite);
        let (caps, rows) = rows();
        let key = 7;
        pc.store(key, &caps, &rows);
        // Different grid under the same key: miss, not wrong rows.
        assert!(pc.load(key, &[1.0, 2.5, 41.0]).is_none());
        // Flip one byte: the checksum rejects the entry.
        let path = pc.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(pc.load(key, &caps).is_none());
        // Truncation too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(pc.load(key, &caps).is_none());
    }

    #[test]
    fn read_only_never_writes() {
        let dir = tmp_dir("ro");
        let pc = PersistentCache::new(dir.clone(), CacheMode::ReadOnly);
        let (caps, rows) = rows();
        pc.store(3, &caps, &rows);
        assert!(!dir.exists(), "read-only mode must not create the cache dir");
        assert!(pc.load(3, &caps).is_none());
    }

    #[test]
    fn key_separates_models_and_grids() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 10);
        let m1 = DiscreteModel::new(load.clone(), Rigid::unit());
        let m2 = DiscreteModel::new(load.clone(), Rigid::new(2.0));
        let m3 = DiscreteModel::new(load.clone(), AdaptiveExp::paper());
        let caps = [1.0, 2.0, 3.0];
        let batch = bevra_core::kernel::batch().capability();
        let fast = bevra_core::kernel::fast().capability();
        let k1 = grid_key(&m1, &batch, &caps);
        assert_eq!(k1, grid_key(&m1, &batch, &caps), "key is deterministic");
        assert_ne!(k1, grid_key(&m2, &batch, &caps), "utility params re-key");
        assert_ne!(k1, grid_key(&m3, &batch, &caps), "utility family re-keys");
        assert_ne!(k1, grid_key(&m1, &fast, &caps), "parity class re-keys");
        assert_ne!(k1, grid_key(&m1, &batch, &caps[..2]), "grid re-keys");
        let capped = DiscreteModel::new(load, Rigid::unit()).with_admission_cap(5);
        assert_ne!(k1, grid_key(&capped, &batch, &caps), "admission cap re-keys");
    }

    #[test]
    fn key_shares_entries_within_a_bitwise_equivalence_class() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 10);
        let m = DiscreteModel::new(load, Rigid::unit());
        let caps = [1.0, 2.0, 3.0];
        // scalar and batch are bitwise-interchangeable by construction and
        // share a cache_tag, so their entries must cross-serve.
        let scalar = bevra_core::kernel::scalar().capability();
        let batch = bevra_core::kernel::batch().capability();
        assert_eq!(grid_key(&m, &scalar, &caps), grid_key(&m, &batch, &caps));
        // The portable backend is a distinct class: never shared.
        let portable = bevra_core::kernel::portable().capability();
        assert_ne!(grid_key(&m, &batch, &caps), grid_key(&m, &portable, &caps));
        assert_ne!(grid_key(&m, &fast_cap(), &caps), grid_key(&m, &portable, &caps));
    }

    fn fast_cap() -> KernelCapability {
        bevra_core::kernel::fast().capability()
    }

    #[test]
    fn append_line_accumulates_newline_terminated_lines() {
        let dir = tmp_dir("append");
        let path = dir.join("ledger.jsonl");
        append_line("test/ledger", &path, "{\"a\":1}").unwrap();
        append_line("test/ledger", &path, "{\"b\":2}\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn append_line_rides_out_transient_faults() {
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let dir = tmp_dir("append-tr");
        let path = dir.join("ledger.jsonl");
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoTransient, "io/test/led-tr").with_n(2));
        {
            let _guard = install(plan);
            append_line("test/led-tr", &path, "{\"ok\":true}").unwrap();
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
    }

    #[test]
    fn append_line_permanent_fault_errors_without_writing() {
        use bevra_faults::{install, FaultKind, FaultPlan, FaultRule};
        let dir = tmp_dir("append-perm");
        let path = dir.join("ledger.jsonl");
        let plan = FaultPlan::seeded(0)
            .rule(FaultRule::always(FaultKind::IoPermanent, "io/test/led-perm"));
        {
            let _guard = install(plan);
            let err = append_line("test/led-perm", &path, "{\"lost\":true}").unwrap_err();
            assert!(err.to_string().contains("injected permanent"));
        }
        assert!(!path.exists(), "failed append must not create the file");
    }
}
