//! Thread-safe memoization for expensive sweep sub-results.
//!
//! A [`ShardedCache`] is a dashmap-style fixed-shard hash map keyed by the
//! raw bit pattern of an `f64` capacity (or any other `u64` key). Sharding
//! keeps lock contention negligible at sweep concurrency; values are
//! computed **outside** the shard lock so a slow miss never serializes the
//! other workers.
//!
//! Correctness under races: every cache in this crate memoizes a *pure*
//! function of its key, so two threads racing on the same missing key
//! compute bit-identical values and either insertion order yields the same
//! cache contents. This is what makes cached parallel sweeps
//! bitwise-identical to serial ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

const SHARDS: usize = 16;

/// Hit/miss counters of one cache, for the sweep instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 for an untouched cache).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-shard concurrent memo table from `u64` keys to clonable values.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: [Mutex<HashMap<u64, V>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedCache<V> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        // Fibonacci hashing spreads nearby bit patterns (consecutive grid
        // capacities differ in few mantissa bits) across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize % SHARDS]
    }

    /// Lock a shard, recovering from poisoning. Sound because shards only
    /// ever hold complete entries: values are computed outside the lock
    /// and inserted whole, so a panicked (or fault-injected) worker can't
    /// leave a half-written map behind — isolated sweeps keep using the
    /// caches after one point panics.
    fn lock_shard(s: &Mutex<HashMap<u64, V>>) -> MutexGuard<'_, HashMap<u64, V>> {
        s.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock_shard(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            Self::lock_shard(s).clear();
        }
    }
}

impl<V: Clone> ShardedCache<V> {
    /// The value for `key`, computing it with `compute` on a miss.
    ///
    /// `compute` runs outside the shard lock; if two threads race on the
    /// same missing key the first insertion wins and both observe it
    /// (identical by purity of `compute`).
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = Self::lock_shard(self.shard(key)).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = compute();
        Self::lock_shard(self.shard(key)).entry(key).or_insert(fresh).clone()
    }

    /// The value for `key` if present, **without** touching the hit/miss
    /// counters. Used by the grid-priming path to decide what still needs
    /// computing; the counters keep describing consumer lookups only.
    pub fn peek(&self, key: u64) -> Option<V> {
        Self::lock_shard(self.shard(key)).get(&key).cloned()
    }

    /// Insert a precomputed value, counting it as one miss (the value was
    /// computed fresh rather than served from the cache). An existing
    /// entry is kept — by purity of the memoized functions a racing
    /// insert holds the identical value.
    pub fn insert(&self, key: u64, value: V) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        Self::lock_shard(self.shard(key)).entry(key).or_insert(value);
    }
}

/// The canonical cache key for a capacity: its IEEE-754 bit pattern.
/// Distinct bit patterns are distinct keys (so `-0.0` and `0.0` differ,
/// which is irrelevant for the positive capacities swept here).
#[must_use]
pub fn f64_key(x: f64) -> u64 {
    x.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn caches_and_counts() {
        let cache: ShardedCache<f64> = ShardedCache::new();
        let computes = AtomicUsize::new(0);
        let f = |c: f64| {
            cache.get_or_insert_with(f64_key(c), || {
                computes.fetch_add(1, Ordering::Relaxed);
                c * 2.0
            })
        };
        assert_eq!(f(1.5), 3.0);
        assert_eq!(f(1.5), 3.0);
        assert_eq!(f(2.5), 5.0);
        assert_eq!(computes.load(Ordering::Relaxed), 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_fill_converges() {
        let cache: ShardedCache<u64> = ShardedCache::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..1000u64 {
                        let v = cache.get_or_insert_with(k, || k * k);
                        assert_eq!(v, k * k);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1000);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8000);
    }

    #[test]
    fn poisoned_shard_recovers_with_contents() {
        let cache: ShardedCache<u64> = ShardedCache::new();
        cache.get_or_insert_with(3, || 30);
        // Poison the shard holding key 3 from a panicking thread.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.shard(3).lock().expect("first lock");
                panic!("poison shard");
            })
            .join()
        });
        assert!(cache.shard(3).lock().is_err(), "shard is poisoned");
        // Reads and writes keep working; the pre-poison entry survives.
        assert_eq!(cache.get_or_insert_with(3, || 999), 30);
        assert_eq!(cache.get_or_insert_with(4, || 40), 40);
        assert!(cache.len() >= 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache: ShardedCache<u64> = ShardedCache::new();
        cache.get_or_insert_with(7, || 7);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
