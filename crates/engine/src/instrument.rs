//! Sweep instrumentation, now a thin shim over [`bevra_obs`].
//!
//! The span registry moved to `bevra-obs` in PR 2: spans are hierarchical
//! and thread-aware there (per-thread buffers instead of this module's
//! original flat global `Mutex<Vec>`), and a poisoned buffer degrades to
//! dropping the record instead of panicking inside `Drop`. The public
//! surface of this module — [`span()`], [`Span`], [`StageRecord`],
//! [`drain_stages`] — is unchanged; existing callers compile as before.
//!
//! What remains engine-specific: the cache-counter registry
//! ([`record_caches`]/[`drain_caches`], tied to [`CacheStats`]) and the
//! [`SweepReport`] aggregation that figure binaries serialize to JSON and
//! CSV next to their artifacts under `results/`.

pub use bevra_obs::{drain_stages, span, Span, StageRecord};

use crate::cache::CacheStats;
use bevra_obs::{enabled, metrics, ObsLevel};
use std::sync::{Mutex, PoisonError};

static CACHES: Mutex<Vec<(String, CacheStats)>> = Mutex::new(Vec::new());

/// Publish one engine's cache counters under `prefix` (e.g. the sweep's
/// utility family) so the next [`drain_caches`] picks them up. At
/// [`ObsLevel::Summary`] and above the counters are also mirrored into the
/// metrics registry (`cache/<prefix>/<name>/{hits,misses,hit_rate}`).
///
/// If the registry mutex was poisoned by a panicking thread the records
/// are dropped rather than propagating the panic.
pub fn record_caches(prefix: &str, stats: Vec<(String, CacheStats)>) {
    if enabled(ObsLevel::Summary) {
        for (name, st) in &stats {
            metrics::counter(&format!("cache/{prefix}/{name}/hits")).add(st.hits);
            metrics::counter(&format!("cache/{prefix}/{name}/misses")).add(st.misses);
            metrics::gauge(&format!("cache/{prefix}/{name}/hit_rate")).set(st.hit_rate());
        }
    }
    let Ok(mut registry) = CACHES.lock() else {
        return; // poisoned: drop the records, never panic
    };
    for (name, st) in stats {
        registry.push((format!("{prefix}/{name}"), st));
    }
}

/// Remove and return every cache counter recorded since the last drain.
/// A poisoned registry is recovered (its surviving contents returned)
/// rather than panicking.
#[must_use]
pub fn drain_caches() -> Vec<(String, CacheStats)> {
    std::mem::take(&mut *CACHES.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Aggregated instrumentation of one figure/sweep run: its stages plus the
/// cache counters of every engine involved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Completed stages in execution order.
    pub stages: Vec<StageRecord>,
    /// Named cache counters, e.g. `("best_effort", stats)`.
    pub caches: Vec<(String, CacheStats)>,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

impl SweepReport {
    /// Build a report from drained stages and cache counters.
    #[must_use]
    pub fn new(
        stages: Vec<StageRecord>,
        caches: Vec<(String, CacheStats)>,
        threads: usize,
    ) -> Self {
        Self { stages, caches, threads }
    }

    /// Total wall-clock seconds across stages.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Total evaluated points across stages.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.stages.iter().map(|s| s.points).sum()
    }

    /// Aggregate throughput in points per second (like
    /// [`StageRecord::points_per_sec`]: infinite for a zero-duration
    /// report that did evaluate points, 0.0 for an empty one).
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.total_seconds();
        if secs > 0.0 {
            self.total_points() as f64 / secs
        } else if self.total_points() > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// JSON serialization (hand-rolled: no serde offline). Non-finite
    /// rates (a zero-duration stage) serialize as `null` — JSON has no
    /// `Infinity`.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn jnum(x: f64) -> String {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_seconds\": {},\n", jnum(self.total_seconds())));
        out.push_str(&format!("  \"total_points\": {},\n", self.total_points()));
        out.push_str(&format!("  \"points_per_sec\": {},\n", jnum(self.points_per_sec())));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {}, \"points\": {}, \"points_per_sec\": {}}}{}\n",
                esc(&s.name),
                jnum(s.seconds),
                s.points,
                jnum(s.points_per_sec()),
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"caches\": [\n");
        for (i, (name, st)) in self.caches.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}{}\n",
                esc(name),
                st.hits,
                st.misses,
                jnum(st.hit_rate()),
                if i + 1 < self.caches.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV serialization: one `stage` row per stage, one `cache` row per
    /// cache, with a shared header.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,seconds,points,points_per_sec,hits,misses,hit_rate\n");
        for s in &self.stages {
            out.push_str(&format!(
                "stage,{},{:?},{},{:?},,,\n",
                s.name,
                s.seconds,
                s.points,
                s.points_per_sec()
            ));
        }
        for (name, st) in &self.caches {
            out.push_str(&format!(
                "cache,{},,,,{},{},{:?}\n",
                name,
                st.hits,
                st.misses,
                st.hit_rate()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        {
            let mut s = span("engine-shim/stage");
            s.add_points(42);
        }
        let stages = drain_stages();
        let rec =
            stages.iter().find(|r| r.name == "engine-shim/stage").expect("span recorded");
        assert_eq!(rec.points, 42);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn report_serializes() {
        let report = SweepReport::new(
            vec![StageRecord { name: "sweep/utility".into(), seconds: 0.5, points: 100 }],
            vec![("best_effort".into(), CacheStats { hits: 10, misses: 5 })],
            8,
        );
        assert!((report.points_per_sec() - 200.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"sweep/utility\""));
        assert!(json.contains("\"hits\": 10"));
        let csv = report.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("stage,sweep/utility"));
        assert!(csv.contains("cache,best_effort"));
    }

    #[test]
    fn zero_duration_stage_rates() {
        let busy = StageRecord { name: "s".into(), seconds: 0.0, points: 10 };
        assert_eq!(busy.points_per_sec(), f64::INFINITY);
        let idle = StageRecord { name: "s".into(), seconds: 0.0, points: 0 };
        assert_eq!(idle.points_per_sec(), 0.0);
        // Non-finite rates must serialize as null, keeping the JSON valid.
        let report = SweepReport::new(vec![busy], vec![], 1);
        let json = report.to_json();
        assert!(json.contains("\"points_per_sec\": null"), "json: {json}");
        assert!(!json.contains("inf"), "no bare inf tokens in JSON");
    }

    #[test]
    fn poisoned_cache_registry_degrades_gracefully() {
        // Seed a record, then poison the registry from a panicking thread.
        record_caches("poison-seed", vec![("c".into(), CacheStats { hits: 1, misses: 0 })]);
        let _ = std::thread::spawn(|| {
            let _guard = CACHES.lock().expect("first lock");
            panic!("poison the cache registry");
        })
        .join();
        assert!(CACHES.lock().is_err(), "registry is poisoned");
        // Recording on a poisoned registry drops the record, no panic.
        record_caches("poison-lost", vec![("c".into(), CacheStats::default())]);
        // Draining recovers the surviving contents, no panic.
        let drained = drain_caches();
        assert!(drained.iter().any(|(n, _)| n == "poison-seed/c"));
        assert!(!drained.iter().any(|(n, _)| n == "poison-lost/c"));
    }
}
