//! Sweep instrumentation, now a thin shim over [`bevra_obs`].
//!
//! The span registry moved to `bevra-obs` in PR 2: spans are hierarchical
//! and thread-aware there (per-thread buffers instead of this module's
//! original flat global `Mutex<Vec>`), and a poisoned buffer degrades to
//! dropping the record instead of panicking inside `Drop`. The public
//! surface of this module — [`span()`], [`Span`], [`StageRecord`],
//! [`drain_stages`] — is unchanged; existing callers compile as before.
//!
//! What remains engine-specific: the cache-counter registry
//! ([`record_caches`]/[`drain_caches`], tied to [`CacheStats`]), the
//! degradation ledger ([`SweepHealth`] with [`record_health`]/
//! [`drain_health`]) and the [`SweepReport`] aggregation that figure
//! binaries serialize to JSON and CSV next to their artifacts under
//! `results/`.

pub use bevra_obs::{drain_stages, span, Span, StageRecord};

use crate::cache::CacheStats;
use bevra_obs::{enabled, metrics, recorder, ObsLevel};
use std::sync::{Mutex, PoisonError};

static CACHES: Mutex<Vec<(String, CacheStats)>> = Mutex::new(Vec::new());
static HEALTH: Mutex<Vec<(String, SweepHealth)>> = Mutex::new(Vec::new());

/// Degradation ledger of one sweep stage: how many points evaluated
/// cleanly, produced non-finite values, or failed outright, plus the
/// first failure's cause. Derived serially from the input-ordered merged
/// outcomes, so it is deterministic under any worker-thread count.
///
/// The invariant the chaos suite asserts: nothing degrades silently.
/// Every non-finite value an engine sweep produces (whether from a real
/// solver failure or an injected fault) is counted here and surfaces in
/// the emitted `-perf.json`/`-perf.csv` artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepHealth {
    /// Points that evaluated to fully finite values.
    pub ok: u64,
    /// Points that produced a value, but a degraded one (at least one
    /// non-finite field, or a solver error surfaced as NaN).
    pub degraded: u64,
    /// Points that produced no value at all (isolated worker panic or a
    /// lost result slot).
    pub failed: u64,
    /// Total non-finite fields across all degraded points (one point can
    /// contribute several).
    pub non_finite: u64,
    /// Retry attempts spent rescuing transient per-point failures
    /// (isolated worker retries under the active `RetryPolicy`). A
    /// nonzero count with zero failures means the retries worked.
    pub retries: u64,
    /// Circuit-breaker trips recorded while producing this ledger (lane
    /// supervision or guarded evaluation; engine sweeps keep per-item
    /// retry decisions breaker-free for determinism).
    pub breaker_trips: u64,
    /// Work units (fleet lanes) restarted by a supervisor.
    pub restarts: u64,
    /// Human-readable cause of the first degradation or failure, in
    /// input order.
    pub first_failure: Option<String>,
    /// Capability name of the kernel backend that evaluated the sweep
    /// (`None` for ledgers not produced by an engine sweep, e.g. hand
    /// built or gamma-only ledgers).
    pub kernel: Option<String>,
    /// Resolved SIMD dispatch tier of the backend's hot loop
    /// ([`bevra_core::kernel::SimdLevel::as_str`]): `"none"`, `"autovec"`,
    /// `"avx2"`, `"avx512"`, or `"neon"`. `None` when no kernel stamp
    /// applies. Informational — dispatch never changes result bits — but
    /// recorded so cross-machine ledger comparisons can tell a genuine
    /// digest regression from a tier difference.
    pub simd: Option<String>,
}

impl SweepHealth {
    /// Ledger with all counters at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether every point evaluated cleanly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.degraded == 0 && self.failed == 0 && self.non_finite == 0
    }

    /// Total points accounted for.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ok + self.degraded + self.failed
    }

    /// Count one clean point.
    pub fn note_ok(&mut self) {
        self.ok += 1;
    }

    /// Count one degraded point, remembering the first cause.
    pub fn note_degraded(&mut self, cause: &str) {
        self.degraded += 1;
        if self.first_failure.is_none() {
            self.first_failure = Some(cause.to_string());
        }
    }

    /// Count one failed point, remembering the first cause.
    pub fn note_failed(&mut self, cause: &str) {
        self.failed += 1;
        if self.first_failure.is_none() {
            self.first_failure = Some(cause.to_string());
        }
    }

    /// Count `value` toward the non-finite tally if it is NaN or ±∞,
    /// returning whether it was non-finite. Callers fold the result into
    /// the per-point ok/degraded decision.
    pub fn tally_non_finite(&mut self, value: f64) -> bool {
        if value.is_finite() {
            false
        } else {
            self.non_finite += 1;
            true
        }
    }

    /// Fold another ledger into this one (first failure and kernel stamp
    /// win by call order).
    pub fn merge(&mut self, other: &SweepHealth) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.failed += other.failed;
        self.non_finite += other.non_finite;
        self.retries += other.retries;
        self.breaker_trips += other.breaker_trips;
        self.restarts += other.restarts;
        if self.first_failure.is_none() {
            self.first_failure.clone_from(&other.first_failure);
        }
        if self.kernel.is_none() {
            self.kernel.clone_from(&other.kernel);
        }
        if self.simd.is_none() {
            self.simd.clone_from(&other.simd);
        }
    }
}

impl std::fmt::Display for SweepHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ok, {} degraded, {} failed ({} non-finite values)",
            self.ok, self.degraded, self.failed, self.non_finite
        )?;
        if self.retries + self.breaker_trips + self.restarts > 0 {
            write!(
                f,
                "; {} retries, {} breaker trips, {} restarts",
                self.retries, self.breaker_trips, self.restarts
            )?;
        }
        if let Some(cause) = &self.first_failure {
            write!(f, "; first failure: {cause}")?;
        }
        Ok(())
    }
}

/// Publish one sweep stage's degradation ledger under `label` so the
/// next [`drain_health`] (and through it the emitted perf artifacts)
/// picks it up. Degraded/failed counts are mirrored into the metrics
/// registry at [`ObsLevel::Summary`], and every ledger (clean or not)
/// leaves a `health` event in the flight recorder so a post-mortem black
/// box shows which stages had completed. A poisoned registry drops the
/// record rather than propagating the panic.
pub fn record_health(label: &str, health: SweepHealth) {
    recorder::record(
        recorder::EventKind::Health,
        label,
        health.degraded + health.failed,
        health.non_finite,
    );
    if enabled(ObsLevel::Summary) && !health.is_clean() {
        metrics::counter(&format!("health/{label}/degraded")).add(health.degraded);
        metrics::counter(&format!("health/{label}/failed")).add(health.failed);
        metrics::counter(&format!("health/{label}/non_finite")).add(health.non_finite);
    }
    let Ok(mut registry) = HEALTH.lock() else {
        return; // poisoned: drop the record, never panic
    };
    registry.push((label.to_string(), health));
}

/// Remove and return every health ledger recorded since the last drain.
/// A poisoned registry is recovered (its surviving contents returned)
/// rather than panicking.
#[must_use]
pub fn drain_health() -> Vec<(String, SweepHealth)> {
    std::mem::take(&mut *HEALTH.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Publish one engine's cache counters under `prefix` (e.g. the sweep's
/// utility family) so the next [`drain_caches`] picks them up. At
/// [`ObsLevel::Summary`] and above the counters are also mirrored into the
/// metrics registry (`cache/<prefix>/<name>/{hits,misses,hit_rate}`).
///
/// If the registry mutex was poisoned by a panicking thread the records
/// are dropped rather than propagating the panic.
pub fn record_caches(prefix: &str, stats: Vec<(String, CacheStats)>) {
    if enabled(ObsLevel::Summary) {
        for (name, st) in &stats {
            // Tracked counters also leave a counter-delta event in the
            // flight recorder, so a black box shows cache activity leading
            // up to a fault. These fire once per sweep, not per point.
            metrics::tracked_counter(&format!("cache/{prefix}/{name}/hits")).add(st.hits);
            metrics::tracked_counter(&format!("cache/{prefix}/{name}/misses")).add(st.misses);
            metrics::gauge(&format!("cache/{prefix}/{name}/hit_rate")).set(st.hit_rate());
        }
    }
    let Ok(mut registry) = CACHES.lock() else {
        return; // poisoned: drop the records, never panic
    };
    for (name, st) in stats {
        registry.push((format!("{prefix}/{name}"), st));
    }
}

/// Remove and return every cache counter recorded since the last drain.
/// A poisoned registry is recovered (its surviving contents returned)
/// rather than panicking.
#[must_use]
pub fn drain_caches() -> Vec<(String, CacheStats)> {
    std::mem::take(&mut *CACHES.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Aggregated instrumentation of one figure/sweep run: its stages plus the
/// cache counters and degradation ledgers of every engine involved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Completed stages in execution order.
    pub stages: Vec<StageRecord>,
    /// Named cache counters, e.g. `("best_effort", stats)`.
    pub caches: Vec<(String, CacheStats)>,
    /// Named degradation ledgers, e.g. `("fig2/sweep", health)`.
    pub health: Vec<(String, SweepHealth)>,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

impl SweepReport {
    /// Build a report from drained stages and cache counters (no health
    /// ledgers — attach them with [`Self::with_health`]).
    #[must_use]
    pub fn new(
        stages: Vec<StageRecord>,
        caches: Vec<(String, CacheStats)>,
        threads: usize,
    ) -> Self {
        Self { stages, caches, health: Vec::new(), threads }
    }

    /// Attach drained degradation ledgers to the report.
    #[must_use]
    pub fn with_health(mut self, health: Vec<(String, SweepHealth)>) -> Self {
        self.health = health;
        self
    }

    /// Total wall-clock seconds across stages.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Total evaluated points across stages.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.stages.iter().map(|s| s.points).sum()
    }

    /// Aggregate throughput in points per second (like
    /// [`StageRecord::points_per_sec`]: infinite for a zero-duration
    /// report that did evaluate points, 0.0 for an empty one).
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.total_seconds();
        if secs > 0.0 {
            self.total_points() as f64 / secs
        } else if self.total_points() > 0 {
            f64::INFINITY
        } else {
            0.0
        }
    }

    /// JSON serialization (hand-rolled: no serde offline). Non-finite
    /// rates (a zero-duration stage) serialize as `null` — JSON has no
    /// `Infinity`.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn jnum(x: f64) -> String {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_seconds\": {},\n", jnum(self.total_seconds())));
        out.push_str(&format!("  \"total_points\": {},\n", self.total_points()));
        out.push_str(&format!("  \"points_per_sec\": {},\n", jnum(self.points_per_sec())));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {}, \"points\": {}, \"points_per_sec\": {}}}{}\n",
                esc(&s.name),
                jnum(s.seconds),
                s.points,
                jnum(s.points_per_sec()),
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"caches\": [\n");
        for (i, (name, st)) in self.caches.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}{}\n",
                esc(name),
                st.hits,
                st.misses,
                jnum(st.hit_rate()),
                if i + 1 < self.caches.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"health\": [\n");
        for (i, (name, h)) in self.health.iter().enumerate() {
            let first = h.first_failure.as_ref().map_or_else(
                || "null".to_string(),
                |c| format!("\"{}\"", esc(c)),
            );
            let kernel = h.kernel.as_ref().map_or_else(
                || "null".to_string(),
                |k| format!("\"{}\"", esc(k)),
            );
            let simd = h.simd.as_ref().map_or_else(
                || "null".to_string(),
                |k| format!("\"{}\"", esc(k)),
            );
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ok\": {}, \"degraded\": {}, \"failed\": {}, \"non_finite\": {}, \"retries\": {}, \"breaker_trips\": {}, \"restarts\": {}, \"first_failure\": {}, \"kernel\": {}, \"simd\": {}}}{}\n",
                esc(name),
                h.ok,
                h.degraded,
                h.failed,
                h.non_finite,
                h.retries,
                h.breaker_trips,
                h.restarts,
                first,
                kernel,
                simd,
                if i + 1 < self.health.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV serialization: one `stage` row per stage, one `cache` row per
    /// cache, one `health` row per degradation ledger, with a shared
    /// header. Non-finite numeric cells are emitted empty — consistent
    /// with the `null`-for-non-finite rule of [`Self::to_json`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn cnum(x: f64) -> String {
            if x.is_finite() {
                format!("{x:?}")
            } else {
                String::new()
            }
        }
        let mut out = String::from(
            "kind,name,seconds,points,points_per_sec,hits,misses,hit_rate,ok,degraded,failed,non_finite,retries,breaker_trips,restarts,first_failure,kernel,simd\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "stage,{},{},{},{},,,,,,,,,,,,,\n",
                s.name,
                cnum(s.seconds),
                s.points,
                cnum(s.points_per_sec())
            ));
        }
        for (name, st) in &self.caches {
            out.push_str(&format!(
                "cache,{},,,,{},{},{},,,,,,,,,,\n",
                name,
                st.hits,
                st.misses,
                cnum(st.hit_rate())
            ));
        }
        for (name, h) in &self.health {
            let first = h.first_failure.as_deref().unwrap_or("");
            // CSV-quote the free-text cause (it may contain commas).
            let first = format!("\"{}\"", first.replace('"', "\"\""));
            let kernel = h.kernel.as_deref().unwrap_or("");
            let simd = h.simd.as_deref().unwrap_or("");
            out.push_str(&format!(
                "health,{},,,,,,,{},{},{},{},{},{},{},{},{},{}\n",
                name,
                h.ok,
                h.degraded,
                h.failed,
                h.non_finite,
                h.retries,
                h.breaker_trips,
                h.restarts,
                first,
                kernel,
                simd
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        {
            let mut s = span("engine-shim/stage");
            s.add_points(42);
        }
        let stages = drain_stages();
        let rec =
            stages.iter().find(|r| r.name == "engine-shim/stage").expect("span recorded");
        assert_eq!(rec.points, 42);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn report_serializes() {
        let report = SweepReport::new(
            vec![StageRecord { name: "sweep/utility".into(), seconds: 0.5, points: 100 }],
            vec![("best_effort".into(), CacheStats { hits: 10, misses: 5 })],
            8,
        );
        assert!((report.points_per_sec() - 200.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"sweep/utility\""));
        assert!(json.contains("\"hits\": 10"));
        let csv = report.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("stage,sweep/utility"));
        assert!(csv.contains("cache,best_effort"));
    }

    #[test]
    fn zero_duration_stage_rates() {
        let busy = StageRecord { name: "s".into(), seconds: 0.0, points: 10 };
        assert_eq!(busy.points_per_sec(), f64::INFINITY);
        let idle = StageRecord { name: "s".into(), seconds: 0.0, points: 0 };
        assert_eq!(idle.points_per_sec(), 0.0);
        // Non-finite rates must serialize as null, keeping the JSON valid.
        let report = SweepReport::new(vec![busy], vec![], 1);
        let json = report.to_json();
        assert!(json.contains("\"points_per_sec\": null"), "json: {json}");
        assert!(!json.contains("inf"), "no bare inf tokens in JSON");
    }

    #[test]
    fn health_ledger_counts_and_first_cause() {
        let mut h = SweepHealth::new();
        assert!(h.is_clean());
        h.note_ok();
        assert!(h.tally_non_finite(f64::NAN));
        assert!(h.tally_non_finite(f64::INFINITY));
        assert!(!h.tally_non_finite(1.0));
        h.note_degraded("gap solver: max iterations");
        h.note_failed("worker panicked");
        h.note_degraded("later cause");
        assert_eq!((h.ok, h.degraded, h.failed, h.non_finite), (1, 2, 1, 2));
        assert_eq!(h.total(), 4);
        assert_eq!(h.first_failure.as_deref(), Some("gap solver: max iterations"));
        assert!(!h.is_clean());
        let text = h.to_string();
        assert!(text.contains("2 degraded") && text.contains("max iterations"), "{text}");
        assert!(!text.contains("retries"), "quiet resilience counters stay out of Display");
        h.retries = 3;
        h.restarts = 1;
        let text = h.to_string();
        assert!(text.contains("3 retries") && text.contains("1 restarts"), "{text}");
    }

    #[test]
    fn merge_sums_resilience_counters() {
        let mut a = SweepHealth::new();
        a.retries = 2;
        a.breaker_trips = 1;
        let mut b = SweepHealth::new();
        b.retries = 3;
        b.restarts = 4;
        a.merge(&b);
        assert_eq!((a.retries, a.breaker_trips, a.restarts), (5, 1, 4));
    }

    #[test]
    fn report_serializes_resilience_columns() {
        let mut h = SweepHealth::new();
        h.note_ok();
        h.retries = 2;
        h.breaker_trips = 1;
        h.restarts = 3;
        let report =
            SweepReport::new(vec![], vec![], 1).with_health(vec![("fleet".into(), h)]);
        let json = report.to_json();
        assert!(json.contains("\"retries\": 2"), "json: {json}");
        assert!(json.contains("\"breaker_trips\": 1"), "json: {json}");
        assert!(json.contains("\"restarts\": 3"), "json: {json}");
        let csv = report.to_csv();
        assert!(
            csv.lines().next().is_some_and(|h| h.contains("retries,breaker_trips,restarts")),
            "csv header: {csv}"
        );
        assert!(csv.contains("health,fleet,,,,,,,1,0,0,0,2,1,3,"), "csv: {csv}");
    }

    #[test]
    fn health_record_drain_roundtrip() {
        let mut h = SweepHealth::new();
        h.note_ok();
        h.note_failed("boom");
        record_health("roundtrip/sweep", h.clone());
        let drained = drain_health();
        let (_, got) = drained
            .iter()
            .find(|(n, _)| n == "roundtrip/sweep")
            .expect("recorded ledger drained");
        assert_eq!(got, &h);
        assert!(!drain_health().iter().any(|(n, _)| n == "roundtrip/sweep"));
    }

    #[test]
    fn report_serializes_health_section() {
        let mut dirty = SweepHealth::new();
        dirty.note_ok();
        dirty.note_degraded("bandwidth gap: \"no bracket\", giving up");
        dirty.non_finite = 1;
        dirty.kernel = Some("batch".into());
        dirty.simd = Some("autovec".into());
        let report = SweepReport::new(vec![], vec![], 4)
            .with_health(vec![("fig2/sweep".into(), dirty), ("fig2/gamma".into(), SweepHealth::new())]);
        let json = report.to_json();
        assert!(json.contains("\"health\""), "json: {json}");
        assert!(json.contains("\"degraded\": 1"), "json: {json}");
        assert!(json.contains("\\\"no bracket\\\""), "cause is escaped: {json}");
        assert!(json.contains("\"first_failure\": null"), "clean ledger: {json}");
        assert!(json.contains("\"kernel\": \"batch\""), "kernel stamp: {json}");
        assert!(json.contains("\"kernel\": null"), "unstamped ledger: {json}");
        assert!(json.contains("\"simd\": \"autovec\""), "simd stamp: {json}");
        assert!(json.contains("\"simd\": null"), "unstamped simd: {json}");
        let csv = report.to_csv();
        assert!(csv.lines().next().is_some_and(|h| h.ends_with("kernel,simd")));
        assert!(csv.contains("health,fig2/sweep,,,,,,,1,1,0,1,"), "csv: {csv}");
        assert!(csv.contains("\"\"no bracket\"\""), "csv-quoted cause: {csv}");
        assert!(csv.contains(", giving up\",batch,autovec\n"), "kernel+simd columns: {csv}");
    }

    #[test]
    fn merge_keeps_first_kernel_stamp() {
        let mut a = SweepHealth::new();
        a.note_ok();
        let mut b = SweepHealth::new();
        b.kernel = Some("fast".into());
        b.note_ok();
        a.merge(&b);
        assert_eq!(a.kernel.as_deref(), Some("fast"), "absent stamp adopts other's");
        let mut c = SweepHealth::new();
        c.kernel = Some("scalar".into());
        c.note_ok();
        a.merge(&c);
        assert_eq!(a.kernel.as_deref(), Some("fast"), "existing stamp wins");
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn csv_non_finite_cells_are_empty() {
        let report = SweepReport::new(
            vec![StageRecord { name: "s".into(), seconds: 0.0, points: 10 }],
            vec![],
            1,
        );
        let csv = report.to_csv();
        // The zero-duration stage has an infinite rate: emitted empty,
        // matching the JSON null rule.
        assert!(csv.contains("stage,s,0.0,10,,"), "csv: {csv}");
        assert!(!csv.contains("inf"), "no bare inf tokens in CSV: {csv}");
    }

    #[test]
    fn poisoned_cache_registry_degrades_gracefully() {
        // Seed a record, then poison the registry from a panicking thread.
        record_caches("poison-seed", vec![("c".into(), CacheStats { hits: 1, misses: 0 })]);
        let _ = std::thread::spawn(|| {
            let _guard = CACHES.lock().expect("first lock");
            panic!("poison the cache registry");
        })
        .join();
        assert!(CACHES.lock().is_err(), "registry is poisoned");
        // Recording on a poisoned registry drops the record, no panic.
        record_caches("poison-lost", vec![("c".into(), CacheStats::default())]);
        // Draining recovers the surviving contents, no panic.
        let drained = drain_caches();
        assert!(drained.iter().any(|(n, _)| n == "poison-seed/c"));
        assert!(!drained.iter().any(|(n, _)| n == "poison-lost/c"));
    }
}
