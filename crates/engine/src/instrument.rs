//! Lightweight sweep instrumentation: named timing spans plus a counters
//! struct, without the external `tracing` crate (unavailable offline).
//!
//! Engine operations open a [`Span`] per sweep stage; completed spans land
//! in a process-global registry that a figure binary drains into a
//! [`SweepReport`] after building its figure. The report serializes to
//! JSON and CSV next to the existing artifacts under `results/`.

use crate::cache::CacheStats;
use std::sync::Mutex;
use std::time::Instant;

/// One completed sweep stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Stage name, e.g. `"sweep/utility"` or `"welfare/build"`.
    pub name: String,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Grid points (or other work units) the stage evaluated.
    pub points: u64,
}

impl StageRecord {
    /// Throughput in points per second (0 when no points were recorded).
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.points as f64 / self.seconds
        } else {
            0.0
        }
    }
}

static REGISTRY: Mutex<Vec<StageRecord>> = Mutex::new(Vec::new());
static CACHES: Mutex<Vec<(String, CacheStats)>> = Mutex::new(Vec::new());

/// An open timing span. Created by [`span`]; records itself into the
/// global registry on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    points: u64,
    start: Instant,
}

impl Span {
    /// Attribute `n` more evaluated points to this span.
    pub fn add_points(&mut self, n: u64) {
        self.points += n;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let record = StageRecord {
            name: std::mem::take(&mut self.name),
            seconds: self.start.elapsed().as_secs_f64(),
            points: self.points,
        };
        REGISTRY.lock().expect("span registry poisoned").push(record);
    }
}

/// Open a named timing span; it records itself when dropped.
#[must_use]
pub fn span(name: impl Into<String>) -> Span {
    Span { name: name.into(), points: 0, start: Instant::now() }
}

/// Remove and return every stage recorded since the last drain.
#[must_use]
pub fn drain_stages() -> Vec<StageRecord> {
    std::mem::take(&mut *REGISTRY.lock().expect("span registry poisoned"))
}

/// Publish one engine's cache counters under `prefix` (e.g. the sweep's
/// utility family) so the next [`drain_caches`] picks them up.
pub fn record_caches(prefix: &str, stats: Vec<(String, CacheStats)>) {
    let mut registry = CACHES.lock().expect("cache registry poisoned");
    for (name, st) in stats {
        registry.push((format!("{prefix}/{name}"), st));
    }
}

/// Remove and return every cache counter recorded since the last drain.
#[must_use]
pub fn drain_caches() -> Vec<(String, CacheStats)> {
    std::mem::take(&mut *CACHES.lock().expect("cache registry poisoned"))
}

/// Aggregated instrumentation of one figure/sweep run: its stages plus the
/// cache counters of every engine involved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Completed stages in execution order.
    pub stages: Vec<StageRecord>,
    /// Named cache counters, e.g. `("best_effort", stats)`.
    pub caches: Vec<(String, CacheStats)>,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

impl SweepReport {
    /// Build a report from drained stages and cache counters.
    #[must_use]
    pub fn new(
        stages: Vec<StageRecord>,
        caches: Vec<(String, CacheStats)>,
        threads: usize,
    ) -> Self {
        Self { stages, caches, threads }
    }

    /// Total wall-clock seconds across stages.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Total evaluated points across stages.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.stages.iter().map(|s| s.points).sum()
    }

    /// Aggregate throughput in points per second.
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.total_seconds();
        if secs > 0.0 {
            self.total_points() as f64 / secs
        } else {
            0.0
        }
    }

    /// JSON serialization (hand-rolled: no serde offline).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_seconds\": {:?},\n", self.total_seconds()));
        out.push_str(&format!("  \"total_points\": {},\n", self.total_points()));
        out.push_str(&format!("  \"points_per_sec\": {:?},\n", self.points_per_sec()));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"seconds\": {:?}, \"points\": {}, \"points_per_sec\": {:?}}}{}\n",
                esc(&s.name),
                s.seconds,
                s.points,
                s.points_per_sec(),
                if i + 1 < self.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"caches\": [\n");
        for (i, (name, st)) in self.caches.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"hits\": {}, \"misses\": {}, \"hit_rate\": {:?}}}{}\n",
                esc(name),
                st.hits,
                st.misses,
                st.hit_rate(),
                if i + 1 < self.caches.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV serialization: one `stage` row per stage, one `cache` row per
    /// cache, with a shared header.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,seconds,points,points_per_sec,hits,misses,hit_rate\n");
        for s in &self.stages {
            out.push_str(&format!(
                "stage,{},{:?},{},{:?},,,\n",
                s.name,
                s.seconds,
                s.points,
                s.points_per_sec()
            ));
        }
        for (name, st) in &self.caches {
            out.push_str(&format!(
                "cache,{},,,,{},{},{:?}\n",
                name,
                st.hits,
                st.misses,
                st.hit_rate()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let _ = drain_stages();
        {
            let mut s = span("test/stage");
            s.add_points(42);
        }
        let stages = drain_stages();
        let rec = stages.iter().find(|r| r.name == "test/stage").expect("span recorded");
        assert_eq!(rec.points, 42);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn report_serializes() {
        let report = SweepReport::new(
            vec![StageRecord { name: "sweep/utility".into(), seconds: 0.5, points: 100 }],
            vec![("best_effort".into(), CacheStats { hits: 10, misses: 5 })],
            8,
        );
        assert!((report.points_per_sec() - 200.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"sweep/utility\""));
        assert!(json.contains("\"hits\": 10"));
        let csv = report.to_csv();
        assert!(csv.lines().count() == 3);
        assert!(csv.contains("stage,sweep/utility"));
        assert!(csv.contains("cache,best_effort"));
    }
}
