//! Parallel sweep engine for the bevra workspace.
//!
//! Every figure of the paper's evaluation reduces to dense sweeps of four
//! quantities over capacity and price grids: `B(C)`, `R(C)`,
//! `δ(C) = R − B`, and the bandwidth gap `Δ(C)`. Evaluating them serially
//! re-sums megabyte-scale load tables hundreds of times; this crate makes
//! the sweeps parallel and memoized while keeping the numerics **exactly**
//! the serial scalar code:
//!
//! * [`pool`] — scoped-thread `parallel_map` with deterministic output
//!   ordering (`BEVRA_THREADS` overrides the worker count), plus
//!   [`parallel_map_supervised`] which catches per-item panics and
//!   retries them under a `bevra_resilience::RetryPolicy`
//!   (`BEVRA_RETRY`-overridable; then a structured [`ItemError`]) so one
//!   bad grid point degrades instead of aborting the sweep;
//! * [`checkpoint`] — a crash-safe sweep checkpoint store
//!   (`BEVRA_CHECKPOINT=rw|ro`): completed grid points are persisted
//!   batch-wise with atomic writes and restored bitwise on resume, so a
//!   killed sweep continues instead of recomputing;
//! * [`cache`] — sharded thread-safe memo tables keyed by capacity bit
//!   patterns, with hit/miss counters;
//! * [`persist`] — an on-disk cross-run value-table cache keyed by content
//!   hashes of (load digest, utility, grid), gated by
//!   `BEVRA_CACHE=off|rw|ro`, so warm figure regeneration skips the value
//!   tables entirely (corrupt or missing entries degrade to recompute);
//! * [`engine`] — the [`SweepEngine`] tying both to a
//!   [`bevra_core::DiscreteModel`]: memoized `k_max(C)` tables, `B`/`R`
//!   evaluations shared between the gap root-finder and the welfare
//!   tables, and parallel grid sweeps;
//! * [`instrument`] — spans per sweep stage (a shim over the workspace's
//!   [`bevra_obs`] observability crate: hierarchical, thread-aware,
//!   panic-safe) plus a [`SweepReport`] counters struct (cache
//!   hits/misses, points/sec) that the report crate emits as JSON/CSV
//!   next to each figure. With `BEVRA_OBS=summary|trace` the engine also
//!   records per-point latency histograms and cache hit-rate metrics, and
//!   figure binaries export chrome-trace JSON — see the `bevra-obs` docs.
//!
//! # Kernel backends
//!
//! Grid priming goes through a first-class [`bevra_core::Kernel`]
//! backend, selected from the process-global [`registry`]. Each backend
//! self-reports a [`bevra_core::KernelCapability`] record — name, parity
//! class (`Bitwise` vs `Tolerance`), SIMD level, fault-site coverage,
//! cache-key tag — that flows into the persistent-cache key
//! ([`grid_key`]), the [`SweepHealth`] ledger, and the emitted perf
//! artifacts. Four backends are built in: `scalar` (per-point reference,
//! no priming), `batch` (loop-interchanged grids, bitwise, the default),
//! `fast` (vectorized ULP-budgeted exp), and `deterministic-portable`
//! (integer-scaled exp path with identical bits on every libm).
//! `BEVRA_KERNEL=<name>` selects one; unknown names fall back to `scalar`
//! with a warning. External backends register with
//! [`registry::register`] and are picked up by the parity and chaos
//! suites automatically.
//!
//! # Determinism
//!
//! Parallel output is **bitwise-identical** to serial output: each grid
//! point is a pure function evaluated by the same scalar code path, the
//! pool writes results by input index, and the caches memoize pure
//! functions (racing threads compute identical bits). The workspace's
//! `engine_parity` property test asserts this across all three load
//! families. Bitwise-class backends mirror the scalar path op for op —
//! priming changes wall-clock, never bits; tolerance-class backends are
//! themselves deterministic (same bits for the same input on the same
//! backend), only their distance to scalar is a tolerance.
//!
//! # Degradation
//!
//! [`SweepEngine::sweep_checked`] is the failure-aware sweep: every grid
//! point gets a [`PointOutcome`] and the run a [`SweepHealth`] ledger
//! (ok/degraded/failed counts, non-finite tally, first failure cause)
//! that the report crate serializes into each figure's `-perf` artifacts.
//! Fault injection for exercising these paths lives in `bevra-faults`
//! (`BEVRA_FAULTS`); with no plan active the checked paths are
//! bitwise-identical to the legacy ones.
//!
//! ```
//! use bevra_engine::{ExecMode, SweepEngine};
//! use bevra_core::DiscreteModel;
//! use bevra_load::{Poisson, Tabulated};
//! use bevra_utility::AdaptiveExp;
//!
//! let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 16);
//! let engine = SweepEngine::new(DiscreteModel::new(load, AdaptiveExp::paper()));
//! let points = engine.sweep(&[50.0, 100.0, 200.0]);
//! assert!(points[2].reservation >= points[2].best_effort);
//! assert!(points[0].bandwidth_gap > 0.0);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod instrument;
pub mod ledger;
pub mod persist;
pub mod pool;
pub mod registry;

pub use bevra_core::{Kernel, KernelCapability, ParityClass, SimdLevel};
pub use cache::{CacheStats, ShardedCache};
pub use checkpoint::{CheckpointStore, CHECKPOINT_DIR_ENV, CHECKPOINT_ENV};
pub use engine::{
    Architecture, CheckedSweep, ExecMode, PointOutcome, SweepEngine, SweepPoint,
};
pub use ledger::{LedgerRecord, LEDGER_FILE, LEDGER_SCHEMA};
pub use persist::{append_line, grid_key, CacheMode, GridRow, PersistentCache};
pub use instrument::{
    drain_caches, drain_health, drain_stages, record_caches, record_health, span, Span,
    StageRecord, SweepHealth, SweepReport,
};
pub use pool::{
    chunk_ranges, compute_retry_policy, default_thread_count, parallel_map,
    parallel_map_isolated, parallel_map_supervised, parallel_map_with, parse_thread_count,
    thread_count, ItemError, MAX_THREADS, THREADS_ENV,
};
