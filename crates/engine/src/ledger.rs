//! The cross-run ledger: one structured line per sweep run.
//!
//! Every figure/sweep run appends one [`LedgerRecord`] to
//! `results/ledger.jsonl` — a JSONL file shared by all runs on a machine.
//! A record captures what would otherwise have to be reconstructed from
//! scattered artifacts: the config/load fingerprint the run evaluated,
//! the kernel capability stamp, cache hit counters, the degradation
//! ledger ([`crate::SweepHealth`] totals), throughput (ns per point), and
//! a digest of the numeric results. The `obs-report` binary in
//! `bevra-report` renders trend tables over this file and flags
//! perf/digest regressions.
//!
//! # Durability
//!
//! Appends go through [`crate::persist::append_line`]: `O_APPEND` plus a
//! single `write_all`, so concurrent runs interleave at line granularity.
//! Each line ends in a `"crc"` field — FNV-1a over everything before it —
//! so readers detect and skip torn or bit-flipped lines instead of
//! mis-parsing them; see the parser in `bevra-report`.

use std::path::Path;

/// Schema tag carried by every ledger line; bump on layout changes so old
/// readers skip new lines (and vice versa) instead of misreading them.
pub const LEDGER_SCHEMA: &str = "bevra-ledger-v1";

/// Default ledger file name (under the run's `results/` directory).
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// FNV-1a over a byte slice — the workspace's standard content hash (the
/// same constants as the fault-plan and persistent-cache hashers). Used
/// for the ledger's per-line CRC, run fingerprints, and result digests.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One run's ledger entry. Field order in the serialized line matches
/// declaration order here.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Run identifier — the figure tag (`fig2`, `fig3`, …) or a caller
    /// supplied id.
    pub id: String,
    /// Wall-clock timestamp of the append, milliseconds since the Unix
    /// epoch (the only wall-clock field; everything else is content).
    pub unix_ms: u64,
    /// Content fingerprint of the run's configuration: what was swept
    /// (grids, labels, quality). Two runs with equal fingerprints claim
    /// to have evaluated the same inputs.
    pub fingerprint: u64,
    /// Capability name of the kernel backend that evaluated the run
    /// (empty when no engine sweep was involved).
    pub kernel: String,
    /// Resolved SIMD dispatch tier of that backend (`"none"`, `"autovec"`,
    /// `"avx2"`, `"avx512"`, `"neon"`; empty when no kernel stamp
    /// applies). Appended to the schema mid-stream: readers treat an
    /// absent field as `"unknown"`, so pre-existing ledger lines keep
    /// parsing — see `bevra-report`'s append-tolerance test.
    pub simd: String,
    /// Worker threads the run was configured with.
    pub threads: u64,
    /// Total evaluated points across stages.
    pub points: u64,
    /// Total wall-clock seconds across stages.
    pub seconds: f64,
    /// Cache hits summed over every cache the run reported.
    pub cache_hits: u64,
    /// Cache misses summed over every cache the run reported.
    pub cache_misses: u64,
    /// Points that evaluated cleanly (summed over health ledgers).
    pub ok: u64,
    /// Points that produced degraded values.
    pub degraded: u64,
    /// Points that produced no value at all.
    pub failed: u64,
    /// Non-finite fields across all degraded points.
    pub non_finite: u64,
    /// Point-evaluation retries performed by the resilience runtime
    /// (summed over health ledgers).
    pub retries: u64,
    /// Circuit-breaker trips during the run.
    pub breaker_trips: u64,
    /// Worker/lane restarts performed by supervisors during the run.
    pub restarts: u64,
    /// Digest of the run's numeric results. Two runs with equal
    /// fingerprints and kernels must produce equal digests — a mismatch
    /// is a determinism regression `obs-report` flags.
    pub digest: u64,
}

impl LedgerRecord {
    /// Nanoseconds per evaluated point (0.0 when no points were timed).
    #[must_use]
    pub fn ns_per_point(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.seconds * 1e9 / self.points as f64
        }
    }

    /// Serialize as one JSONL line (no trailing newline), ending in the
    /// `"crc"` field: FNV-1a over every byte before `,"crc":"`.
    #[must_use]
    pub fn to_line(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let seconds = if self.seconds.is_finite() { format!("{:?}", self.seconds) } else { "null".to_string() };
        let nspp = self.ns_per_point();
        let nspp = if nspp.is_finite() { format!("{nspp:?}") } else { "null".to_string() };
        let prefix = format!(
            "{{\"schema\":\"{LEDGER_SCHEMA}\",\"id\":\"{}\",\"unix_ms\":{},\
             \"fingerprint\":\"{:016x}\",\"kernel\":\"{}\",\"threads\":{},\
             \"points\":{},\"seconds\":{},\"ns_per_point\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"ok\":{},\"degraded\":{},\"failed\":{},\"non_finite\":{},\
             \"retries\":{},\"breaker_trips\":{},\"restarts\":{},\
             \"simd\":\"{}\",\"digest\":\"{:016x}\"",
            esc(&self.id),
            self.unix_ms,
            self.fingerprint,
            esc(&self.kernel),
            self.threads,
            self.points,
            seconds,
            nspp,
            self.cache_hits,
            self.cache_misses,
            self.ok,
            self.degraded,
            self.failed,
            self.non_finite,
            self.retries,
            self.breaker_trips,
            self.restarts,
            esc(&self.simd),
            self.digest,
        );
        let crc = fnv1a(prefix.as_bytes());
        format!("{prefix},\"crc\":\"{crc:016x}\"}}")
    }

    /// Append this record to the ledger at `path` (fault site
    /// `ledger/append` → `io/ledger/append`).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::persist::append_line`] failures — callers on
    /// the emit path log and swallow these (a run that can't reach its
    /// ledger still produces its artifacts).
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        crate::persist::append_line("ledger/append", path, &self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LedgerRecord {
        LedgerRecord {
            id: "fig2".into(),
            unix_ms: 1_754_000_000_000,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            kernel: "batch".into(),
            simd: "autovec".into(),
            threads: 8,
            points: 1000,
            seconds: 0.5,
            cache_hits: 40,
            cache_misses: 10,
            ok: 998,
            degraded: 1,
            failed: 1,
            non_finite: 2,
            retries: 3,
            breaker_trips: 1,
            restarts: 2,
            digest: 0x0123_4567_89AB_CDEF,
        }
    }

    #[test]
    fn line_is_single_json_object_with_crc_suffix() {
        let line = sample().to_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with(&format!("{{\"schema\":\"{LEDGER_SCHEMA}\"")));
        assert!(line.ends_with('}'));
        let crc_at = line.rfind(",\"crc\":\"").expect("crc field present");
        let recorded = &line[crc_at + ",\"crc\":\"".len()..line.len() - 2];
        let expect = fnv1a(&line.as_bytes()[..crc_at]);
        assert_eq!(recorded, format!("{expect:016x}"), "crc covers the prefix");
    }

    #[test]
    fn ns_per_point_handles_zero_points() {
        let mut r = sample();
        assert!((r.ns_per_point() - 500_000.0).abs() < 1e-6);
        r.points = 0;
        assert_eq!(r.ns_per_point(), 0.0);
        r.points = 10;
        r.seconds = f64::INFINITY;
        assert!(r.to_line().contains("\"ns_per_point\":null"));
    }

    #[test]
    fn append_accumulates_lines() {
        let dir = std::env::temp_dir()
            .join(format!("bevra-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join(LEDGER_FILE);
        sample().append(&path).unwrap();
        let mut second = sample();
        second.id = "fig3".into();
        second.append(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().contains("\"id\":\"fig3\""));
    }

    #[test]
    fn fnv1a_matches_known_vector() {
        // FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
