//! Path reservation admission control.

use crate::topology::{FlowSpec, Topology};
use bevra_obs::{enabled, metrics, ObsLevel};

/// Result of admitting a batch of reservation requests.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// `admitted[i]` — whether flow `i` was admitted.
    pub admitted: Vec<bool>,
    /// Per-link residual capacity after all admissions.
    pub residual: Vec<f64>,
}

impl AdmissionOutcome {
    /// Number of admitted flows.
    #[must_use]
    pub fn admitted_count(&self) -> usize {
        self.admitted.iter().filter(|&&a| a).count()
    }

    /// Fraction of flows blocked.
    #[must_use]
    pub fn blocking_fraction(&self) -> f64 {
        if self.admitted.is_empty() {
            return 0.0;
        }
        1.0 - self.admitted_count() as f64 / self.admitted.len() as f64
    }
}

/// Admit reservation requests first-come-first-served: flow `i` is admitted
/// iff every link on its route still has `demand` residual capacity, in
/// which case the demand is subtracted along the path.
///
/// This is the multi-link generalization of the paper's `k ≤ k_max(C)`
/// threshold: on a single unit-demand link it reduces to admitting exactly
/// the first `⌊C⌋` flows.
///
/// # Panics
///
/// Panics if any route references a nonexistent link.
#[must_use]
pub fn admit_reservations(topology: &Topology, flows: &[FlowSpec]) -> AdmissionOutcome {
    assert!(topology.routes_valid(flows), "route references nonexistent link");
    let mut span = bevra_obs::span("net/admission");
    span.add_points(flows.len() as u64);
    let mut residual: Vec<f64> = (0..topology.len()).map(|l| topology.capacity(l)).collect();
    let mut admitted = Vec::with_capacity(flows.len());
    for f in flows {
        // Tiny epsilon so exact-fit requests are not rejected to rounding.
        let fits = f.route.iter().all(|&l| residual[l] + 1e-12 >= f.demand);
        if fits {
            for &l in &f.route {
                residual[l] -= f.demand;
            }
        }
        admitted.push(fits);
    }
    if enabled(ObsLevel::Summary) {
        let ok = admitted.iter().filter(|&&a| a).count() as u64;
        metrics::counter("net/admission/admitted").add(ok);
        metrics::counter("net/admission/rejected").add(admitted.len() as u64 - ok);
    }
    AdmissionOutcome { admitted, residual }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_threshold() {
        let t = Topology::new(vec![3.0]);
        let flows: Vec<FlowSpec> = (0..5).map(|_| FlowSpec::unit(vec![0])).collect();
        let out = admit_reservations(&t, &flows);
        assert_eq!(out.admitted, vec![true, true, true, false, false]);
        assert!((out.blocking_fraction() - 0.4).abs() < 1e-12);
        assert!(out.residual[0].abs() < 1e-9);
    }

    #[test]
    fn path_admission_requires_every_link() {
        let t = Topology::new(vec![1.0, 2.0]);
        let flows = vec![
            FlowSpec::unit(vec![0, 1]), // takes link 0's only unit
            FlowSpec::unit(vec![0, 1]), // blocked by link 0
            FlowSpec::unit(vec![1]),    // still fits on link 1
        ];
        let out = admit_reservations(&t, &flows);
        assert_eq!(out.admitted, vec![true, false, true]);
    }

    #[test]
    fn fractional_demands() {
        let t = Topology::new(vec![1.0]);
        let flows = vec![
            FlowSpec::with_demand(vec![0], 0.6),
            FlowSpec::with_demand(vec![0], 0.6),
            FlowSpec::with_demand(vec![0], 0.4),
        ];
        let out = admit_reservations(&t, &flows);
        assert_eq!(out.admitted, vec![true, false, true]);
    }

    #[test]
    fn empty_request_set() {
        let t = Topology::new(vec![1.0]);
        let out = admit_reservations(&t, &[]);
        assert_eq!(out.admitted_count(), 0);
        assert_eq!(out.blocking_fraction(), 0.0);
    }
}
