//! Multi-link network substrate — the paper's single-link model generalized
//! to a topology.
//!
//! Breslau & Shenker analyze one bottleneck link with equal sharing. A
//! natural question their discussion leaves open is whether the
//! architecture comparison survives on a *network*: flows traverse paths,
//! best-effort shares are set by **max-min fairness** (the multi-link
//! generalization of the equal split, computed by progressive
//! water-filling), and reservation admission must clear *every* link on the
//! path. This crate provides exactly that substrate:
//!
//! * [`topology`] — links with capacities, flows with routes;
//! * [`maxmin`] — progressive-filling max-min fair allocation;
//! * [`admission`] — per-path reservation admission with per-link
//!   population caps;
//! * [`evaluate`] — total/normalized utility of an allocation under any
//!   [`bevra_utility::Utility`];
//! * [`scenarios`] — canonical topologies (single link, parking lot,
//!   random meshes) used by the `network_extension` example and the
//!   integration tests.

pub mod admission;
pub mod evaluate;
pub mod guard;
pub mod maxmin;
pub mod scenarios;
pub mod topology;

pub use admission::{admit_reservations, AdmissionOutcome};
pub use evaluate::{evaluate_allocation, NetworkUtility};
pub use guard::{GuardError, NetGuard};
pub use maxmin::max_min_allocation;
pub use scenarios::{parking_lot, random_mesh, single_link};
pub use topology::{FlowSpec, LinkId, Topology};
