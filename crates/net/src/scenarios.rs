//! Canonical topologies and flow sets for examples, tests, and benches.

use crate::topology::{FlowSpec, Topology};
use bevra_load::TabulatedSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Single link of capacity `c` with `k` unit flows — the paper's own model,
/// used to cross-check the network substrate against `bevra-core`.
#[must_use]
pub fn single_link(c: f64, k: usize) -> (Topology, Vec<FlowSpec>) {
    let t = Topology::new(vec![c]);
    let flows = (0..k).map(|_| FlowSpec::unit(vec![0])).collect();
    (t, flows)
}

/// Parking-lot topology: `hops` links of capacity `c`; `long` flows cross
/// every link, and `short_per_hop` flows sit on each single link.
#[must_use]
pub fn parking_lot(
    hops: usize,
    c: f64,
    long: usize,
    short_per_hop: usize,
) -> (Topology, Vec<FlowSpec>) {
    assert!(hops >= 1, "need at least one hop");
    let t = Topology::new(vec![c; hops]);
    let mut flows = Vec::with_capacity(long + hops * short_per_hop);
    let full_route: Vec<usize> = (0..hops).collect();
    for _ in 0..long {
        flows.push(FlowSpec::unit(full_route.clone()));
    }
    for h in 0..hops {
        for _ in 0..short_per_hop {
            flows.push(FlowSpec::unit(vec![h]));
        }
    }
    (t, flows)
}

/// Random mesh: `links` links of capacity `c`; `flows` flows each crossing
/// a random subset of 1–3 links, with per-link populations drawn from the
/// supplied sampler to mimic a variable-load pattern. Deterministic under
/// `seed`.
#[must_use]
pub fn random_mesh(
    links: usize,
    c: f64,
    flow_count_sampler: &TabulatedSampler,
    seed: u64,
) -> (Topology, Vec<FlowSpec>) {
    assert!(links >= 1, "need at least one link");
    let t = Topology::new(vec![c; links]);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_flows = flow_count_sampler.sample(&mut rng) as usize;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let hops = 1 + rng.random_range(0..3usize.min(links));
        let mut route = Vec::with_capacity(hops);
        while route.len() < hops {
            let l = rng.random_range(0..links);
            if !route.contains(&l) {
                route.push(l);
            }
        }
        flows.push(FlowSpec::unit(route));
    }
    (t, flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::Tabulated;

    #[test]
    fn single_link_shape() {
        let (t, flows) = single_link(10.0, 7);
        assert_eq!(t.len(), 1);
        assert_eq!(flows.len(), 7);
        assert!(t.routes_valid(&flows));
    }

    #[test]
    fn parking_lot_shape() {
        let (t, flows) = parking_lot(3, 5.0, 2, 4);
        assert_eq!(t.len(), 3);
        assert_eq!(flows.len(), 2 + 12);
        assert_eq!(flows[0].route.len(), 3);
        assert!(t.routes_valid(&flows));
    }

    #[test]
    fn random_mesh_is_deterministic() {
        let dist = Tabulated::from_weights(vec![0.0; 10].into_iter().chain([1.0]).collect());
        let sampler = TabulatedSampler::new(&dist);
        let (t, f1) = random_mesh(4, 10.0, &sampler, 5);
        let (_, f2) = random_mesh(4, 10.0, &sampler, 5);
        assert_eq!(f1.len(), 10);
        assert_eq!(f1, f2);
        assert!(t.routes_valid(&f1));
    }
}
