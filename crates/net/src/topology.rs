//! Links, routes, and flow specifications.

/// Index of a link in a [`Topology`].
pub type LinkId = usize;

/// A flow: a route (set of links it traverses) and a nominal demand used by
/// reservation admission (`1.0` matches the paper's unit-bandwidth flows).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Links the flow traverses, in order (order is irrelevant to the
    /// allocation; kept for readability of scenarios).
    pub route: Vec<LinkId>,
    /// Reserved bandwidth requested by this flow (best-effort ignores it).
    pub demand: f64,
}

impl FlowSpec {
    /// Unit-demand flow over a route.
    ///
    /// # Panics
    ///
    /// Panics on an empty route.
    #[must_use]
    pub fn unit(route: Vec<LinkId>) -> Self {
        Self::with_demand(route, 1.0)
    }

    /// Flow with an explicit demand.
    ///
    /// # Panics
    ///
    /// Panics on an empty route or nonpositive demand.
    #[must_use]
    pub fn with_demand(route: Vec<LinkId>, demand: f64) -> Self {
        assert!(!route.is_empty(), "a flow must traverse at least one link");
        assert!(demand > 0.0, "demand must be positive");
        Self { route, demand }
    }
}

/// A capacitated topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    capacities: Vec<f64>,
}

impl Topology {
    /// New topology with the given link capacities.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is nonpositive or non-finite.
    #[must_use]
    pub fn new(capacities: Vec<f64>) -> Self {
        for &c in &capacities {
            assert!(c > 0.0 && c.is_finite(), "capacities must be positive and finite");
        }
        Self { capacities }
    }

    /// Number of links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.capacities.len()
    }

    /// Whether the topology has no links.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.capacities.is_empty()
    }

    /// Capacity of link `id`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn capacity(&self, id: LinkId) -> f64 {
        self.capacities[id]
    }

    /// Validate that every route in `flows` references existing links.
    #[must_use]
    pub fn routes_valid(&self, flows: &[FlowSpec]) -> bool {
        flows.iter().all(|f| f.route.iter().all(|&l| l < self.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Topology::new(vec![10.0, 20.0]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.capacity(1), 20.0);
    }

    #[test]
    fn route_validation() {
        let t = Topology::new(vec![10.0]);
        assert!(t.routes_valid(&[FlowSpec::unit(vec![0])]));
        assert!(!t.routes_valid(&[FlowSpec::unit(vec![1])]));
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_route_rejected() {
        let _ = FlowSpec::unit(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_capacity_rejected() {
        let _ = Topology::new(vec![0.0]);
    }
}
