//! Utility evaluation of network allocations.

use crate::admission::admit_reservations;
use crate::maxmin::max_min_allocation;
use crate::topology::{FlowSpec, Topology};
use bevra_utility::Utility;

/// Total and per-flow utility of an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkUtility {
    /// Sum of `π(rate_i)` over all flows (blocked flows contribute 0).
    pub total: f64,
    /// `total / flow_count` — comparable to the paper's normalized `B`/`R`.
    pub per_flow: f64,
}

/// Utility of an arbitrary rate vector.
///
/// # Panics
///
/// Panics if `rates` and `flows` disagree in length.
#[must_use]
pub fn evaluate_allocation(
    flows: &[FlowSpec],
    rates: &[f64],
    utility: &dyn Utility,
) -> NetworkUtility {
    assert_eq!(flows.len(), rates.len(), "one rate per flow required");
    let total: f64 = rates.iter().map(|&r| utility.value(r)).sum();
    let per_flow = if flows.is_empty() { 0.0 } else { total / flows.len() as f64 };
    NetworkUtility { total, per_flow }
}

/// Best-effort network utility: max-min fair shares, everyone admitted.
#[must_use]
pub fn best_effort_utility(
    topology: &Topology,
    flows: &[FlowSpec],
    utility: &dyn Utility,
) -> NetworkUtility {
    let mut span = bevra_obs::span("net/best-effort");
    span.add_points(flows.len() as u64);
    let rates = max_min_allocation(topology, flows);
    evaluate_allocation(flows, &rates, utility)
}

/// Reservation network utility: path admission at the nominal demands, then
/// max-min fair division of each link among the *admitted* flows (admitted
/// flows may exceed their reservation when capacity is spare, mirroring the
/// single-link model where admitted flows share `C/min(k, k_max)`).
#[must_use]
pub fn reservation_utility(
    topology: &Topology,
    flows: &[FlowSpec],
    utility: &dyn Utility,
) -> NetworkUtility {
    let mut span = bevra_obs::span("net/reservation");
    span.add_points(flows.len() as u64);
    let outcome = admit_reservations(topology, flows);
    let admitted: Vec<FlowSpec> = flows
        .iter()
        .zip(&outcome.admitted)
        .filter(|(_, &a)| a)
        .map(|(f, _)| f.clone())
        .collect();
    let admitted_rates = max_min_allocation(topology, &admitted);
    let total: f64 = admitted_rates.iter().map(|&r| utility.value(r)).sum();
    let per_flow = if flows.is_empty() { 0.0 } else { total / flows.len() as f64 };
    NetworkUtility { total, per_flow }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_utility::{AdaptiveExp, Rigid};

    #[test]
    fn underload_architectures_agree() {
        let t = Topology::new(vec![10.0]);
        let flows: Vec<FlowSpec> = (0..5).map(|_| FlowSpec::unit(vec![0])).collect();
        let u = Rigid::unit();
        let b = best_effort_utility(&t, &flows, &u);
        let r = reservation_utility(&t, &flows, &u);
        assert!((b.total - 5.0).abs() < 1e-12);
        assert!((r.total - b.total).abs() < 1e-12);
    }

    #[test]
    fn overload_reservations_win_for_rigid() {
        let t = Topology::new(vec![10.0]);
        let flows: Vec<FlowSpec> = (0..25).map(|_| FlowSpec::unit(vec![0])).collect();
        let u = Rigid::unit();
        let b = best_effort_utility(&t, &flows, &u);
        let r = reservation_utility(&t, &flows, &u);
        // Best-effort: every flow gets 0.4 < 1 ⇒ zero utility; reservations
        // save 10 flows.
        assert_eq!(b.total, 0.0);
        assert!((r.total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn per_flow_normalization_counts_blocked_flows() {
        let t = Topology::new(vec![2.0]);
        let flows: Vec<FlowSpec> = (0..4).map(|_| FlowSpec::unit(vec![0])).collect();
        let r = reservation_utility(&t, &flows, &Rigid::unit());
        assert!((r.per_flow - 0.5).abs() < 1e-12, "2 of 4 admitted");
    }

    #[test]
    fn adaptive_softens_the_gap() {
        let t = Topology::new(vec![10.0]);
        let flows: Vec<FlowSpec> = (0..25).map(|_| FlowSpec::unit(vec![0])).collect();
        let u = AdaptiveExp::paper();
        let b = best_effort_utility(&t, &flows, &u);
        let r = reservation_utility(&t, &flows, &u);
        assert!(r.total > b.total, "reservations still ahead");
        assert!(b.total > 0.0, "but adaptive best-effort is not wiped out");
    }

    #[test]
    fn evaluate_allocation_empty() {
        let out = evaluate_allocation(&[], &[], &Rigid::unit());
        assert_eq!(out.total, 0.0);
        assert_eq!(out.per_flow, 0.0);
    }
}
