//! Guarded admission and evaluation: deadline + circuit-breaker fronting.
//!
//! The raw entry points ([`admit_reservations`],
//! [`best_effort_utility`], [`reservation_utility`]) compute
//! unconditionally. A long scenario sweep that has already blown its time
//! budget, or an evaluation pipeline whose inputs keep failing, should
//! instead *shed* work deterministically. [`NetGuard`] wraps the entry
//! points with the two resilience primitives:
//!
//! * a cooperative [`Deadline`] (ambient `BEVRA_DEADLINE_MS` via
//!   [`NetGuard::from_env`], or explicit) — once expired, every further
//!   call returns [`GuardError::DeadlineExpired`] without computing;
//! * a [`CircuitBreaker`] fed by those rejections — sustained deadline
//!   pressure trips it open, after which calls fail fast with
//!   [`GuardError::BreakerOpen`] even cheaper (no clock read), with the
//!   breaker's deterministic call-counted probe cadence re-checking the
//!   deadline periodically.
//!
//! Shedding is accounted, never silent: rejections bump the
//! `net/guard/deadline_expired` and `net/guard/breaker_rejected`
//! counters, and [`NetGuard::trips`] exposes the breaker ledger for the
//! caller's health record.

use crate::admission::{admit_reservations, AdmissionOutcome};
use crate::evaluate::{best_effort_utility, reservation_utility, NetworkUtility};
use crate::topology::{FlowSpec, Topology};
use bevra_obs::metrics;
use bevra_resilience::{BreakerState, CircuitBreaker, Deadline};
use bevra_utility::Utility;
use std::fmt;

/// Failures with which a call is shed by a [`NetGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardError {
    /// The guard's deadline has passed; the call was not computed.
    DeadlineExpired,
    /// The breaker is open after repeated shed calls; the call was
    /// rejected before even consulting the clock.
    BreakerOpen,
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::DeadlineExpired => write!(f, "deadline expired before the call"),
            GuardError::BreakerOpen => write!(f, "circuit breaker open (load shed)"),
        }
    }
}

/// Consecutive shed calls that trip the guard's breaker.
const FAILURE_THRESHOLD: u32 = 3;

/// Rejected calls between half-open probes once open.
const PROBE_AFTER: u32 = 16;

/// Deadline + breaker front for the network entry points (see module
/// docs). Construct per batch/sweep, not per call: the breaker's memory
/// is the point.
#[derive(Debug)]
pub struct NetGuard {
    deadline: Deadline,
    breaker: CircuitBreaker,
}

impl NetGuard {
    /// Guard with an explicit deadline.
    #[must_use]
    pub fn new(deadline: Deadline) -> Self {
        Self { deadline, breaker: CircuitBreaker::new(FAILURE_THRESHOLD, PROBE_AFTER) }
    }

    /// Guard on the ambient `BEVRA_DEADLINE_MS` (disarmed when unset;
    /// malformed values warn once, attributed to `bevra-net`, and
    /// disarm).
    #[must_use]
    pub fn from_env() -> Self {
        Self::new(Deadline::from_env("bevra-net"))
    }

    /// The admission gate: every guarded call passes through here.
    fn admit_call(&mut self) -> Result<(), GuardError> {
        if !self.breaker.allow() {
            metrics::counter("net/guard/breaker_rejected").inc();
            return Err(GuardError::BreakerOpen);
        }
        if self.deadline.expired() {
            metrics::counter("net/guard/deadline_expired").inc();
            self.breaker.record_failure();
            return Err(GuardError::DeadlineExpired);
        }
        self.breaker.record_success();
        Ok(())
    }

    /// Guarded [`admit_reservations`].
    ///
    /// # Errors
    ///
    /// [`GuardError`] when the call is shed (deadline passed or breaker
    /// open); the computation is skipped entirely.
    pub fn admit(
        &mut self,
        topology: &Topology,
        flows: &[FlowSpec],
    ) -> Result<AdmissionOutcome, GuardError> {
        self.admit_call()?;
        Ok(admit_reservations(topology, flows))
    }

    /// Guarded [`best_effort_utility`].
    ///
    /// # Errors
    ///
    /// [`GuardError`] when the call is shed.
    pub fn best_effort(
        &mut self,
        topology: &Topology,
        flows: &[FlowSpec],
        utility: &dyn Utility,
    ) -> Result<NetworkUtility, GuardError> {
        self.admit_call()?;
        Ok(best_effort_utility(topology, flows, utility))
    }

    /// Guarded [`reservation_utility`].
    ///
    /// # Errors
    ///
    /// [`GuardError`] when the call is shed.
    pub fn reservation(
        &mut self,
        topology: &Topology,
        flows: &[FlowSpec],
        utility: &dyn Utility,
    ) -> Result<NetworkUtility, GuardError> {
        self.admit_call()?;
        Ok(reservation_utility(topology, flows, utility))
    }

    /// Times the breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.breaker.trips()
    }

    /// Current breaker state, for health ledgers.
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_utility::Rigid;

    fn scenario() -> (Topology, Vec<FlowSpec>) {
        let t = Topology::new(vec![3.0]);
        let flows: Vec<FlowSpec> = (0..5).map(|_| FlowSpec::unit(vec![0])).collect();
        (t, flows)
    }

    #[test]
    fn disarmed_guard_is_transparent() {
        let (t, flows) = scenario();
        let mut g = NetGuard::new(Deadline::none());
        let guarded = g.admit(&t, &flows).expect("disarmed guard admits");
        let raw = admit_reservations(&t, &flows);
        assert_eq!(guarded.admitted, raw.admitted);
        let b = g.best_effort(&t, &flows, &Rigid::unit()).expect("best-effort passes");
        let r = g.reservation(&t, &flows, &Rigid::unit()).expect("reservation passes");
        assert!((b.total - best_effort_utility(&t, &flows, &Rigid::unit()).total).abs() < 1e-12);
        assert!((r.total - reservation_utility(&t, &flows, &Rigid::unit()).total).abs() < 1e-12);
        assert_eq!(g.trips(), 0);
    }

    #[test]
    fn expired_deadline_sheds_without_computing() {
        let (t, flows) = scenario();
        let mut g = NetGuard::new(Deadline::after_ms(0));
        assert_eq!(g.admit(&t, &flows).unwrap_err(), GuardError::DeadlineExpired);
        assert_eq!(
            g.best_effort(&t, &flows, &Rigid::unit()).unwrap_err(),
            GuardError::DeadlineExpired
        );
    }

    #[test]
    fn sustained_deadline_pressure_trips_the_breaker() {
        let (t, flows) = scenario();
        let mut g = NetGuard::new(Deadline::after_ms(0));
        let mut kinds = Vec::new();
        for _ in 0..10 {
            kinds.push(g.admit(&t, &flows).unwrap_err());
        }
        assert_eq!(g.trips(), 1, "three consecutive sheds open the breaker");
        assert!(kinds.contains(&GuardError::DeadlineExpired));
        assert!(
            kinds.iter().filter(|k| **k == GuardError::BreakerOpen).count() >= 5,
            "once open most calls are rejected without a clock read: {kinds:?}"
        );
        assert_eq!(g.breaker_state(), BreakerState::Open);
    }

    #[test]
    fn guard_errors_render() {
        assert!(GuardError::DeadlineExpired.to_string().contains("deadline"));
        assert!(GuardError::BreakerOpen.to_string().contains("breaker"));
    }
}
