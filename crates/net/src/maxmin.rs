//! Max-min fair bandwidth allocation by progressive filling.
//!
//! On a single link, best-effort equal sharing gives every flow `C/k` — the
//! paper's model. On a network the canonical generalization is **max-min
//! fairness**: raise every flow's rate uniformly until some link saturates,
//! freeze the flows crossing it at that link's fair share, remove the
//! saturated link's residual capacity, and repeat. The result is the unique
//! allocation in which no flow's rate can be raised without lowering that of
//! a flow with an equal or smaller rate.

use crate::topology::{FlowSpec, Topology};

/// Compute the max-min fair allocation. Returns one rate per flow.
///
/// Progressive filling: at each round the bottleneck link is the one with
/// the smallest `residual / unfrozen_flow_count`; its flows freeze at that
/// share. Runs in `O(L·F)` per round and at most `L` rounds.
///
/// Flows with empty rate (no route across a live link — impossible by
/// construction) never occur; a topology/flow mismatch panics.
///
/// # Panics
///
/// Panics if any route references a nonexistent link.
#[must_use]
pub fn max_min_allocation(topology: &Topology, flows: &[FlowSpec]) -> Vec<f64> {
    assert!(topology.routes_valid(flows), "route references nonexistent link");
    let n_links = topology.len();
    let mut residual: Vec<f64> = (0..n_links).map(|l| topology.capacity(l)).collect();
    let mut live_flows_on: Vec<usize> = vec![0; n_links];
    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    for f in flows {
        for &l in &f.route {
            live_flows_on[l] += 1;
        }
    }
    loop {
        // Find the tightest link among those carrying live flows.
        let mut bottleneck: Option<(usize, f64)> = None;
        for l in 0..n_links {
            if live_flows_on[l] == 0 {
                continue;
            }
            let share = residual[l] / live_flows_on[l] as f64;
            match bottleneck {
                Some((_, s)) if s <= share => {}
                _ => bottleneck = Some((l, share)),
            }
        }
        let Some((bl, share)) = bottleneck else {
            break; // all flows frozen
        };
        // Freeze every live flow crossing the bottleneck at the fair share.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] || !f.route.contains(&bl) {
                continue;
            }
            frozen[i] = true;
            rate[i] = share;
            for &l in &f.route {
                residual[l] -= share;
                live_flows_on[l] -= 1;
            }
        }
        // Numerical hygiene: clamp tiny negative residuals.
        residual[bl] = residual[bl].max(0.0);
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_equal_split() {
        let t = Topology::new(vec![12.0]);
        let flows: Vec<FlowSpec> = (0..4).map(|_| FlowSpec::unit(vec![0])).collect();
        let rates = max_min_allocation(&t, &flows);
        for r in rates {
            assert!((r - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_parking_lot() {
        // Two links of capacity 1; one long flow crosses both, one short
        // flow on each link. Max-min: every flow gets 1/2.
        let t = Topology::new(vec![1.0, 1.0]);
        let flows = vec![
            FlowSpec::unit(vec![0, 1]),
            FlowSpec::unit(vec![0]),
            FlowSpec::unit(vec![1]),
        ];
        let rates = max_min_allocation(&t, &flows);
        for r in &rates {
            assert!((r - 0.5).abs() < 1e-12, "{rates:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck_redistributes() {
        // Link 0 capacity 1 shared by flows A (0 only) and B (0 and 1);
        // link 1 capacity 10 also carries flow C (1 only). A and B freeze
        // at 1/2; C then takes the rest of link 1: 9.5.
        let t = Topology::new(vec![1.0, 10.0]);
        let flows = vec![
            FlowSpec::unit(vec![0]),
            FlowSpec::unit(vec![0, 1]),
            FlowSpec::unit(vec![1]),
        ];
        let rates = max_min_allocation(&t, &flows);
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
        assert!((rates[2] - 9.5).abs() < 1e-12);
    }

    #[test]
    fn allocation_is_feasible_and_saturates_bottlenecks() {
        let t = Topology::new(vec![4.0, 6.0, 2.0]);
        let flows = vec![
            FlowSpec::unit(vec![0, 1]),
            FlowSpec::unit(vec![1, 2]),
            FlowSpec::unit(vec![0]),
            FlowSpec::unit(vec![2]),
            FlowSpec::unit(vec![1]),
        ];
        let rates = max_min_allocation(&t, &flows);
        // Feasibility on every link.
        for l in 0..t.len() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            assert!(used <= t.capacity(l) + 1e-9, "link {l} overloaded: {used}");
        }
        // Max-min property (no flow can be raised without hurting an equal
        // or smaller one) implies at least one link is saturated.
        let saturated = (0..t.len()).any(|l| {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.route.contains(&l))
                .map(|(_, &r)| r)
                .sum();
            (used - t.capacity(l)).abs() < 1e-9
        });
        assert!(saturated);
    }

    #[test]
    fn no_flows_no_rates() {
        let t = Topology::new(vec![1.0]);
        assert!(max_min_allocation(&t, &[]).is_empty());
    }
}
