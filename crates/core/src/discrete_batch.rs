//! Grid-batched evaluation of the discrete model over a sorted capacity
//! grid.
//!
//! The per-point API ([`DiscreteModel::best_effort`] & friends) walks the
//! whole load table once *per capacity*: a G-point sweep over a table of K
//! entries costs G·K utility evaluations with the table streamed G times.
//! This module interchanges the loops — **outer `k` over the load table,
//! inner contiguous pass over the capacity grid** — so the table (its pmf
//! and prefix sums) is traversed once, the inner loop works on contiguous
//! `f64` arrays (auto-vectorization-friendly SoA layout), and a
//! **per-capacity early-exit frontier** retires small capacities as soon as
//! their remaining tail is provably negligible (`tail_mean_above` is O(1),
//! so the exit test costs nothing extra).
//!
//! Two evaluation modes are offered ([`PiEval`]):
//!
//! * [`PiEval::Exact`] — the default. Per retired-lane arithmetic is an
//!   **op-for-op mirror of the scalar path**: same `π` calls, same
//!   [`NeumaierSum`] accumulation order, same early-exit test and
//!   tail-midpoint correction, same fault-injection wrapping. Results are
//!   bitwise identical to calling [`DiscreteModel::best_effort`] /
//!   [`DiscreteModel::reservation_with_kmax`] point by point — the
//!   workspace's differential ladder and golden corpus rely on this.
//! * [`PiEval::Fast`] — opt-in. Exponential-family utilities evaluate `π`
//!   through [`Utility::value_slice_fast`] (a branch-free polynomial
//!   `1 − e^{−x}` that compiles to packed SIMD), the Neumaier update is a
//!   branch-free select over SoA accumulators, and the early-exit bound
//!   truncates at [`FAST_TRUNC_REL`] of the total instead of the exact
//!   path's `1e-15` (the dominant speedup on heavy algebraic tails).
//!   Deterministic (same input bits ⇒ same output bits on every platform)
//!   but only tolerance-close (≤ 1e-13 relative) to the scalar path; the
//!   property suite budgets the difference.
//! * [`PiEval::Portable`] — opt-in. Every `π` evaluation (`k_max` argmax,
//!   `B`, and `R`) goes through [`Utility::value_portable`], the scalar
//!   branch-free polynomial with no libm dependence: results are
//!   bit-identical across operating systems, libm versions, and
//!   architectures, at the cost of the same ≤ 1e-13 relative distance from
//!   the scalar path as the fast mode. This is what the engine's
//!   `deterministic-portable` backend runs.
//!
//! The admission sweep exploits monotonicity: `k_max(C)` is nondecreasing
//! in `C` (more capacity never lowers the optimal admission count), so for
//! a sorted grid the argmax search for point `i+1` starts from point `i`'s
//! result instead of from 1 — amortized O(K + G·log) instead of G
//! independent O(log²) searches. [`bevra_num::argmax_unimodal_u64`] breaks
//! ties toward the smallest maximizer regardless of its lower bound, so
//! the carried bracket returns bitwise-identical thresholds (the
//! monotonicity invariant itself is property- and mutation-tested in
//! `tests/batch_parity.rs`).

use crate::discrete::DiscreteModel;
use bevra_num::{argmax_unimodal_u64, kspan_total, NeumaierSum, KSPAN_ACCS};
use bevra_utility::{total_utility, Utility};

/// How the batched kernels evaluate `π` (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PiEval {
    /// Bitwise mirror of the scalar per-point path (default).
    Exact,
    /// Vectorized polynomial `π`; deterministic, ULP-budgeted, not bitwise.
    Fast,
    /// Scalar polynomial `π` ([`Utility::value_portable`]) for **every**
    /// evaluation, including the `k_max` argmax and the reservation head:
    /// bit-identical across platforms and libm versions, ULP-budgeted
    /// against the scalar path.
    Portable,
}

/// Results of a batched sweep: one entry per capacity, in input order.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSweep {
    /// Admission threshold `k_max(C)` per capacity (`None` = elastic /
    /// never deny), identical to [`DiscreteModel::k_max`].
    pub k_max: Vec<Option<u64>>,
    /// Normalized best-effort utility `B(C)` per capacity.
    pub best_effort: Vec<f64>,
    /// Normalized reservation utility `R(C)` per capacity.
    pub reservation: Vec<f64>,
}

/// Check the sorted-ascending grid precondition shared by every kernel.
///
/// NaN capacities are rejected outright (they cannot be ordered); ±∞ and
/// nonpositive values are fine and handled exactly like the scalar path.
fn assert_sorted(capacities: &[f64]) {
    assert!(
        capacities.iter().all(|c| !c.is_nan()),
        "capacity grid must not contain NaN"
    );
    assert!(
        capacities.windows(2).all(|w| w[0] <= w[1]),
        "capacity grid must be sorted ascending"
    );
}

/// Batched [`DiscreteModel::k_max`] over a sorted capacity grid with a
/// carried argmax bracket (see module docs).
///
/// # Panics
///
/// Panics if `capacities` is not sorted ascending or contains NaN.
pub fn k_max_grid<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
) -> Vec<Option<u64>> {
    k_max_grid_inner(model, capacities, |k| k, PiEval::Exact)
}

/// [`k_max_grid`] with an explicit `π` evaluation mode.
///
/// [`PiEval::Exact`] and [`PiEval::Fast`] both search over the scalar
/// `V(k) = k·π(C/k)` (the fast π is slice-based and never feeds the
/// argmax, so the thresholds are bitwise the scalar ones);
/// [`PiEval::Portable`] searches over `k·value_portable(C/k)`, which can
/// differ from the scalar threshold only on value plateaus where the two
/// `π` variants break an exact tie differently.
///
/// # Panics
///
/// Panics if `capacities` is not sorted ascending or contains NaN.
pub fn k_max_grid_pi<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
) -> Vec<Option<u64>> {
    k_max_grid_inner(model, capacities, |k| k, mode)
}

/// [`k_max_grid`] with an injectable carry perturbation.
///
/// The mutation tests use this to prove the carried bracket actually
/// matters: nudging the carried lower bound above the true argmax (e.g.
/// `|k| k + 1` on a plateau grid) must produce detectably wrong thresholds.
/// Production code always uses the identity nudge via [`k_max_grid`].
#[doc(hidden)]
pub fn k_max_grid_with_carry_nudge<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    nudge: impl Fn(u64) -> u64,
) -> Vec<Option<u64>> {
    k_max_grid_inner(model, capacities, nudge, PiEval::Exact)
}

fn k_max_grid_inner<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    nudge: impl Fn(u64) -> u64,
    mode: PiEval,
) -> Vec<Option<u64>> {
    assert_sorted(capacities);
    let cap_override = model.admission_cap();
    let u = model.utility();
    // The objective the argmax searches: scalar V(k) for Exact/Fast,
    // portable-π V(k) for Portable (k ≥ 1 always — the bracket never
    // probes 0, matching `total_utility`'s k = 0 short-circuit).
    let v = |k: u64, c: f64| match mode {
        PiEval::Exact | PiEval::Fast => total_utility(u, k, c),
        PiEval::Portable => k as f64 * u.value_portable(c / k as f64),
    };
    let mut out = Vec::with_capacity(capacities.len());
    // Carried lower bound for the argmax search. k_max(C) is nondecreasing
    // in C, and the search returns the smallest maximizer independent of
    // where the bracket starts (as long as it starts at or below it), so
    // seeding with the previous point's threshold is exact, not heuristic.
    let mut lo = 1u64;
    for &c in capacities {
        let km = if c <= 0.0 {
            None
        } else if let Some(cap) = cap_override {
            Some(cap)
        } else {
            match argmax_unimodal_u64(|k| v(k, c), lo, 1u64 << 40) {
                Ok(k) => {
                    lo = nudge(k).max(1);
                    Some(k)
                }
                Err(_) => None,
            }
        };
        out.push(km);
    }
    out
}

/// Batched [`DiscreteModel::best_effort`] over a sorted capacity grid.
///
/// One loop-interchanged pass over the load table computes `B(C)` for every
/// capacity; [`PiEval::Exact`] is bitwise identical to the scalar path
/// (including its fault-injection site `eval/best_effort`).
///
/// # Panics
///
/// Panics if `capacities` is not sorted ascending or contains NaN.
pub fn best_effort_grid<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
) -> Vec<f64> {
    assert_sorted(capacities);
    let raw = match mode {
        PiEval::Exact => best_effort_grid_pointwise(model, capacities, U::value),
        PiEval::Fast => best_effort_grid_fast(model, capacities),
        PiEval::Portable => best_effort_grid_pointwise(model, capacities, U::value_portable),
    };
    capacities
        .iter()
        .zip(raw)
        .map(|(&c, v)| {
            if c <= 0.0 {
                // Scalar path returns before reaching its fault site.
                0.0
            } else {
                bevra_faults::corrupt_f64("eval/best_effort", c.to_bits(), v)
            }
        })
        .collect()
}

/// Pointwise-π kernel: outer `k`, inner scalar-mirrored lane update.
///
/// `pi_of` selects the evaluation ([`Utility::value`] for the exact mode,
/// [`Utility::value_portable`] for the portable mode); everything else —
/// accumulation order, early-exit test, tail-midpoint correction — is an
/// op-for-op mirror of the scalar path, so with `U::value` the result is
/// bitwise the scalar one.
fn best_effort_grid_pointwise<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    pi_of: impl Fn(&U, f64) -> f64,
) -> Vec<f64> {
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let g = capacities.len();
    let len = load.len() as u64;

    let mut acc = vec![NeumaierSum::new(); g];
    let mut active: Vec<bool> = capacities.iter().map(|&c| c > 0.0).collect();
    let mut alive = active.iter().filter(|&&a| a).count();
    // Lanes exit smallest-capacity-first, so finished lanes form a growing
    // prefix; `start` skips it. Mid-grid holes (possible but rare) are
    // handled by the per-lane `active` flag.
    let mut start = 0usize;

    for k in 1..len {
        if alive == 0 {
            break;
        }
        let p = load.pmf(k);
        let kf = k as f64;
        let check = k % 64 == 0;
        let tail_mean = load.tail_mean_above(k);
        for i in start..g {
            if !active[i] {
                continue;
            }
            // Mirror of `best_effort_uninstrumented`'s loop body, per lane.
            let pi = pi_of(u, capacities[i] / kf);
            if p > 0.0 {
                acc[i].add(p * kf * pi);
            }
            if check || pi == 0.0 {
                let bound = pi * tail_mean;
                if bound <= 1e-15 * acc[i].total().abs().max(1e-300) {
                    acc[i].add(0.5 * bound);
                    active[i] = false;
                    alive -= 1;
                }
            }
        }
        while start < g && !active[start] {
            start += 1;
        }
    }
    acc.into_iter().map(|a| a.total() / kbar).collect()
}

/// Truncation threshold for the fast kernel's early-exit bound, relative
/// to the accumulated total.
///
/// The exact path retires a lane when the provable tail bound drops below
/// `1e-15` of the total (mirroring the scalar path bit for bit). The fast
/// path's contract is looser — deterministic but only tolerance-close
/// (≤ `1e-13` relative, see `fast_sweep_is_ulp_close` and the engine's
/// budget test) — so it may stop as soon as the bound reaches `1e-13`:
/// the tail-midpoint correction halves the residual to ≤ `5e-14` relative,
/// inside the contract with 2× margin. For heavy algebraic tails, where
/// the bound decays like `k^{−(z+1)}`, retiring at `ε` instead of `1e-15`
/// shortens the walk by `(1e-15/ε)^{1/(z+1)}` — about 3× for the paper's
/// z = 3 family — and is where most of the fast kernel's speedup over the
/// scalar path comes from on tails the `1e-15` bound cannot cut.
pub const FAST_TRUNC_REL: f64 = 1e-13;

/// Fast-mode kernel: vectorized `π` via [`Utility::value_slice_fast`] and a
/// branch-free masked Neumaier update over SoA accumulators.
fn best_effort_grid_fast<U: Utility>(model: &DiscreteModel<U>, capacities: &[f64]) -> Vec<f64> {
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let g = capacities.len();
    let len = load.len() as u64;

    let mut sums = vec![0.0f64; g];
    let mut comps = vec![0.0f64; g];
    // 1.0 = live lane, 0.0 = retired; multiplying the term by the mask is
    // bit-neutral for live lanes and adds an exact 0.0 to retired ones
    // (Neumaier on a nonnegative accumulator is unchanged by adding +0.0).
    let mut mask: Vec<f64> = capacities.iter().map(|&c| if c > 0.0 { 1.0 } else { 0.0 }).collect();
    let mut alive = mask.iter().filter(|&&m| m != 0.0).count();
    let mut start = 0usize;
    let mut bs = vec![0.0f64; g];
    let mut pis = vec![0.0f64; g];

    for k in 1..len {
        if alive == 0 {
            break;
        }
        let p = load.pmf(k);
        let kf = k as f64;
        let scale = if p > 0.0 { p * kf } else { 0.0 };

        // Phases 1+2: π(C/k) over the live window in one dispatched pass.
        // Families that can absorb the bandwidth division into their
        // exponent override `value_capacity_slice_fast` (the adaptive
        // family saves a packed divide per lane); the default divides
        // into `bs` and forwards to `value_slice_fast`.
        u.value_capacity_slice_fast(
            &capacities[start..g],
            kf,
            &mut bs[start..g],
            &mut pis[start..g],
        );
        // Phase 3: masked branch-free Neumaier accumulation (packed,
        // AVX2-dispatched, bitwise equal to `NeumaierSum::add` per lane).
        bevra_num::masked_neumaier_step(
            scale,
            &pis[start..g],
            &mask[start..g],
            &mut sums[start..g],
            &mut comps[start..g],
        );

        // Phase 4: early-exit frontier — same bound as the scalar path.
        // Capacities are sorted ascending, so for fixed `k` the bandwidths
        // and hence the `π` values are nondecreasing across the window:
        // if any lane underflowed to `π = 0` then so did the frontier
        // lane, and probing `pis[start]` alone suffices (a retired frontier
        // lane can only over-trigger the check, which is harmless).
        let need_check = k % 64 == 0 || pis[start] == 0.0;
        if need_check {
            let tail_mean = load.tail_mean_above(k);
            let periodic = k % 64 == 0;
            for i in start..g {
                if mask[i] != 0.0 && (periodic || pis[i] == 0.0) {
                    let pi = pis[i];
                    let bound = pi * tail_mean;
                    let total = sums[i] + comps[i];
                    if bound <= FAST_TRUNC_REL * total.abs().max(1e-300) {
                        // Retire the lane with the tail-midpoint correction.
                        let v = 0.5 * bound;
                        let s = sums[i];
                        let t = s + v;
                        let corr =
                            if s.abs() >= v.abs() { (s - t) + v } else { (v - t) + s };
                        comps[i] += corr;
                        sums[i] = t;
                        mask[i] = 0.0;
                        alive -= 1;
                    }
                }
            }
            while start < g && mask[start] == 0.0 {
                start += 1;
            }
        }
    }
    (0..g).map(|i| (sums[i] + comps[i]) / kbar).collect()
}

/// Batched [`DiscreteModel::reservation_with_kmax`] over a sorted grid.
///
/// `k_maxes[i]` must be what [`DiscreteModel::k_max`] returns for
/// `capacities[i]` (use [`k_max_grid`]); `best_efforts[i]` must be the
/// already-instrumented best-effort values (use [`best_effort_grid`]) —
/// elastic lanes (`k_max = None`) reuse them, mirroring the scalar
/// delegation `R(C) = B(C)`. Evaluates `π` exactly — the admitted head is
/// O(k_max) per lane, far too short for vectorization to matter; use
/// [`reservation_grid_pi`] to select the portable `π` instead.
///
/// # Panics
///
/// Panics if the slice lengths differ, or if `capacities` is not sorted
/// ascending or contains NaN.
pub fn reservation_grid<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    k_maxes: &[Option<u64>],
    best_efforts: &[f64],
) -> Vec<f64> {
    reservation_grid_pi(model, capacities, k_maxes, best_efforts, PiEval::Exact)
}

/// [`reservation_grid`] with an explicit `π` evaluation mode.
///
/// [`PiEval::Exact`] and [`PiEval::Fast`] both evaluate the admitted head
/// with the scalar [`Utility::value`] (the fast π is slice-based and
/// never feeds `R`, so fast-mode reservations are bitwise the scalar
/// ones); [`PiEval::Portable`] uses [`Utility::value_portable`]
/// throughout.
///
/// # Panics
///
/// Panics if the slice lengths differ, or if `capacities` is not sorted
/// ascending or contains NaN.
pub fn reservation_grid_pi<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    k_maxes: &[Option<u64>],
    best_efforts: &[f64],
    mode: PiEval,
) -> Vec<f64> {
    assert_sorted(capacities);
    let pi_of = |u: &U, b: f64| match mode {
        PiEval::Exact | PiEval::Fast => u.value(b),
        PiEval::Portable => u.value_portable(b),
    };
    assert_eq!(capacities.len(), k_maxes.len(), "k_max table length mismatch");
    assert_eq!(capacities.len(), best_efforts.len(), "best-effort table length mismatch");
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let g = capacities.len();
    let len_m1 = load.len() as u64 - 1;

    // Lanes with a finite positive threshold sum an admitted head of the
    // table; everything else short-circuits exactly like the scalar path.
    let mut acc = vec![NeumaierSum::new(); g];
    let mut cap_k = vec![0u64; g];
    let mut max_cap_k = 0u64;
    for i in 0..g {
        if capacities[i] > 0.0 {
            if let Some(m) = k_maxes[i] {
                if m > 0 {
                    cap_k[i] = m.min(len_m1);
                    max_cap_k = max_cap_k.max(cap_k[i]);
                }
            }
        }
    }

    for k in 1..=max_cap_k {
        let p = load.pmf(k);
        let kf = k as f64;
        for i in 0..g {
            if k <= cap_k[i] && p > 0.0 {
                acc[i].add(p * kf * pi_of(u, capacities[i] / kf));
            }
        }
    }

    (0..g)
        .map(|i| {
            let c = capacities[i];
            let raw = if c <= 0.0 {
                0.0
            } else {
                match k_maxes[i] {
                    // Elastic: the architectures coincide; reuse the
                    // (already fault-wrapped) best-effort value, exactly as
                    // the scalar path delegates to `best_effort`.
                    None => best_efforts[i],
                    Some(0) => 0.0,
                    Some(m) => {
                        let overload_mass = load.tail_mass_above(cap_k[i]);
                        if overload_mass > 0.0 {
                            acc[i].add(m as f64 * pi_of(u, c / m as f64) * overload_mass);
                        }
                        acc[i].total() / kbar
                    }
                }
            };
            // The scalar `reservation_with_kmax` wraps unconditionally.
            bevra_faults::corrupt_f64("eval/reservation", c.to_bits(), raw)
        })
        .collect()
}

/// Full batched sweep: `k_max`, `B`, and `R` for every capacity in one
/// table pass plus an O(Σ k_max) head pass.
///
/// Equivalent to calling [`DiscreteModel::k_max`],
/// [`DiscreteModel::best_effort`], and [`DiscreteModel::reservation`] per
/// point — bitwise so under [`PiEval::Exact`].
///
/// # Panics
///
/// Panics if `capacities` is not sorted ascending or contains NaN.
pub fn sweep_grid<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
) -> GridSweep {
    let k_max = k_max_grid_pi(model, capacities, mode);
    let best_effort = best_effort_grid(model, capacities, mode);
    let reservation = reservation_grid_pi(model, capacities, &k_max, &best_effort, mode);
    GridSweep { k_max, best_effort, reservation }
}

/// Fused B+R sweep: one table traversal serves both architectures.
///
/// The reservation head `Σ_{k ≤ k_max} P(k)·k·π(C/k)` is a **prefix of the
/// best-effort series** — the same terms, in the same order. The unfused
/// composition ([`sweep_grid`]) nonetheless walks the admitted head a second
/// time; this kernel evaluates each `(k, C)` pair once and feeds both
/// accumulators:
///
/// * [`PiEval::Exact`] / [`PiEval::Portable`] — a pointwise fused loop that
///   mirrors the unfused pair op for op (same `π` calls, same
///   [`NeumaierSum`] order per accumulator, same early-exit and fault
///   wrapping): results are **bitwise identical** to [`sweep_grid`] in the
///   same mode, so pinned digests and the golden corpus are unaffected.
/// * [`PiEval::Fast`] — if the utility implements
///   [`Utility::accumulate_pi_kspan_fast`], each capacity lane walks the
///   table in one vectorized k-span pass ([`bevra_num::KSPAN_ACCS`] strided
///   sub-accumulators, reduced-degree polynomial, factored exponent
///   denominator) with the R head taken as a **free snapshot** of the
///   accumulator state at `k = k_max(C)`. Deterministic and bitwise
///   identical across SIMD tiers, tolerance-close (≤ [`FAST_TRUNC_REL`]
///   relative) to the scalar path — same contract as the unfused fast
///   kernel, but *not* bitwise equal to it (different summation grouping).
///   Utilities without the hook fall back to the unfused fast composition,
///   bitwise that pair.
///
/// # Panics
///
/// Panics if `capacities` is not sorted ascending or contains NaN.
pub fn sweep_grid_fused<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
) -> GridSweep {
    sweep_grid_fused_inner(model, capacities, mode, |k| k)
}

/// [`sweep_grid_fused`] with an injectable perturbation of the fast path's
/// R/B span split point.
///
/// Mutation tests use this to prove the carried-accumulator snapshot is
/// load-bearing: nudging the split off `k_max(C)` must detectably corrupt
/// the reservation values while production (identity nudge) stays correct.
#[doc(hidden)]
pub fn sweep_grid_fused_with_split_nudge<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
    nudge: impl Fn(u64) -> u64,
) -> GridSweep {
    sweep_grid_fused_inner(model, capacities, mode, nudge)
}

fn sweep_grid_fused_inner<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    mode: PiEval,
    nudge: impl Fn(u64) -> u64,
) -> GridSweep {
    assert_sorted(capacities);
    let k_max = k_max_grid_pi(model, capacities, mode);
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let g = capacities.len();
    let len_m1 = load.len() as u64 - 1;

    // Admitted-head lengths, clamped to the table exactly like
    // `reservation_grid_pi`.
    let mut cap_k = vec![0u64; g];
    for i in 0..g {
        if capacities[i] > 0.0 {
            if let Some(m) = k_max[i] {
                if m > 0 {
                    cap_k[i] = m.min(len_m1);
                }
            }
        }
    }

    enum Heads {
        /// Per-lane Neumaier accumulators, finalized exactly like the
        /// unfused reservation kernel (bitwise modes).
        Pointwise(Vec<NeumaierSum>),
        /// Per-lane snapshot totals from the k-span walk (fast mode).
        Snapshot(Vec<f64>),
    }

    let (best_raw, heads) = match mode {
        PiEval::Exact => {
            let (b, r) = fused_grid_pointwise(model, capacities, &cap_k, U::value);
            (b, Heads::Pointwise(r))
        }
        PiEval::Portable => {
            let (b, r) = fused_grid_pointwise(model, capacities, &cap_k, U::value_portable);
            (b, Heads::Pointwise(r))
        }
        PiEval::Fast => {
            // Capability probe: an empty span accumulates nothing, so the
            // return flag is the only observable effect.
            let mut s = [0.0; KSPAN_ACCS];
            let mut c = [0.0; KSPAN_ACCS];
            if u.accumulate_pi_kspan_fast(1.0, 1.0, &[], &mut s, &mut c) {
                let (b, r) = fused_grid_kspan(model, capacities, &cap_k, &nudge);
                (b, Heads::Snapshot(r))
            } else {
                // No k-span kernel for this family: the unfused fast
                // composition is already the best available pass, and
                // reusing it keeps the results bitwise that pair.
                let best_effort = best_effort_grid(model, capacities, PiEval::Fast);
                let reservation =
                    reservation_grid_pi(model, capacities, &k_max, &best_effort, PiEval::Fast);
                return GridSweep { k_max, best_effort, reservation };
            }
        }
    };

    // Finalize B then R, in lane order — the same fault-wrapping order as
    // the unfused composition, so `@at=N` fault ordinals line up.
    let best_effort: Vec<f64> = capacities
        .iter()
        .zip(best_raw)
        .map(|(&c, v)| {
            if c <= 0.0 {
                0.0
            } else {
                bevra_faults::corrupt_f64("eval/best_effort", c.to_bits(), v)
            }
        })
        .collect();

    let pi_scalar = |b: f64| match mode {
        PiEval::Exact | PiEval::Fast => u.value(b),
        PiEval::Portable => u.value_portable(b),
    };
    let mut heads = heads;
    let reservation: Vec<f64> = (0..g)
        .map(|i| {
            let c = capacities[i];
            let raw = if c <= 0.0 {
                0.0
            } else {
                match k_max[i] {
                    None => best_effort[i],
                    Some(0) => 0.0,
                    Some(m) => {
                        let overload_mass = load.tail_mass_above(cap_k[i]);
                        let tail = if overload_mass > 0.0 {
                            m as f64 * pi_scalar(c / m as f64) * overload_mass
                        } else {
                            0.0
                        };
                        match &mut heads {
                            // Mirror `reservation_grid_pi`: conditional
                            // `add` then `total`, bit for bit.
                            Heads::Pointwise(accs) => {
                                if overload_mass > 0.0 {
                                    accs[i].add(tail);
                                }
                                accs[i].total() / kbar
                            }
                            Heads::Snapshot(hs) => (hs[i] + tail) / kbar,
                        }
                    }
                }
            };
            bevra_faults::corrupt_f64("eval/reservation", c.to_bits(), raw)
        })
        .collect();

    GridSweep { k_max, best_effort, reservation }
}

/// Pointwise fused kernel (exact/portable modes): one `π(C/k)` evaluation
/// per `(k, lane)` feeds both the best-effort accumulator (with the scalar
/// path's early-exit frontier) and the reservation-head accumulator (for
/// `k ≤ k_max(C)`). `π` is pure, so sharing the evaluation leaves every
/// accumulated bit identical to the unfused pair.
fn fused_grid_pointwise<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    cap_k: &[u64],
    pi_of: impl Fn(&U, f64) -> f64,
) -> (Vec<f64>, Vec<NeumaierSum>) {
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let g = capacities.len();
    let len = load.len() as u64;
    let max_cap_k = cap_k.iter().copied().max().unwrap_or(0);

    let mut acc_b = vec![NeumaierSum::new(); g];
    let mut acc_r = vec![NeumaierSum::new(); g];
    let mut active: Vec<bool> = capacities.iter().map(|&c| c > 0.0).collect();
    let mut alive = active.iter().filter(|&&a| a).count();
    let mut start = 0usize;

    for k in 1..len {
        if alive == 0 && k > max_cap_k {
            break;
        }
        let p = load.pmf(k);
        let kf = k as f64;
        let check = k % 64 == 0;
        let tail_mean = load.tail_mean_above(k);
        for i in start..g {
            let b_live = active[i];
            let r_live = k <= cap_k[i];
            if !b_live && !r_live {
                continue;
            }
            let pi = pi_of(u, capacities[i] / kf);
            if r_live && p > 0.0 {
                acc_r[i].add(p * kf * pi);
            }
            if b_live {
                if p > 0.0 {
                    acc_b[i].add(p * kf * pi);
                }
                if check || pi == 0.0 {
                    let bound = pi * tail_mean;
                    if bound <= 1e-15 * acc_b[i].total().abs().max(1e-300) {
                        acc_b[i].add(0.5 * bound);
                        active[i] = false;
                        alive -= 1;
                    }
                }
            }
        }
        while start < g && !active[start] && k >= cap_k[start] {
            start += 1;
        }
    }
    (acc_b.into_iter().map(|a| a.total() / kbar).collect(), acc_r)
}

/// Span length between early-exit probes in the fast fused kernel.
///
/// Block boundaries are the only places the fast k-span walk checks its
/// tail bound; a shorter block exits sooner on light tails, a longer one
/// amortizes the bound arithmetic better on heavy tails where no early exit
/// ever fires (the paper's z = 3 family walks every table entry — see
/// EXPERIMENTS.md). 512 keeps the light-tail overshoot below the cost of
/// one extra bound probe per lane.
const KSPAN_BLOCK: u64 = 512;

/// Fast fused kernel: per-lane vectorized k-span walk with the reservation
/// head captured as an accumulator snapshot at the `k_max` split.
///
/// Returns `(B_raw, R_head_raw)` where `B_raw` is normalized (`/k̄`, same
/// contract as [`best_effort_grid_fast`]) and `R_head_raw` is the
/// *unnormalized* admitted-head series, to be finished with the overload
/// tail term by the caller.
fn fused_grid_kspan<U: Utility>(
    model: &DiscreteModel<U>,
    capacities: &[f64],
    cap_k: &[u64],
    nudge: &impl Fn(u64) -> u64,
) -> (Vec<f64>, Vec<f64>) {
    let load = model.load();
    let u = model.utility();
    let kbar = load.mean();
    let pmfs = load.pmf_values();
    let len = pmfs.len() as u64;
    let g = capacities.len();

    let mut best = vec![0.0f64; g];
    let mut heads = vec![0.0f64; g];
    for i in 0..g {
        let c = capacities[i];
        if c <= 0.0 {
            continue;
        }
        let mut sums = [0.0f64; KSPAN_ACCS];
        let mut comps = [0.0f64; KSPAN_ACCS];
        // R head: the B series prefix up to the (possibly nudged) split.
        let split = nudge(cap_k[i]).min(len - 1);
        if split >= 1 {
            u.accumulate_pi_kspan_fast(c, 1.0, &pmfs[1..=split as usize], &mut sums, &mut comps);
        }
        heads[i] = kspan_total(&sums, &comps);
        // B continues in the same accumulators — the head terms are shared.
        let mut k = split + 1;
        let mut total = heads[i];
        while k < len {
            let stop = (k + KSPAN_BLOCK).min(len);
            u.accumulate_pi_kspan_fast(
                c,
                k as f64,
                &pmfs[k as usize..stop as usize],
                &mut sums,
                &mut comps,
            );
            k = stop;
            total = kspan_total(&sums, &comps);
            if k < len {
                // Same bound as the unfused kernels: remaining terms are
                // ≤ π(C/k)·Σ_{k'≥k} k'·P(k'), probed at block boundaries
                // only. Scalar π here — the bound is tolerance arithmetic,
                // not part of the accumulated value.
                let bound = u.value(c / k as f64) * load.tail_mean_above(k - 1);
                if bound <= FAST_TRUNC_REL * total.abs().max(1e-300) {
                    total += 0.5 * bound;
                    break;
                }
            }
        }
        best[i] = total / kbar;
    }
    (best, heads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, ExponentialElastic, Rigid};
    use std::sync::Arc;

    fn model_rigid() -> DiscreteModel<Rigid> {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        DiscreteModel::new(load, Rigid::unit())
    }

    #[test]
    fn exact_sweep_is_bitwise_equal_to_scalar() {
        let m = model_rigid();
        let caps = [-1.0, 0.0, 0.5, 2.0, 5.0, 10.0, 15.0, 20.0, 40.0, 80.0];
        let got = sweep_grid(&m, &caps, PiEval::Exact);
        for (i, &c) in caps.iter().enumerate() {
            assert_eq!(got.k_max[i], m.k_max(c), "k_max C={c}");
            assert_eq!(
                got.best_effort[i].to_bits(),
                m.best_effort(c).to_bits(),
                "B C={c}"
            );
            assert_eq!(
                got.reservation[i].to_bits(),
                m.reservation(c).to_bits(),
                "R C={c}"
            );
        }
    }

    #[test]
    fn exact_sweep_mirrors_elastic_delegation() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let m = DiscreteModel::new(load, ExponentialElastic::default());
        let caps = [1.0, 5.0, 20.0, 60.0];
        let got = sweep_grid(&m, &caps, PiEval::Exact);
        for (i, &c) in caps.iter().enumerate() {
            assert_eq!(got.k_max[i], None);
            assert_eq!(got.reservation[i].to_bits(), m.reservation(c).to_bits());
        }
    }

    #[test]
    fn fast_sweep_is_ulp_close() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let caps = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        let got = sweep_grid(&m, &caps, PiEval::Fast);
        for (i, &c) in caps.iter().enumerate() {
            let b = m.best_effort(c);
            let diff = (got.best_effort[i] - b).abs();
            assert!(
                diff <= 1e-13 * b.abs().max(1e-300),
                "C={c}: fast {0:e} vs scalar {b:e}",
                got.best_effort[i]
            );
        }
    }

    #[test]
    fn portable_sweep_is_tolerance_close_to_scalar() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let caps = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        let got = sweep_grid(&m, &caps, PiEval::Portable);
        for (i, &c) in caps.iter().enumerate() {
            for (name, v, want) in [
                ("B", got.best_effort[i], m.best_effort(c)),
                ("R", got.reservation[i], m.reservation(c)),
            ] {
                assert!(
                    (v - want).abs() <= 1e-13 * want.abs().max(1e-300),
                    "C={c}: portable {name} {v:e} vs scalar {want:e}"
                );
            }
        }
        // And the portable sweep is self-reproducible bit for bit.
        let again = sweep_grid(&m, &caps, PiEval::Portable);
        assert_eq!(got, again);
    }

    #[test]
    fn portable_sweep_matches_exact_for_arithmetic_utilities() {
        // Rigid π is pure compare-and-select: `value_portable` defaults to
        // `value`, so the portable mode must be bitwise the exact mode.
        let m = model_rigid();
        let caps = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        let exact = sweep_grid(&m, &caps, PiEval::Exact);
        let portable = sweep_grid(&m, &caps, PiEval::Portable);
        assert_eq!(exact.k_max, portable.k_max);
        for i in 0..caps.len() {
            assert_eq!(exact.best_effort[i].to_bits(), portable.best_effort[i].to_bits());
            assert_eq!(exact.reservation[i].to_bits(), portable.reservation[i].to_bits());
        }
    }

    #[test]
    fn admission_cap_override_is_mirrored() {
        let load = Arc::new(Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12));
        let m = DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()).with_admission_cap(7);
        let caps = [1.0, 10.0, 30.0];
        let got = sweep_grid(&m, &caps, PiEval::Exact);
        for (i, &c) in caps.iter().enumerate() {
            assert_eq!(got.k_max[i], Some(7));
            assert_eq!(got.reservation[i].to_bits(), m.reservation(c).to_bits());
        }
    }

    #[test]
    fn fused_exact_is_bitwise_equal_to_unfused() {
        let caps = [-1.0, 0.0, 0.5, 2.0, 5.0, 10.0, 15.0, 20.0, 40.0, 80.0];
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let rigid = model_rigid();
        let adaptive = DiscreteModel::new(load, AdaptiveExp::paper());
        for mode in [PiEval::Exact, PiEval::Portable] {
            let a = sweep_grid(&rigid, &caps, mode);
            let b = sweep_grid_fused(&rigid, &caps, mode);
            assert_eq!(a, b, "rigid {mode:?}");
            let a = sweep_grid(&adaptive, &caps, mode);
            let b = sweep_grid_fused(&adaptive, &caps, mode);
            assert_eq!(a.k_max, b.k_max, "adaptive {mode:?}");
            for i in 0..caps.len() {
                assert_eq!(a.best_effort[i].to_bits(), b.best_effort[i].to_bits());
                assert_eq!(a.reservation[i].to_bits(), b.reservation[i].to_bits());
            }
        }
    }

    #[test]
    fn fused_exact_mirrors_cap_override_and_elastic() {
        let load = Arc::new(Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12));
        let caps = [1.0, 10.0, 30.0];
        let capped =
            DiscreteModel::new(Arc::clone(&load), AdaptiveExp::paper()).with_admission_cap(7);
        assert_eq!(sweep_grid(&capped, &caps, PiEval::Exact), sweep_grid_fused(&capped, &caps, PiEval::Exact));
        let elastic = DiscreteModel::new(Arc::clone(&load), ExponentialElastic::default());
        let got = sweep_grid_fused(&elastic, &caps, PiEval::Exact);
        assert_eq!(sweep_grid(&elastic, &caps, PiEval::Exact), got);
        for i in 0..caps.len() {
            assert_eq!(got.k_max[i], None);
            assert_eq!(got.reservation[i].to_bits(), got.best_effort[i].to_bits());
        }
    }

    #[test]
    fn fused_fast_kspan_within_budget_and_deterministic() {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let caps = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        let got = sweep_grid_fused(&m, &caps, PiEval::Fast);
        for (i, &c) in caps.iter().enumerate() {
            for (name, v, want) in [
                ("B", got.best_effort[i], m.best_effort(c)),
                ("R", got.reservation[i], m.reservation(c)),
            ] {
                assert!(
                    (v - want).abs() <= 1e-13 * want.abs().max(1e-300),
                    "C={c}: fused-fast {name} {v:e} vs scalar {want:e}"
                );
            }
        }
        let again = sweep_grid_fused(&m, &caps, PiEval::Fast);
        assert_eq!(got, again, "fast fused sweep must be reproducible bit for bit");
    }

    #[test]
    fn fused_fast_falls_back_bitwise_for_non_kspan_families() {
        // Rigid and elastic have no k-span kernel: the fused entry point
        // must degrade to exactly the unfused fast composition.
        let caps = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        let m = model_rigid();
        assert_eq!(sweep_grid(&m, &caps, PiEval::Fast), sweep_grid_fused(&m, &caps, PiEval::Fast));
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let e = DiscreteModel::new(load, ExponentialElastic::default());
        assert_eq!(sweep_grid(&e, &caps, PiEval::Fast), sweep_grid_fused(&e, &caps, PiEval::Fast));
    }

    #[test]
    fn fused_split_nudge_corrupts_reservations() {
        // The mutation hook: shifting the R/B span split off k_max(C) must
        // be detectable — it folds admitted-head terms into the wrong side
        // of the snapshot. Guards against the snapshot silently drifting.
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let caps = [5.0, 10.0, 20.0];
        let clean = sweep_grid_fused(&m, &caps, PiEval::Fast);
        let nudged = sweep_grid_fused_with_split_nudge(&m, &caps, PiEval::Fast, |k| k + 8);
        // B sums the full series either way: moving the split only regroups
        // the sub-accumulators, so it must stay inside the fast budget…
        for (i, &c) in caps.iter().enumerate() {
            let want = m.best_effort(c);
            assert!(
                (nudged.best_effort[i] - want).abs() <= 1e-13 * want.abs().max(1e-300),
                "C={c}: nudged B left the budget"
            );
        }
        // …while R, whose head is the snapshot at the split, must break.
        assert!(
            clean
                .reservation
                .iter()
                .zip(&nudged.reservation)
                .any(|(a, b)| a.to_bits() != b.to_bits()),
            "an off-by-8 split must corrupt at least one reservation lane"
        );
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_grid_rejected() {
        let m = model_rigid();
        let _ = sweep_grid(&m, &[5.0, 2.0], PiEval::Exact);
    }

    #[test]
    #[should_panic(expected = "must not contain NaN")]
    fn nan_grid_rejected() {
        let m = model_rigid();
        let _ = sweep_grid(&m, &[f64::NAN], PiEval::Exact);
    }
}
