//! The "other extensions" of §5: heterogeneous flows (in size and utility),
//! risk-averse users, and nonstationary loads.
//!
//! The paper reports trying these and finding that they "did not change the
//! basic nature of our asymptotic (large C) results (although some of them
//! substantially perturbed the results in the C ≈ k̄ region)". This module
//! implements all three so that claim can be *checked* rather than quoted:
//!
//! * [`HeterogeneousModel`] — a population mixing flow classes, each with
//!   its own bandwidth scale `s_i` and utility `π_i`. With `k` flows
//!   present and class fractions `w_i` (a mean-field composition), a class-
//!   `i` flow receives `s_i·C/(k·s̄)` where `s̄ = Σ w_i s_i` — i.e. the
//!   link divides capacity per unit of demanded size, the natural
//!   generalization of equal sharing.
//! * [`RiskAverseModel`] — utility is a blend of the average experience and
//!   the worst-of-`S` experience: `U = (1−ρ)·E[π] + ρ·E[π(worst)]`,
//!   `ρ ∈ [0, 1]`; `ρ = 1, S → ∞` is the §5.1 "minimal performance" user.
//! * [`mix_loads`] — a stationary mixture of load distributions (e.g.
//!   day/night regimes), the paper's "nonstationary loads … model their
//!   resulting stationary distributions".

use crate::discrete::DiscreteModel;
use crate::sampling::SamplingModel;
use bevra_load::Tabulated;
use bevra_num::{argmax_unimodal_u64, brent, expand_bracket_up, NeumaierSum, NumResult};
use bevra_utility::Utility;
use std::sync::Arc;

/// One flow class in a heterogeneous population.
pub struct FlowClass {
    /// Fraction of flows in this class (weights are normalized on build).
    pub weight: f64,
    /// Bandwidth size/scale `s_i`: how many units of the shared resource
    /// one flow of this class consumes relative to a unit flow.
    pub size: f64,
    /// The class's utility of its *own* received bandwidth.
    pub utility: Arc<dyn Utility>,
}

/// Variable-load model over a heterogeneous population (§5).
pub struct HeterogeneousModel {
    load: Arc<Tabulated>,
    classes: Vec<FlowClass>,
    /// Mean size `s̄ = Σ w_i s_i`.
    mean_size: f64,
}

impl HeterogeneousModel {
    /// Build from a load distribution over the *total* number of flows and
    /// a set of classes. Weights are normalized; sizes must be positive.
    ///
    /// # Panics
    ///
    /// Panics on an empty class list, nonpositive sizes/weights, or a
    /// zero-mean load.
    pub fn new(load: impl Into<Arc<Tabulated>>, mut classes: Vec<FlowClass>) -> Self {
        let load = load.into();
        assert!(load.mean() > 0.0, "load must have positive mean");
        assert!(!classes.is_empty(), "need at least one flow class");
        let total_w: f64 = classes.iter().map(|c| c.weight).sum();
        assert!(total_w > 0.0, "class weights must be positive");
        for c in &mut classes {
            assert!(c.size > 0.0 && c.weight >= 0.0, "sizes positive, weights nonnegative");
            c.weight /= total_w;
        }
        let mean_size = classes.iter().map(|c| c.weight * c.size).sum();
        Self { load, classes, mean_size }
    }

    /// Average per-flow utility when `k` flows share capacity `C`:
    /// `Σ_i w_i·π_i(s_i·C/(k·s̄))`.
    fn per_flow_utility(&self, k: u64, capacity: f64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let unit_share = capacity / (k as f64 * self.mean_size);
        self.classes
            .iter()
            .map(|c| c.weight * c.utility.value(c.size * unit_share))
            .sum()
    }

    /// Admission threshold `k_max(C) = argmax_k k·ū(k, C)` with `ū` the
    /// class-averaged per-flow utility. `None` when the mixture is
    /// effectively elastic.
    pub fn k_max(&self, capacity: f64) -> Option<u64> {
        if capacity <= 0.0 {
            return None;
        }
        argmax_unimodal_u64(
            |k| k as f64 * self.per_flow_utility(k, capacity),
            1,
            1 << 40,
        )
        .ok()
    }

    /// Normalized best-effort utility.
    pub fn best_effort(&self, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        let mut acc = NeumaierSum::new();
        for (k, p) in self.load.iter() {
            if p > 0.0 && k > 0 {
                acc.add(p * k as f64 * self.per_flow_utility(k, capacity));
            }
        }
        acc.total() / self.load.mean()
    }

    /// Normalized reservation utility: population truncated at `k_max`,
    /// overload levels serve `k_max` flows at the threshold composition.
    pub fn reservation(&self, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        let Some(kmax) = self.k_max(capacity) else {
            return self.best_effort(capacity);
        };
        let mut acc = NeumaierSum::new();
        let cap_k = kmax.min(self.load.len() as u64 - 1);
        for k in 1..=cap_k {
            let p = self.load.pmf(k);
            if p > 0.0 {
                acc.add(p * k as f64 * self.per_flow_utility(k, capacity));
            }
        }
        let tail = self.load.tail_mass_above(cap_k);
        if tail > 0.0 {
            acc.add(tail * kmax as f64 * self.per_flow_utility(kmax, capacity));
        }
        acc.total() / self.load.mean()
    }

    /// Bandwidth gap `Δ(C)` for the heterogeneous model.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn bandwidth_gap(&self, capacity: f64) -> NumResult<f64> {
        let target = self.reservation(capacity);
        if self.best_effort(capacity) + 1e-12 >= target {
            return Ok(0.0);
        }
        let kbar = self.load.mean();
        let f = |d: f64| self.best_effort(capacity + d) - target;
        let br = expand_bracket_up(f, 0.0, 0.01 * kbar.max(1.0), 1e7 * kbar)?;
        if br.lo == br.hi {
            return Ok(br.lo);
        }
        brent(f, br.lo, br.hi, 1e-9 * kbar.max(1.0))
    }
}

/// Risk-averse valuation (§5): a user's utility is
/// `(1−ρ)·(average experience) + ρ·(worst of S experiences)`.
pub struct RiskAverseModel<U: Utility + Clone> {
    basic: DiscreteModel<U>,
    sampled: SamplingModel<U>,
    rho: f64,
}

impl<U: Utility + Clone> RiskAverseModel<U> {
    /// Build from a load, a utility, the number of experience samples `S`,
    /// and the risk weight `ρ ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics for `ρ` outside `[0, 1]` or `S = 0`.
    pub fn new(load: impl Into<Arc<Tabulated>>, utility: U, s: u32, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "risk weight must be in [0, 1]");
        let load = load.into();
        let basic = DiscreteModel::new(Arc::clone(&load), utility.clone());
        let sampled = SamplingModel::new(DiscreteModel::new(load, utility), s);
        Self { basic, sampled, rho }
    }

    /// Risk-adjusted best-effort utility.
    pub fn best_effort(&self, capacity: f64) -> f64 {
        (1.0 - self.rho) * self.basic.best_effort(capacity)
            + self.rho * self.sampled.best_effort(capacity)
    }

    /// Risk-adjusted reservation utility.
    pub fn reservation(&self, capacity: f64) -> f64 {
        (1.0 - self.rho) * self.basic.reservation(capacity)
            + self.rho * self.sampled.reservation(capacity)
    }

    /// Risk-adjusted performance gap.
    pub fn performance_gap(&self, capacity: f64) -> f64 {
        (self.reservation(capacity) - self.best_effort(capacity)).max(0.0)
    }
}

/// Stationary mixture of load regimes: `P = Σ w_j P_j` (e.g. a busy-hour /
/// quiet-hour alternation observed at a random time). The result is a
/// plain [`Tabulated`], so every model in this crate applies unchanged.
///
/// # Panics
///
/// Panics on empty input or mismatched/invalid weights.
#[must_use]
pub fn mix_loads(components: &[(f64, &Tabulated)]) -> Tabulated {
    assert!(!components.is_empty(), "need at least one component");
    let total_w: f64 = components.iter().map(|(w, _)| *w).sum();
    assert!(total_w > 0.0, "mixture weights must be positive");
    let len = components.iter().map(|(_, t)| t.len()).max().unwrap_or(0); // asserted non-empty above
    let mut weights = vec![0.0f64; len];
    for (w, t) in components {
        for (k, p) in t.iter() {
            weights[k as usize] += (w / total_w) * p;
        }
    }
    Tabulated::from_weights(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaps;
    use bevra_load::{Geometric, Poisson};
    use bevra_utility::{AdaptiveExp, Rigid};

    fn load(mean: f64) -> Tabulated {
        Tabulated::from_model(&Geometric::from_mean(mean), 1e-11, 1 << 16)
    }

    #[test]
    fn single_unit_class_reduces_to_basic_model() {
        let l = load(50.0);
        let het = HeterogeneousModel::new(
            l.clone(),
            vec![FlowClass { weight: 1.0, size: 1.0, utility: Arc::new(Rigid::unit()) }],
        );
        let basic = DiscreteModel::new(l, Rigid::unit());
        for c in [20.0, 50.0, 120.0] {
            assert!((het.best_effort(c) - basic.best_effort(c)).abs() < 1e-12, "B at {c}");
            assert!((het.reservation(c) - basic.reservation(c)).abs() < 1e-12, "R at {c}");
        }
    }

    #[test]
    fn size_scaling_is_a_capacity_rescale() {
        // All flows twice as large ⇒ same curves at twice the capacity.
        let l = load(50.0);
        let big = HeterogeneousModel::new(
            l.clone(),
            vec![FlowClass { weight: 1.0, size: 2.0, utility: Arc::new(AdaptiveExp::paper()) }],
        );
        let unit = HeterogeneousModel::new(
            l,
            vec![FlowClass { weight: 1.0, size: 1.0, utility: Arc::new(AdaptiveExp::paper()) }],
        );
        for c in [30.0, 80.0] {
            // Size 2 with its own utility of *received* bandwidth: a flow
            // gets 2·C/(2k) = C/k — identical share, identical utility.
            assert!((big.best_effort(c) - unit.best_effort(c)).abs() < 1e-12);
        }
    }

    #[test]
    fn mixed_population_dominance_and_gap() {
        let l = load(60.0);
        let het = HeterogeneousModel::new(
            l,
            vec![
                FlowClass { weight: 0.7, size: 1.0, utility: Arc::new(AdaptiveExp::paper()) },
                FlowClass { weight: 0.3, size: 4.0, utility: Arc::new(Rigid::unit()) },
            ],
        );
        for c in [40.0, 100.0, 250.0] {
            let b = het.best_effort(c);
            let r = het.reservation(c);
            assert!(r >= b - 1e-9, "C={c}");
            assert!((0.0..=1.0 + 1e-9).contains(&b));
        }
        let d = het.bandwidth_gap(100.0).unwrap();
        assert!(d > 0.0);
    }

    #[test]
    fn heterogeneity_preserves_exponential_asymptotics() {
        // §5's claim: the extension perturbs C ≈ k̄ but not the large-C
        // behaviour — for exponential loads the het gap still vanishes.
        let l = load(50.0);
        let het = HeterogeneousModel::new(
            l,
            vec![
                FlowClass { weight: 0.5, size: 1.0, utility: Arc::new(AdaptiveExp::paper()) },
                FlowClass { weight: 0.5, size: 2.0, utility: Arc::new(AdaptiveExp::paper()) },
            ],
        );
        let near = het.reservation(75.0) - het.best_effort(75.0);
        let far = het.reservation(500.0) - het.best_effort(500.0);
        assert!(far < 0.05 * near, "gap must still vanish: near {near}, far {far}");
    }

    #[test]
    fn risk_aversion_interpolates_and_widens_gap() {
        let l = load(50.0);
        let neutral = RiskAverseModel::new(l.clone(), AdaptiveExp::paper(), 8, 0.0);
        let averse = RiskAverseModel::new(l.clone(), AdaptiveExp::paper(), 8, 1.0);
        let half = RiskAverseModel::new(l, AdaptiveExp::paper(), 8, 0.5);
        let c = 75.0;
        // ρ = 0 is the basic model; ρ = 1 the sampling model; blends sit
        // between.
        assert!(neutral.best_effort(c) > averse.best_effort(c));
        let b_half = half.best_effort(c);
        assert!(b_half < neutral.best_effort(c) && b_half > averse.best_effort(c));
        // Risk aversion favours reservations (paper: utility "closer to the
        // minimal performance" increases the architecture gap).
        assert!(averse.performance_gap(c) > neutral.performance_gap(c));
    }

    #[test]
    fn load_mixture_behaves_like_its_components() {
        let quiet = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 14);
        let busy = Tabulated::from_model(&Poisson::new(80.0), 1e-12, 1 << 14);
        let mixed = mix_loads(&[(0.5, &quiet), (0.5, &busy)]);
        assert!((mixed.mean() - 50.0).abs() < 1e-6);
        // Mixture variance exceeds both components' (bimodal).
        assert!(mixed.variance() > busy.variance() + 100.0);
        // B is linear in the load distribution: B_mix·k̄_mix is the
        // weighted sum of the components' total utilities.
        let c = 60.0;
        let m_mix = DiscreteModel::new(mixed.clone(), AdaptiveExp::paper());
        let m_q = DiscreteModel::new(quiet, AdaptiveExp::paper());
        let m_b = DiscreteModel::new(busy, AdaptiveExp::paper());
        let lhs = m_mix.total_best_effort(c);
        let rhs = 0.5 * m_q.total_best_effort(c) + 0.5 * m_b.total_best_effort(c);
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        // And the mixture makes the case for reservations stronger at
        // mid-capacity than the matched-mean Poisson would.
        let matched = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 14);
        let m_matched = DiscreteModel::new(matched, AdaptiveExp::paper());
        let gap_mix = gaps::performance_gap(&m_mix, c);
        let gap_matched = gaps::performance_gap(&m_matched, c);
        assert!(gap_mix > gap_matched, "variance drives the gap");
    }
}
