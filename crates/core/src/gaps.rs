//! Performance gap `δ(C)` and bandwidth gap `Δ(C)` (paper §3).

use crate::discrete::DiscreteModel;
use bevra_num::{brent, expand_bracket_up, NumError, NumResult};
use bevra_utility::Utility;

/// Performance gap `δ(C) = R(C) − B(C)`: the normalized utility advantage of
/// the reservation-capable architecture at capacity `C`.
pub fn performance_gap<U: Utility>(model: &DiscreteModel<U>, capacity: f64) -> f64 {
    (model.reservation(capacity) - model.best_effort(capacity)).max(0.0)
}

/// Bandwidth gap `Δ(C)`: the extra capacity a best-effort-only network needs
/// to match reservations, i.e. the solution of `B(C + Δ) = R(C)`.
///
/// This is the paper's headline quantity — "the bandwidth versus complexity
/// tradeoff". `B` is nondecreasing in capacity, so the root is found by
/// upward bracket expansion plus Brent. The search is capped at
/// `max_extra = 10⁶·k̄`; if `B` cannot reach `R(C)` below that (possible
/// only for pathologically truncated tables), the error is surfaced rather
/// than silently returning the cap.
///
/// # Errors
///
/// Propagates bracketing/root-finding failures.
pub fn bandwidth_gap<U: Utility>(model: &DiscreteModel<U>, capacity: f64) -> NumResult<f64> {
    let target = model.reservation(capacity);
    let here = model.best_effort(capacity);
    // Sub-ULP gaps (B and R agree to ~1e−12) are numerical noise, not a
    // provisioning difference: report zero rather than chase an unreachable
    // root across the table's floating-point plateau.
    if target <= here + 1e-12 {
        return Ok(0.0);
    }
    let kbar = model.mean_load();
    let max_extra = 1e6 * kbar;
    let f = |delta: f64| model.best_effort(capacity + delta) - target;
    // Initial step: a small fraction of the mean load so short gaps resolve
    // quickly; expansion doubles so long gaps cost only log probes.
    let bracket = expand_bracket_up(f, 0.0, 0.01 * kbar.max(1.0), max_extra)?;
    if bracket.lo == bracket.hi {
        return Ok(bracket.lo);
    }
    let delta = brent(f, bracket.lo, bracket.hi, 1e-9 * kbar.max(1.0))?;
    if delta.is_finite() && delta >= 0.0 {
        Ok(delta)
    } else {
        Err(NumError::InvalidInput { what: "bandwidth gap solver produced a negative gap" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Geometric, Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, Rigid};

    fn model_poisson_rigid(mean: f64) -> DiscreteModel<Rigid> {
        let load = Tabulated::from_model(&Poisson::new(mean), 1e-12, 1 << 20);
        DiscreteModel::new(load, Rigid::unit())
    }

    #[test]
    fn gap_definition_roundtrip() {
        // With a rigid utility the discrete B(·) is a *step* function of
        // capacity (it jumps only when ⌊C⌋ crosses a load level), so the gap
        // is the generalized inverse: B just below C+Δ falls short of R(C)
        // and B just above reaches it.
        let m = model_poisson_rigid(50.0);
        for c in [20.0, 40.0, 50.0, 60.0] {
            let delta = bandwidth_gap(&m, c).unwrap();
            let rhs = m.reservation(c);
            assert!(
                m.best_effort(c + delta + 1.0) >= rhs - 1e-9,
                "C={c}: B above the gap must reach R"
            );
            assert!(
                m.best_effort((c + delta - 1.0).max(0.0)) <= rhs + 1e-9,
                "C={c}: B below the gap must not exceed R"
            );
        }
        // With a smooth (adaptive) utility the roundtrip is exact.
        let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 20);
        let ma = DiscreteModel::new(load, AdaptiveExp::paper());
        for c in [30.0, 50.0, 80.0] {
            let delta = bandwidth_gap(&ma, c).unwrap();
            assert!(
                (ma.best_effort(c + delta) - ma.reservation(c)).abs() < 1e-7,
                "C={c}"
            );
        }
    }

    #[test]
    fn poisson_rigid_gap_vanishes_when_overprovisioned() {
        // §3.3: for Poisson loads the gaps collapse once C exceeds k̄. In
        // the exact discrete model Δ cannot drop below a few units until the
        // load tail is literally exhausted (B only moves at integer steps,
        // see EXPERIMENTS.md), but the collapse from ~Δ ≈ 10s to ~units is
        // the paper's figure-scale behaviour, and δ vanishes outright.
        let m = model_poisson_rigid(50.0);
        let delta_under = bandwidth_gap(&m, 40.0).unwrap();
        let delta_over = bandwidth_gap(&m, 100.0).unwrap();
        assert!(delta_under > 5.0, "underprovisioned gap {delta_under}");
        assert!(delta_over < 8.0, "overprovisioned gap {delta_over}");
        assert!(performance_gap(&m, 100.0) < 1e-8);
        // Far beyond the table the distributions agree exactly.
        let delta_far = bandwidth_gap(&m, 500.0).unwrap();
        assert!(delta_far < 1e-9, "far gap {delta_far}");
    }

    #[test]
    fn exponential_rigid_gap_grows_with_capacity() {
        // §3.3's surprise: for exponential loads and rigid applications the
        // bandwidth gap *increases* with capacity even as δ(C) shrinks.
        let load = Tabulated::from_model(&Geometric::from_mean(50.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, Rigid::unit());
        let d1 = bandwidth_gap(&m, 50.0).unwrap();
        let d2 = bandwidth_gap(&m, 100.0).unwrap();
        let d3 = bandwidth_gap(&m, 200.0).unwrap();
        assert!(d2 > d1, "Δ(2k̄)={d2} should exceed Δ(k̄)={d1}");
        assert!(d3 > d2, "Δ(4k̄)={d3} should exceed Δ(2k̄)={d2}");
        // ... while the performance gap shrinks.
        assert!(performance_gap(&m, 200.0) < performance_gap(&m, 100.0));
    }

    #[test]
    fn adaptive_gap_peaks_then_decays_for_exponential_load() {
        // §3.3: with adaptive applications the exponential-load bandwidth
        // gap peaks near k̄ and then decreases.
        let load = Tabulated::from_model(&Geometric::from_mean(50.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let d_peak = bandwidth_gap(&m, 50.0).unwrap();
        let d_far = bandwidth_gap(&m, 400.0).unwrap();
        assert!(d_peak > d_far, "peak {d_peak} vs far {d_far}");
    }

    #[test]
    fn zero_gap_when_architectures_agree() {
        let m = model_poisson_rigid(20.0);
        // Deep overprovisioning: R ≈ B ≈ 1.
        let delta = bandwidth_gap(&m, 2000.0).unwrap();
        assert!(delta.abs() < 1e-9);
        assert!(performance_gap(&m, 2000.0) < 1e-12);
    }
}
