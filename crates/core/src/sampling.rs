//! The sampling extension (paper §5.1): utility driven by the worst of `S`
//! independent load samples.
//!
//! The basic model evaluates a flow at a single load level. In reality the
//! load fluctuates during a flow's lifetime, and a user's perceived quality
//! tracks the *worst* episode more than the average. The extension draws
//! `S` load levels independently from the flow-perspective distribution
//! `Q(k) = k·P(k)/k̄` and evaluates `π` at the maximum:
//!
//! * **best-effort**: `B_S(C) = Σ_k Q_S(k)·π(C/k)` with `Q_S` the
//!   distribution of the max of `S` draws from `Q`;
//! * **reservations**: admission happens on the *first* sample — a flow
//!   arriving at load `k` is admitted with probability `min(1, k_max/k)` —
//!   and an admitted flow never experiences load above `k_max`, so its
//!   subsequent samples are drawn from `Q` *clipped* at `k_max`.
//!
//! Reservations thus insure against load spikes: the clipping caps the max,
//! which is why the §5.1 gaps grow with `S` while the asymptotic algebraic
//! ratio becomes `(S(z−1))^{1/(z−2)}` — unbounded as `z → 2⁺`.

use crate::discrete::DiscreteModel;
use bevra_load::{flow_perspective, max_of_s, Tabulated};
use bevra_num::{brent, expand_bracket_up, NeumaierSum, NumResult};
use bevra_utility::Utility;

/// The §5.1 sampling model wrapping a [`DiscreteModel`].
pub struct SamplingModel<U: Utility> {
    model: DiscreteModel<U>,
    /// Flow-perspective load `Q`.
    q: Tabulated,
    /// Max-of-S of `Q` (cached; capacity-independent).
    q_max_s: Tabulated,
    /// Number of samples `S ≥ 1`.
    s: u32,
}

impl<U: Utility> SamplingModel<U> {
    /// Build from a base discrete model and a sample count.
    ///
    /// # Panics
    ///
    /// Panics if `s == 0`.
    pub fn new(model: DiscreteModel<U>, s: u32) -> Self {
        assert!(s >= 1, "sampling extension requires S >= 1");
        let q = flow_perspective(model.load());
        let q_max_s = max_of_s(&q, s);
        Self { model, q, q_max_s, s }
    }

    /// The underlying basic model.
    pub fn base(&self) -> &DiscreteModel<U> {
        &self.model
    }

    /// Number of samples `S`.
    pub fn samples(&self) -> u32 {
        self.s
    }

    /// Best-effort utility under sampling:
    /// `B_S(C) = E[π(C / max(k₁…k_S))]`, `k_i ~ Q` iid.
    pub fn best_effort(&self, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        let u = self.model.utility();
        self.q_max_s.expect(|k| if k == 0 { 0.0 } else { u.value(capacity / k as f64) })
    }

    /// Reservation utility under sampling (see module docs for the
    /// admission/clipping semantics). Reduces exactly to the basic `R(C)`
    /// at `S = 1`.
    pub fn reservation(&self, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        let Some(kmax) = self.model.k_max(capacity) else {
            return self.best_effort(capacity);
        };
        if kmax == 0 {
            return 0.0;
        }
        let u = self.model.utility();
        let n = self.q.len() as u64;
        let cap = kmax.min(n - 1);
        // First-sample distribution conditioned on admission, clipped at
        // k_max: weight Q(j) below the cap, plus Σ_{j≥cap} Q(j)·k_max/j at
        // the cap. The total of these weights is the admission probability.
        let mut first = vec![0.0f64; cap as usize + 1];
        let mut admitted = NeumaierSum::new();
        for (j, qj) in self.q.iter() {
            if qj <= 0.0 {
                continue;
            }
            if j < cap {
                first[j as usize] += qj;
                admitted.add(qj);
            } else {
                let w = qj * kmax as f64 / j as f64;
                first[cap as usize] += w;
                admitted.add(w);
            }
        }
        let admitted = admitted.total();
        if admitted <= 0.0 {
            return 0.0;
        }
        // cdf of the first sample (unnormalized) and of one clipped sample.
        let mut f1 = Vec::with_capacity(first.len());
        let mut acc = 0.0;
        for &w in &first {
            acc += w;
            f1.push(acc / admitted);
        }
        let fc = |m: u64| -> f64 {
            if m >= cap {
                1.0
            } else {
                self.q.cdf(m)
            }
        };
        // Distribution of the effective maximum M = max(first, S−1 clipped
        // draws): F(m) = F1(m)·Fc(m)^{S−1}; utility is E[π(C/M)].
        let mut total = NeumaierSum::new();
        let mut prev = 0.0;
        for m in 0..=cap {
            let cdf_m = f1[m as usize] * fc(m).powi(self.s as i32 - 1);
            let pm = (cdf_m - prev).max(0.0);
            prev = cdf_m;
            if pm > 0.0 && m > 0 {
                total.add(pm * u.value(capacity / m as f64));
            }
        }
        admitted * total.total()
    }

    /// Performance gap `δ_S(C) = R_S(C) − B_S(C)`.
    pub fn performance_gap(&self, capacity: f64) -> f64 {
        (self.reservation(capacity) - self.best_effort(capacity)).max(0.0)
    }

    /// Bandwidth gap `Δ_S(C)`: solves `B_S(C + Δ) = R_S(C)`.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn bandwidth_gap(&self, capacity: f64) -> NumResult<f64> {
        let target = self.reservation(capacity);
        if self.best_effort(capacity) + 1e-12 >= target {
            return Ok(0.0);
        }
        let kbar = self.model.mean_load();
        let f = |d: f64| self.best_effort(capacity + d) - target;
        let br = expand_bracket_up(f, 0.0, 0.01 * kbar.max(1.0), 1e7 * kbar)?;
        if br.lo == br.hi {
            return Ok(br.lo);
        }
        brent(f, br.lo, br.hi, 1e-9 * kbar.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Geometric, Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, Rigid};

    fn model(mean: f64, u: impl Utility) -> DiscreteModel<impl Utility> {
        let load = Tabulated::from_model(&Geometric::from_mean(mean), 1e-12, 1 << 20);
        DiscreteModel::new(load, u)
    }

    #[test]
    fn s_equals_one_reduces_to_basic_model() {
        let m = model(50.0, AdaptiveExp::paper());
        let basic_b: Vec<f64> = [25.0, 50.0, 100.0].iter().map(|&c| m.best_effort(c)).collect();
        let basic_r: Vec<f64> = [25.0, 50.0, 100.0].iter().map(|&c| m.reservation(c)).collect();
        let s1 = SamplingModel::new(m, 1);
        for (i, &c) in [25.0, 50.0, 100.0].iter().enumerate() {
            assert!((s1.best_effort(c) - basic_b[i]).abs() < 1e-10, "B at C={c}");
            assert!((s1.reservation(c) - basic_r[i]).abs() < 1e-10, "R at C={c}");
        }
    }

    #[test]
    fn more_samples_hurt_best_effort_more() {
        // The max over more samples is stochastically larger, so B_S
        // decreases in S; R_S decreases much less (clipping at k_max).
        let c = 100.0;
        let mut prev_b = f64::INFINITY;
        for s in [1u32, 2, 5, 10] {
            let m = model(50.0, AdaptiveExp::paper());
            let sm = SamplingModel::new(m, s);
            let b = sm.best_effort(c);
            assert!(b < prev_b + 1e-12, "S={s}");
            prev_b = b;
            assert!(sm.reservation(c) >= b - 1e-12);
        }
    }

    #[test]
    fn sampling_widens_the_gap() {
        // §5.1's point: the performance gap grows with S.
        let c = 75.0;
        let gap1 = {
            let sm = SamplingModel::new(model(50.0, AdaptiveExp::paper()), 1);
            sm.performance_gap(c)
        };
        let gap10 = {
            let sm = SamplingModel::new(model(50.0, AdaptiveExp::paper()), 10);
            sm.performance_gap(c)
        };
        assert!(gap10 > 3.0 * gap1, "gap S=10 {gap10} vs S=1 {gap1}");
    }

    #[test]
    fn reservation_clipping_caps_effective_load() {
        // With rigid utility, an admitted flow always gets share
        // C/k_max ≥ 1 ⇒ utility exactly 1, so R_S = admission probability
        // — independent of S.
        let c = 50.0;
        let r2 = SamplingModel::new(model(50.0, Rigid::unit()), 2).reservation(c);
        let r10 = SamplingModel::new(model(50.0, Rigid::unit()), 10).reservation(c);
        assert!((r2 - r10).abs() < 1e-12, "{r2} vs {r10}");
    }

    #[test]
    fn poisson_barely_affected_by_sampling() {
        // §5.1: "multiple samplings has little effect on the Poisson case"
        // — low variance means the max is close to the single draw.
        let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let c = 150.0;
        let g1 = SamplingModel::new(
            DiscreteModel::new(
                Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20),
                AdaptiveExp::paper(),
            ),
            1,
        )
        .performance_gap(c);
        let g5 = SamplingModel::new(m, 5).performance_gap(c);
        assert!(g5 < g1 + 0.02, "Poisson gap S=5 {g5} vs S=1 {g1}");
    }

    #[test]
    fn bandwidth_gap_roundtrip() {
        let sm = SamplingModel::new(model(50.0, AdaptiveExp::paper()), 5);
        let c = 75.0;
        let d = sm.bandwidth_gap(c).unwrap();
        assert!((sm.best_effort(c + d) - sm.reservation(c)).abs() < 1e-6);
        assert!(d > 0.0);
    }
}
