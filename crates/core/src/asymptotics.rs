//! The paper's asymptotic predictions, as plain functions.
//!
//! §3.3–§5 derive limit laws for the bandwidth gap and the equalizing price
//! ratio in each (load, utility) regime. This module centralizes them so
//! tests, benches, and EXPERIMENTS.md can compare measured curves against
//! predicted ones without re-deriving anything.
//!
//! `h` below is the ramp coefficient `H(a, z) = 1 + a(1 − a^{z−2})/(1 − a)`
//! ([`bevra_utility::Ramp::h_coefficient`]); the rigid case is `H = z − 1`.

/// Exponential load, rigid apps: `Δ(C) ≈ ln(βC)/β` — the gap grows
/// logarithmically forever (§3.3).
#[must_use]
pub fn exp_rigid_bandwidth_gap(beta: f64, c: f64) -> f64 {
    (beta * c).ln() / beta
}

/// Exponential load, ramp apps: `Δ(∞) = −ln(1 − a)/β` — the gap converges
/// to a constant (§3.3).
#[must_use]
pub fn exp_ramp_bandwidth_gap_limit(beta: f64, a: f64) -> f64 {
    -(1.0 - a).ln() / beta
}

/// Exponential load, rigid apps, retrying at penalty `α`: the asymptotic
/// reservation disutility is `1 − R̃(C) ≈ α·e^{−βC}` (§5.2).
#[must_use]
pub fn exp_retry_disutility(beta: f64, alpha: f64, c: f64) -> f64 {
    alpha * (-beta * c).exp()
}

/// Exponential load, ramp apps, retrying: `Δ(∞) = −ln(α(1 − a))/β` (§5.2).
#[must_use]
pub fn exp_ramp_retry_gap_limit(beta: f64, a: f64, alpha: f64) -> f64 {
    -(alpha * (1.0 - a)).ln() / beta
}

/// Algebraic load: `lim (C + Δ(C))/C = H^{1/(z−2)}`, which also equals
/// `lim_{p→0} γ(p)` (§3.3/§4). Rigid: `H = z−1`, giving `(z−1)^{1/(z−2)}`
/// → `e` as `z → 2⁺` (the conjectured worst case).
#[must_use]
pub fn alg_gap_ratio(z: f64, h: f64) -> f64 {
    h.powf(1.0 / (z - 2.0))
}

/// Algebraic load with `S`-fold sampling: the asymptotic ratio becomes
/// `(S·H)^{1/(z−2)}` — rigid `(S(z−1))^{1/(z−2)}` — which **diverges** as
/// `z → 2⁺` for any `S > 1` (§5.1).
#[must_use]
pub fn alg_sampling_gap_ratio(z: f64, h: f64, s: u32) -> f64 {
    (f64::from(s) * h).powf(1.0 / (z - 2.0))
}

/// Algebraic load with retrying at penalty `α`: the asymptotic ratio is
/// `(H/α)^{1/(z−2)}`, unbounded as `z → 2⁺` for `α < H` (§5.2).
#[must_use]
pub fn alg_retry_gap_ratio(z: f64, h: f64, alpha: f64) -> f64 {
    (h / alpha).powf(1.0 / (z - 2.0))
}

/// The §3.3 conjecture: the largest asymptotic bandwidth ratio of the basic
/// model, `lim_{z→2⁺} (z−1)^{1/(z−2)} = e`; best-effort never needs more
/// than `e×` the reservation network's bandwidth.
#[must_use]
pub fn basic_model_max_ratio() -> f64 {
    std::f64::consts::E
}

/// Algebraic-tail utilities (`π ≈ 1 − b^{−τ}`) against algebraic loads:
/// the §3.3 footnote-8 regime classification for the large-`C` behavior of
/// `Δ(C)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailRegime {
    /// `τ > z − 2`: `Δ(C) ~ C` (linear growth, like the rigid case).
    Linear,
    /// `z − 3 < τ < z − 2`: `Δ(C) ~ C^{τ+3−z}` — grows, but sublinearly.
    SublinearGrowth,
    /// `τ < z − 3`: `Δ(C)` asymptotically **decreases**.
    Decreasing,
}

/// Classify the algebraic-tail × algebraic-load regime (§3.3).
#[must_use]
pub fn tail_regime(tau: f64, z: f64) -> TailRegime {
    if tau > z - 2.0 {
        TailRegime::Linear
    } else if tau > z - 3.0 {
        TailRegime::SublinearGrowth
    } else {
        TailRegime::Decreasing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_utility::Ramp;

    #[test]
    fn rigid_ratio_limits() {
        // z = 3 ⇒ ratio 2; z → 2⁺ ⇒ ratio → e.
        assert!((alg_gap_ratio(3.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((alg_gap_ratio(2.0001, 1.0001) - std::f64::consts::E).abs() < 1e-3);
    }

    #[test]
    fn sampling_ratio_exceeds_basic_and_diverges() {
        let z = 2.5;
        let h = z - 1.0;
        assert!(alg_sampling_gap_ratio(z, h, 2) > alg_gap_ratio(z, h));
        // Divergence as z → 2⁺ with S = 2: (2·(z−1))^{1/(z−2)} explodes.
        assert!(alg_sampling_gap_ratio(2.05, 1.05, 2) > 1e6);
    }

    #[test]
    fn retry_ratio_exceeds_basic_for_small_alpha() {
        let z = 3.0;
        let h = 2.0;
        assert!(alg_retry_gap_ratio(z, h, 0.1) > alg_gap_ratio(z, h));
        assert!((alg_retry_gap_ratio(z, h, 0.1) - 20.0f64.sqrt().powi(2)).abs() < 20.0);
        // α = H recovers... ratio 1? (H/H)^{...} = 1: no advantage beyond
        // basic disutility balance.
        assert!((alg_retry_gap_ratio(z, h, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_h_flows_through() {
        let z = 3.0;
        let a = 0.5;
        let h = Ramp::new(a).h_coefficient(z);
        // H = 1 + a = 1.5 at z = 3; ratio = 1.5.
        assert!((alg_gap_ratio(z, h) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tail_regimes_partition() {
        assert_eq!(tail_regime(2.0, 3.0), TailRegime::Linear);
        assert_eq!(tail_regime(0.5, 3.0), TailRegime::SublinearGrowth);
        assert_eq!(tail_regime(0.5, 4.0), TailRegime::Decreasing);
    }

    #[test]
    fn exponential_limits_sane() {
        assert!((exp_ramp_bandwidth_gap_limit(0.01, 0.5) - 100.0 * 2f64.ln()).abs() < 1e-9);
        assert!(exp_ramp_retry_gap_limit(0.01, 0.5, 0.1) > exp_ramp_bandwidth_gap_limit(0.01, 0.5));
        assert!((exp_retry_disutility(0.01, 0.1, 100.0) - 0.1 * (-1.0f64).exp()).abs() < 1e-12);
        assert!((basic_model_max_ratio() - std::f64::consts::E).abs() < 1e-15);
    }
}
