//! The discrete variable-load model (paper §3.1).

use bevra_load::Tabulated;
use bevra_num::NeumaierSum;
use bevra_utility::{k_max_discrete, Utility};
use std::sync::Arc;

/// A single bottleneck link under a random offered load, evaluated for both
/// architectures.
///
/// Holds the tabulated load distribution `P(k)` and the application utility
/// `π`. All returned utilities are **normalized per mean flow** (`V/k̄`),
/// matching the paper's `B(C)` and `R(C)` plots, so they live in `[0, 1]`.
///
/// The load is shared via `Arc` so that extensions which evaluate many
/// closely related models (the retrying fixed point rebuilds the model at
/// every inflated load) can do so without copying megabyte-scale tables.
pub struct DiscreteModel<U: Utility> {
    load: Arc<Tabulated>,
    utility: U,
    /// Optional admission cap overriding the utility-derived `k_max(C)` —
    /// the paper's footnote 9: with elastic applications the standard
    /// `k_max` is infinite, but a *chosen* finite cap plus retries can
    /// still raise utility.
    k_max_override: Option<u64>,
}

impl<U: Utility> DiscreteModel<U> {
    /// New model from a tabulated load and a utility function.
    ///
    /// # Panics
    ///
    /// Panics if the load has zero mean (no flows ever present).
    pub fn new(load: impl Into<Arc<Tabulated>>, utility: U) -> Self {
        let load = load.into();
        assert!(load.mean() > 0.0, "load distribution must have positive mean");
        Self { load, utility, k_max_override: None }
    }

    /// Replace the utility-derived admission threshold with a fixed cap
    /// (paper footnote 9). Pass the builder result on; the override applies
    /// to every capacity.
    ///
    /// # Panics
    ///
    /// Panics on a zero cap.
    #[must_use]
    pub fn with_admission_cap(mut self, cap: u64) -> Self {
        assert!(cap > 0, "admission cap must be positive");
        self.k_max_override = Some(cap);
        self
    }

    /// The load distribution `P(k)`.
    pub fn load(&self) -> &Tabulated {
        &self.load
    }

    /// The utility function.
    pub fn utility(&self) -> &U {
        &self.utility
    }

    /// The fixed admission cap installed by [`Self::with_admission_cap`],
    /// if any. Exposed so grid evaluators (`crate::discrete_batch`) can
    /// mirror [`Self::k_max`] exactly.
    pub fn admission_cap(&self) -> Option<u64> {
        self.k_max_override
    }

    /// Mean offered load `k̄`.
    pub fn mean_load(&self) -> f64 {
        self.load.mean()
    }

    /// Borrowed type-erased view of this model, for the object-safe
    /// [`crate::kernel::Kernel`] backends.
    ///
    /// The load table is shared (`Arc` clone, no copy) and the utility is
    /// borrowed as `&dyn Utility`, so the view evaluates **bitwise
    /// identically** to `self`: dynamic dispatch selects the same method
    /// bodies the monomorphized path inlines, and Rust carries no
    /// fast-math semantics that could re-associate the arithmetic.
    pub fn as_dyn(&self) -> DiscreteModel<&dyn Utility> {
        DiscreteModel {
            load: Arc::clone(&self.load),
            utility: &self.utility,
            k_max_override: self.k_max_override,
        }
    }

    /// Admission threshold `k_max(C) = argmax_k k·π(C/k)`.
    ///
    /// `None` means "no finite maximizer": the utility is elastic (or the
    /// capacity too small for any utility at all), and a reservation network
    /// would admit everyone — the two architectures coincide.
    pub fn k_max(&self, capacity: f64) -> Option<u64> {
        if capacity <= 0.0 {
            return None;
        }
        if let Some(cap) = self.k_max_override {
            return Some(cap);
        }
        k_max_discrete(&self.utility, capacity).ok()
    }

    /// Normalized best-effort utility
    /// `B(C) = (1/k̄)·Σ_k P(k)·k·π(C/k)`.
    ///
    /// The sum is taken over the whole table with compensated accumulation
    /// and an early exit: once the remaining tail's contribution is provably
    /// below 1e−15 of the accumulated value (π is nonincreasing in `k`, so
    /// the remainder is bounded by `π(C/k)·tail_mean(k)/k̄`), summation
    /// stops and the bound's midpoint is added.
    pub fn best_effort(&self, capacity: f64) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        // Fault-injection site: a `nan:eval/best_effort` or `inf:...` rule
        // (keyed by the capacity's bit pattern) corrupts the returned
        // value; with no plan active this is the identity, bit-exact.
        bevra_faults::corrupt_f64(
            "eval/best_effort",
            capacity.to_bits(),
            self.best_effort_uninstrumented(capacity),
        )
    }

    fn best_effort_uninstrumented(&self, capacity: f64) -> f64 {
        let kbar = self.load.mean();
        let mut acc = NeumaierSum::new();
        let len = self.load.len() as u64;
        for k in 1..len {
            let p = self.load.pmf(k);
            let pi = self.utility.value(capacity / k as f64);
            if p > 0.0 {
                acc.add(p * k as f64 * pi);
            }
            // Early exit: remaining Σ_{j>k} P(j)·j·π(C/j) ≤ π(C/k)·tail mean
            // (π is nonincreasing in k). Checked every 64 entries, and
            // additionally as soon as π reaches exactly 0 — from there every
            // remaining term is exactly 0.0 and the bound is exact, so the
            // exit stays bitwise neutral even for tables shorter than 64
            // entries (which the periodic check alone never reaches).
            if k % 64 == 0 || pi == 0.0 {
                let bound = pi * self.load.tail_mean_above(k);
                if bound <= 1e-15 * acc.total().abs().max(1e-300) {
                    acc.add(0.5 * bound);
                    break;
                }
            }
        }
        acc.total() / kbar
    }

    /// Normalized reservation utility
    /// `R(C) = (1/k̄)·[Σ_{k≤k_max} P(k)·k·π(C/k)
    ///                + k_max·π(C/k_max)·P[k > k_max]]`.
    ///
    /// Under overload each of the `k_max` admitted flows receives
    /// `C/k_max`, so the overload term collapses to a closed form via the
    /// cached tail mass — O(k_max) total.
    pub fn reservation(&self, capacity: f64) -> f64 {
        self.reservation_with_kmax(capacity, self.k_max(capacity))
    }

    /// [`Self::reservation`] with the admission threshold supplied by the
    /// caller instead of recomputed.
    ///
    /// `kmax` must be what [`Self::k_max`] would return for `capacity`
    /// (the parallel sweep engine memoizes that table per utility family
    /// and injects it here); passing anything else evaluates a *different*
    /// admission policy — which is exactly how footnote 9's chosen-cap
    /// studies use it.
    pub fn reservation_with_kmax(&self, capacity: f64, kmax: Option<u64>) -> f64 {
        // Fault-injection site, mirroring `best_effort` (`eval/reservation`).
        bevra_faults::corrupt_f64(
            "eval/reservation",
            capacity.to_bits(),
            self.reservation_with_kmax_uninstrumented(capacity, kmax),
        )
    }

    fn reservation_with_kmax_uninstrumented(&self, capacity: f64, kmax: Option<u64>) -> f64 {
        if capacity <= 0.0 {
            return 0.0;
        }
        let Some(kmax) = kmax else {
            // No finite peak: admission control never rejects, so the two
            // architectures deliver identical utility.
            return self.best_effort(capacity);
        };
        if kmax == 0 {
            return 0.0;
        }
        let kbar = self.load.mean();
        let mut acc = NeumaierSum::new();
        let cap_k = kmax.min(self.load.len() as u64 - 1);
        for k in 1..=cap_k {
            let p = self.load.pmf(k);
            if p > 0.0 {
                acc.add(p * k as f64 * self.utility.value(capacity / k as f64));
            }
        }
        let overload_mass = self.load.tail_mass_above(cap_k);
        if overload_mass > 0.0 {
            acc.add(kmax as f64 * self.utility.value(capacity / kmax as f64) * overload_mass);
        }
        acc.total() / kbar
    }

    /// Fraction of *flows* (not load levels) denied service at capacity `C`:
    /// `θ(C) = (1/k̄)·Σ_{k>k_max} P(k)·(k − k_max)`.
    ///
    /// This is the blocking rate that drives the retrying extension (§5.2);
    /// it is 0 whenever `k_max` is absent (elastic) or the table never
    /// exceeds it.
    pub fn blocking_fraction(&self, capacity: f64) -> f64 {
        let Some(kmax) = self.k_max(capacity) else {
            return 0.0;
        };
        let kbar = self.load.mean();
        let tail_mean = self.load.tail_mean_above(kmax);
        let tail_mass = self.load.tail_mass_above(kmax);
        ((tail_mean - kmax as f64 * tail_mass) / kbar).max(0.0)
    }

    /// Total (unnormalized) best-effort utility `V_B(C) = k̄·B(C)` — the
    /// quantity the welfare model prices against capacity.
    pub fn total_best_effort(&self, capacity: f64) -> f64 {
        self.load.mean() * self.best_effort(capacity)
    }

    /// Total (unnormalized) reservation utility `V_R(C) = k̄·R(C)`.
    pub fn total_reservation(&self, capacity: f64) -> f64 {
        self.load.mean() * self.reservation(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Geometric, Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, ExponentialElastic, Rigid};

    fn poisson_model(mean: f64) -> Tabulated {
        Tabulated::from_model(&Poisson::new(mean), 1e-12, 1 << 20)
    }

    #[test]
    fn r_dominates_b_everywhere() {
        let m = DiscreteModel::new(poisson_model(20.0), Rigid::unit());
        for c in [1.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
            let b = m.best_effort(c);
            let r = m.reservation(c);
            assert!(r >= b - 1e-12, "C={c}: R={r} < B={b}");
            assert!((0.0..=1.0 + 1e-12).contains(&r));
            assert!((0.0..=1.0 + 1e-12).contains(&b));
        }
    }

    #[test]
    fn rigid_b_is_probability_of_underload() {
        // With rigid b̄ = 1, a flow gets utility 1 iff the load k ≤ C, so
        // B(C) = (1/k̄)·Σ_{k≤C} k·P(k) — check against partial moments.
        let load = poisson_model(20.0);
        let m = DiscreteModel::new(load.clone(), Rigid::unit());
        for c in [10.0, 20.0, 30.0] {
            let want = load.partial_mean(c as u64) / load.mean();
            let got = m.best_effort(c);
            assert!((got - want).abs() < 1e-12, "C={c}: {got} vs {want}");
        }
    }

    #[test]
    fn reservation_saturates_blocking_positive() {
        let m = DiscreteModel::new(poisson_model(50.0), Rigid::unit());
        // At C = k̄/2 roughly half the flows are blocked.
        let theta = m.blocking_fraction(25.0);
        assert!(theta > 0.4 && theta < 0.6, "theta {theta}");
        // Deep overprovisioning: essentially no blocking.
        assert!(m.blocking_fraction(200.0) < 1e-10);
    }

    #[test]
    fn elastic_collapses_architectures() {
        let m = DiscreteModel::new(poisson_model(20.0), ExponentialElastic::default());
        for c in [5.0, 20.0, 60.0] {
            assert_eq!(m.k_max(c), None);
            assert!((m.reservation(c) - m.best_effort(c)).abs() < 1e-14);
            assert_eq!(m.blocking_fraction(c), 0.0);
        }
    }

    #[test]
    fn adaptive_gap_smaller_than_rigid() {
        // §3.3: the performance gap shrinks dramatically from rigid to
        // adaptive applications.
        let load = poisson_model(50.0);
        let rigid = DiscreteModel::new(load.clone(), Rigid::unit());
        let adaptive = DiscreteModel::new(load, AdaptiveExp::paper());
        let c = 40.0;
        let gap_rigid = rigid.reservation(c) - rigid.best_effort(c);
        let gap_adaptive = adaptive.reservation(c) - adaptive.best_effort(c);
        assert!(
            gap_adaptive < 0.5 * gap_rigid,
            "adaptive {gap_adaptive} vs rigid {gap_rigid}"
        );
    }

    #[test]
    fn b_monotone_in_capacity() {
        let m = DiscreteModel::new(poisson_model(30.0), AdaptiveExp::paper());
        let mut prev = 0.0;
        for i in 1..=60 {
            let b = m.best_effort(f64::from(i) * 2.0);
            assert!(b >= prev - 1e-13, "C={}", i * 2);
            prev = b;
        }
    }

    #[test]
    fn geometric_load_utilities_bounded_and_ordered() {
        let load = Tabulated::from_model(&Geometric::from_mean(100.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        for c in [50.0, 100.0, 200.0, 400.0] {
            let b = m.best_effort(c);
            let r = m.reservation(c);
            assert!(r >= b && r <= 1.0 + 1e-12, "C={c}: B={b} R={r}");
        }
    }

    #[test]
    fn zero_capacity_gives_zero_utility() {
        let m = DiscreteModel::new(poisson_model(10.0), AdaptiveExp::paper());
        assert_eq!(m.best_effort(0.0), 0.0);
        assert_eq!(m.reservation(0.0), 0.0);
    }

    #[test]
    fn total_utilities_scale_by_mean() {
        let m = DiscreteModel::new(poisson_model(10.0), AdaptiveExp::paper());
        let c = 15.0;
        assert!((m.total_best_effort(c) - m.mean_load() * m.best_effort(c)).abs() < 1e-12);
    }

    /// A utility wrapper counting `value` calls, for pinning the early-exit
    /// cadence of the summation loop.
    struct Counting {
        inner: Rigid,
        calls: std::sync::atomic::AtomicUsize,
    }
    impl Utility for Counting {
        fn value(&self, b: f64) -> f64 {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.value(b)
        }
        fn name(&self) -> &'static str {
            "counting-rigid"
        }
    }

    #[test]
    fn short_table_early_exit_fires_and_preserves_results() {
        // Regression for the early-exit cadence: a `k % 64 == 0` check alone
        // never fires on tables shorter than 64 entries, so small-k̄ sweeps
        // paid the full O(len) even after π hit exactly 0. With rigid b̄ = 1
        // and C = 10, π(C/k) = 0 for every k > 10, so the loop must stop
        // right after k = 11 — not scan all 40 entries.
        let weights: Vec<f64> = (0..40).map(|k| 1.0 / f64::from(k + 1)).collect();
        let load = Arc::new(Tabulated::from_weights(weights.clone()));

        let counting =
            Counting { inner: Rigid::unit(), calls: std::sync::atomic::AtomicUsize::new(0) };
        let m = DiscreteModel::new(Arc::clone(&load), counting);
        let got = m.best_effort(10.0);
        let calls = m.utility().calls.load(std::sync::atomic::Ordering::Relaxed);
        assert!(calls <= 12, "early exit did not fire: {calls} value() calls for 40 entries");

        // And the exit is bitwise neutral: identical to the full-order
        // reference sum over every entry (the skipped terms are exactly 0).
        let mut acc = NeumaierSum::new();
        for k in 1..load.len() as u64 {
            let p = load.pmf(k);
            let pi = Rigid::unit().value(10.0 / k as f64);
            if p > 0.0 {
                acc.add(p * k as f64 * pi);
            }
        }
        let want = acc.total() / load.mean();
        assert_eq!(got.to_bits(), want.to_bits(), "exit changed the sum: {got:e} vs {want:e}");
    }
}
