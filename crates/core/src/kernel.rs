//! The [`Kernel`] trait: pluggable welfare-evaluation backends.
//!
//! PR 5 grew three evaluation paths for the discrete model — the scalar
//! per-point path, the grid-batched exact kernel, and the vectorized fast
//! kernel — selected by an env-var `match` buried in the sweep engine.
//! This module lifts that choice into a first-class, object-safe trait:
//! a backend is a `&'static dyn Kernel` that evaluates the three grid
//! primitives (`k_max`, `B`, `R`) over a sorted capacity grid and
//! self-reports a [`KernelCapability`] record describing *how* it
//! evaluates them — its parity class against the scalar reference, its
//! SIMD level, which fault-injection sites cover it, and the tag that
//! keys the persistent cache.
//!
//! The capability record is what makes backends safely pluggable:
//!
//! * the engine refuses to mix cached artifacts across backends whose
//!   results may differ ([`KernelCapability::cache_tag`], the parity
//!   class, and the portability flag flow into the persistent-cache key);
//! * the parity suite (`tests/batch_parity.rs`) and the chaos harness
//!   enumerate the registry (`bevra_engine::registry`) and derive the
//!   right assertion per backend from [`KernelCapability::parity`] — a
//!   new backend gets parity and fault coverage without new test code;
//! * the `SweepHealth` ledger and the observability metrics record which
//!   backend produced a sweep.
//!
//! Four built-in backends are provided (see [`scalar`], [`batch`],
//! [`fast`], [`portable`]):
//!
//! | backend | parity | π evaluation | grid-primes? |
//! |---|---|---|---|
//! | `scalar` | bitwise | libm, per point | no |
//! | `batch` | bitwise | libm, loop-interchanged | yes |
//! | `fast` | ≤ 1e-13 rel | packed polynomial (B only) | yes |
//! | `deterministic-portable` | ≤ 1e-13 rel | scalar polynomial, everywhere | yes |
//!
//! The `deterministic-portable` backend evaluates **every** π through
//! [`Utility::value_portable`] — the branch-free polynomial
//! `1 − e^{−x}` with integer-scaled exponent rounding
//! (`bevra_num::one_minus_exp_neg`), no libm anywhere — so its results
//! are bit-identical across operating systems, libm versions, and CPU
//! architectures. It exists to retire the libm-ULP drift that made
//! pinned golden artifacts environment-sensitive (noted when the golden
//! corpus landed): portable artifacts can be pinned by digest.

use crate::discrete::DiscreteModel;
use crate::discrete_batch::{
    best_effort_grid, k_max_grid_pi, reservation_grid_pi, sweep_grid_fused, GridSweep, PiEval,
    FAST_TRUNC_REL,
};
use bevra_utility::Utility;

/// Borrowed type-erased model view every [`Kernel`] entry point takes.
///
/// Built with [`DiscreteModel::as_dyn`]; evaluates bitwise identically to
/// the monomorphized model it views (dynamic dispatch selects the same
/// method bodies, and Rust has no fast-math re-association).
pub type DynModel<'a> = DiscreteModel<&'a dyn Utility>;

/// How close a backend's results are to the scalar reference path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParityClass {
    /// Bit-for-bit identical to [`DiscreteModel::k_max`] /
    /// [`DiscreteModel::best_effort`] / [`DiscreteModel::reservation`]
    /// called point by point.
    Bitwise,
    /// `B` and `R` within the given **relative** tolerance of the scalar
    /// path; `k_max` may differ only where the value curve `k·π(C/k)` is
    /// flat to within the same tolerance (a tie between thresholds, so
    /// the induced `R` difference is itself inside the budget). Results
    /// are still deterministic: same input bits ⇒ same output bits.
    Tolerance(f64),
}

/// SIMD engagement of a backend's hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Scalar code only.
    None,
    /// Plain loops written for LLVM auto-vectorization.
    Autovec,
    /// Runtime-dispatched AVX2 intrinsics with a scalar fallback that is
    /// bitwise identical to the packed path.
    Avx2,
    /// Runtime-dispatched AVX-512 intrinsics — same portable bodies as the
    /// AVX2 tier recompiled with 8-lane registers, bitwise identical.
    Avx512,
    /// Runtime-dispatched NEON (aarch64), same bit-parity contract.
    Neon,
}

impl SimdLevel {
    /// Lowercase stable name, as stamped into health ledgers and reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::None => "none",
            SimdLevel::Autovec => "autovec",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
            SimdLevel::Neon => "neon",
        }
    }
}

/// Map the numeric substrate's resolved dispatch tier
/// ([`bevra_num::simd::level`], honoring `BEVRA_SIMD`) onto the kernel
/// vocabulary. Used by backends whose hot loops run the dispatched
/// kernels, so their capability record reflects what actually executes.
#[must_use]
pub fn resolved_simd_level() -> SimdLevel {
    match bevra_num::simd::level() {
        bevra_num::simd::Level::Scalar => SimdLevel::None,
        bevra_num::simd::Level::Avx2 => SimdLevel::Avx2,
        bevra_num::simd::Level::Avx512 => SimdLevel::Avx512,
        bevra_num::simd::Level::Neon => SimdLevel::Neon,
    }
}

/// Self-reported description of a backend, consumed by the engine, the
/// persistent cache, the health ledger, and the auto-enumerating test
/// suites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCapability {
    /// Unique stable name; the registry rejects duplicates, `BEVRA_KERNEL`
    /// selects by it, and the health ledger and metrics record it. It is
    /// deliberately *not* hashed into the persistent-cache key — bitwise
    /// twins (scalar/batch) share entries via a shared [`cache_tag`].
    ///
    /// [`cache_tag`]: KernelCapability::cache_tag
    pub name: &'static str,
    /// Parity contract against the scalar reference path. The parity suite
    /// derives its per-backend assertion from this.
    pub parity: ParityClass,
    /// SIMD engagement of the backend's hot loop (informational: SIMD
    /// dispatch never changes result bits, so it does not key the cache).
    pub simd: SimdLevel,
    /// Whether results are bit-identical across platforms and libm
    /// versions (true only for backends that never call libm).
    pub portable: bool,
    /// Whether the engine's `prime()` should drive this backend over whole
    /// grids (and persist the rows). `false` means the backend evaluates
    /// lazily per point through the engine's memo caches — the scalar
    /// backend's contract, which also keeps it off the persistent cache.
    pub grid_priming: bool,
    /// Whether [`Kernel::sweep_grid`] runs the fused B+R traversal
    /// ([`sweep_grid_fused`]) instead of composing the three primitives —
    /// one table pass serves both architectures. Informational for
    /// bitwise backends (the fused exact pass is op-for-op the unfused
    /// pair); for tolerance backends the fused fast pass regroups the
    /// summation, so the flag pairs with a distinct [`cache_tag`].
    ///
    /// [`cache_tag`]: KernelCapability::cache_tag
    pub fused: bool,
    /// Fault-injection sites (`bevra_faults` site names) that cover this
    /// backend's evaluations — the chaos harness asserts through these.
    pub fault_sites: &'static [&'static str],
    /// Persistent-cache key tag. Backends whose results are bitwise
    /// interchangeable share a tag (scalar/batch); tolerance-class
    /// backends get distinct tags so cached rows never cross parity
    /// classes.
    pub cache_tag: u8,
}

/// Every built-in backend evaluates π behind the fault-injection sites
/// `eval/best_effort` and `eval/reservation` (the wrapping lives in the
/// shared grid kernels and the scalar model methods, so it is
/// backend-independent).
const EVAL_SITES: &[&str] = &["eval/best_effort", "eval/reservation"];

/// An evaluation backend for the discrete model's grid primitives.
///
/// Object-safe by design: engines hold a `&'static dyn Kernel` and models
/// cross the boundary as [`DynModel`] views. All entry points take a
/// **sorted ascending, NaN-free** capacity grid (the engine sorts and
/// dedups before calling) and mirror the corresponding scalar or batched
/// free function.
pub trait Kernel: Send + Sync {
    /// The backend's self-description. Must be constant over the life of
    /// the process: the engine hashes parts of it into persistent-cache
    /// keys and stamps it into health ledgers.
    fn capability(&self) -> KernelCapability;

    /// Admission thresholds `k_max(C)` per capacity.
    ///
    /// Parity contract: equal to [`DiscreteModel::k_max`] per point for
    /// [`ParityClass::Bitwise`] backends; for tolerance backends, may
    /// differ only on value-curve plateaus (see [`ParityClass`]).
    /// No fault sites — the argmax is pure integer search over π.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is not sorted ascending or contains NaN
    /// (grid-priming backends; the scalar backend accepts any grid).
    fn k_max_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<Option<u64>>;

    /// Normalized best-effort utility `B(C)` per capacity.
    ///
    /// Parity contract: per [`KernelCapability::parity`] against
    /// [`DiscreteModel::best_effort`]. Every returned value passes
    /// through the `eval/best_effort` fault site (positive capacities
    /// only, mirroring the scalar early return at `C ≤ 0`).
    ///
    /// # Panics
    ///
    /// Panics if `capacities` is not sorted ascending or contains NaN
    /// (grid-priming backends; the scalar backend accepts any grid).
    fn best_effort_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<f64>;

    /// Normalized reservation utility `R(C)` per capacity, given the
    /// backend's own `k_max_grid` and `best_effort_grid` outputs (elastic
    /// lanes delegate `R = B`).
    ///
    /// Parity contract: per [`KernelCapability::parity`] against
    /// [`DiscreteModel::reservation`]. Every returned value passes
    /// through the `eval/reservation` fault site (unconditionally,
    /// mirroring [`DiscreteModel::reservation_with_kmax`]).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ, or if `capacities` is not sorted
    /// ascending or contains NaN (grid-priming backends).
    fn reservation_grid(
        &self,
        model: &DynModel<'_>,
        capacities: &[f64],
        k_maxes: &[Option<u64>],
        best_efforts: &[f64],
    ) -> Vec<f64>;

    /// Full sweep: `k_max`, `B`, and `R` for every capacity. The default
    /// composes the three primitives in the canonical order (thresholds →
    /// best-effort → reservations), mirroring
    /// [`crate::discrete_batch::sweep_grid`]. Backends with
    /// [`KernelCapability::fused`] override this with the fused B+R
    /// traversal ([`sweep_grid_fused`]) — same parity contract, same
    /// fault sites in the same per-lane order (all `B` wraps, then all
    /// `R` wraps), so `@at=N` fault ordinals are backend-independent.
    ///
    /// # Panics
    ///
    /// As the three primitives.
    fn sweep_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> GridSweep {
        let k_max = self.k_max_grid(model, capacities);
        let best_effort = self.best_effort_grid(model, capacities);
        let reservation = self.reservation_grid(model, capacities, &k_max, &best_effort);
        GridSweep { k_max, best_effort, reservation }
    }

    /// Total (unnormalized) value `V(C) = k̄·B(C)` or `k̄·R(C)` per
    /// capacity — the quantity the engine's `value_table` prices against
    /// capacity. `reserved` selects the architecture. Same parity
    /// contract and fault sites as [`Kernel::sweep_grid`].
    ///
    /// # Panics
    ///
    /// As the three primitives.
    fn value_grid(&self, model: &DynModel<'_>, capacities: &[f64], reserved: bool) -> Vec<f64> {
        let sweep = self.sweep_grid(model, capacities);
        let kbar = model.mean_load();
        let per_flow = if reserved { sweep.reservation } else { sweep.best_effort };
        per_flow.into_iter().map(|v| kbar * v).collect()
    }
}

/// The scalar reference backend: per-point calls into the model.
struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn capability(&self) -> KernelCapability {
        KernelCapability {
            name: "scalar",
            parity: ParityClass::Bitwise,
            simd: SimdLevel::None,
            portable: false,
            grid_priming: false,
            fused: false,
            fault_sites: EVAL_SITES,
            cache_tag: 0,
        }
    }

    fn k_max_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<Option<u64>> {
        capacities.iter().map(|&c| model.k_max(c)).collect()
    }

    fn best_effort_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<f64> {
        capacities.iter().map(|&c| model.best_effort(c)).collect()
    }

    fn reservation_grid(
        &self,
        model: &DynModel<'_>,
        capacities: &[f64],
        k_maxes: &[Option<u64>],
        _best_efforts: &[f64],
    ) -> Vec<f64> {
        assert_eq!(capacities.len(), k_maxes.len(), "k_max table length mismatch");
        // The scalar path re-derives the elastic delegation internally
        // (`reservation_with_kmax(None)` calls `best_effort`), exactly as
        // the per-point engine does.
        capacities
            .iter()
            .zip(k_maxes)
            .map(|(&c, &km)| model.reservation_with_kmax(c, km))
            .collect()
    }
}

/// The grid-batched exact backend: loop-interchanged, bitwise.
struct BatchKernel;

impl Kernel for BatchKernel {
    fn capability(&self) -> KernelCapability {
        KernelCapability {
            name: "batch",
            parity: ParityClass::Bitwise,
            simd: SimdLevel::Autovec,
            portable: false,
            grid_priming: true,
            fused: true,
            fault_sites: EVAL_SITES,
            // Shares the scalar tag: results are bitwise interchangeable
            // (the fused exact sweep mirrors the unfused pair op for op).
            cache_tag: 0,
        }
    }

    fn k_max_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<Option<u64>> {
        // Per-point thresholds (not the carried bracket): the batch
        // backend's contract is an op-for-op mirror of the scalar path.
        capacities.iter().map(|&c| model.k_max(c)).collect()
    }

    fn best_effort_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<f64> {
        best_effort_grid(model, capacities, PiEval::Exact)
    }

    fn reservation_grid(
        &self,
        model: &DynModel<'_>,
        capacities: &[f64],
        k_maxes: &[Option<u64>],
        best_efforts: &[f64],
    ) -> Vec<f64> {
        reservation_grid_pi(model, capacities, k_maxes, best_efforts, PiEval::Exact)
    }

    fn sweep_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> GridSweep {
        // Fused B+R traversal; bitwise identical to composing the three
        // primitives (the pointwise fused loop is an op-for-op mirror).
        sweep_grid_fused(model, capacities, PiEval::Exact)
    }
}

/// The vectorized fast backend: packed polynomial π for `B`, carried
/// argmax for `k_max`, exact π for `R`.
struct FastKernel;

impl Kernel for FastKernel {
    fn capability(&self) -> KernelCapability {
        KernelCapability {
            name: "fast",
            parity: ParityClass::Tolerance(FAST_TRUNC_REL),
            // Runtime truth, not a static claim: reflects the dispatch
            // tier the numeric kernels resolved (honoring `BEVRA_SIMD`).
            // Cached after first use, so constant for the process life.
            simd: resolved_simd_level(),
            portable: false,
            grid_priming: true,
            fused: true,
            fault_sites: EVAL_SITES,
            // Tag 3 (formerly 1): the fused k-span sweep changed the fast
            // backend's result bits, so cached unfused rows must not be
            // served to it. SIMD tier does NOT key the cache — all tiers
            // produce identical bits by the wrapper contract.
            cache_tag: 3,
        }
    }

    fn k_max_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<Option<u64>> {
        // Carried bracket over the scalar V(k): thresholds are bitwise
        // the scalar ones (the fast π never feeds the argmax).
        k_max_grid_pi(model, capacities, PiEval::Fast)
    }

    fn best_effort_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<f64> {
        best_effort_grid(model, capacities, PiEval::Fast)
    }

    fn reservation_grid(
        &self,
        model: &DynModel<'_>,
        capacities: &[f64],
        k_maxes: &[Option<u64>],
        best_efforts: &[f64],
    ) -> Vec<f64> {
        reservation_grid_pi(model, capacities, k_maxes, best_efforts, PiEval::Fast)
    }

    fn sweep_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> GridSweep {
        // Fused fast sweep: per-lane k-span walk with the R head as an
        // accumulator snapshot (utilities without a k-span kernel fall
        // back to the unfused fast composition inside). Same tolerance
        // contract as the primitives, different summation grouping —
        // hence this backend's distinct cache tag.
        sweep_grid_fused(model, capacities, PiEval::Fast)
    }
}

/// The cross-platform deterministic backend: scalar polynomial π
/// everywhere, no libm.
struct PortableKernel;

impl Kernel for PortableKernel {
    fn capability(&self) -> KernelCapability {
        KernelCapability {
            name: "deterministic-portable",
            parity: ParityClass::Tolerance(FAST_TRUNC_REL),
            simd: SimdLevel::None,
            portable: true,
            grid_priming: true,
            fused: true,
            fault_sites: EVAL_SITES,
            // The fused exact/portable sweep is bitwise the unfused pair,
            // so the tag (and the pinned portable digests) are unchanged.
            cache_tag: 2,
        }
    }

    fn k_max_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<Option<u64>> {
        k_max_grid_pi(model, capacities, PiEval::Portable)
    }

    fn best_effort_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> Vec<f64> {
        best_effort_grid(model, capacities, PiEval::Portable)
    }

    fn reservation_grid(
        &self,
        model: &DynModel<'_>,
        capacities: &[f64],
        k_maxes: &[Option<u64>],
        best_efforts: &[f64],
    ) -> Vec<f64> {
        reservation_grid_pi(model, capacities, k_maxes, best_efforts, PiEval::Portable)
    }

    fn sweep_grid(&self, model: &DynModel<'_>, capacities: &[f64]) -> GridSweep {
        // Fused, and bitwise the unfused portable pair — pinned portable
        // digests are unaffected.
        sweep_grid_fused(model, capacities, PiEval::Portable)
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
static BATCH: BatchKernel = BatchKernel;
static FAST: FastKernel = FastKernel;
static PORTABLE: PortableKernel = PortableKernel;

/// The scalar reference backend (`BEVRA_KERNEL=scalar`): per-point, no
/// grid priming, the parity anchor every other backend is measured
/// against.
#[must_use]
pub fn scalar() -> &'static dyn Kernel {
    &SCALAR
}

/// The grid-batched exact backend (`BEVRA_KERNEL=batch`, the default):
/// loop-interchanged table walk, bitwise identical to the scalar path.
#[must_use]
pub fn batch() -> &'static dyn Kernel {
    &BATCH
}

/// The vectorized fast backend (`BEVRA_KERNEL=fast`): packed polynomial
/// π for `B`, within 1e-13 relative of scalar; `k_max` and `R` bitwise.
#[must_use]
pub fn fast() -> &'static dyn Kernel {
    &FAST
}

/// The cross-platform deterministic backend
/// (`BEVRA_KERNEL=deterministic-portable`): every π through the
/// branch-free polynomial, bit-identical on every platform and libm.
#[must_use]
pub fn portable() -> &'static dyn Kernel {
    &PORTABLE
}

/// The four built-in backends, in registry order.
#[must_use]
pub fn builtin() -> [&'static dyn Kernel; 4] {
    [scalar(), batch(), fast(), portable()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{Poisson, Tabulated};
    use bevra_utility::AdaptiveExp;

    fn model() -> DiscreteModel<AdaptiveExp> {
        let load = Tabulated::from_model(&Poisson::new(20.0), 1e-12, 1 << 12);
        DiscreteModel::new(load, AdaptiveExp::paper())
    }

    #[test]
    fn dyn_view_is_bitwise_the_monomorphized_model() {
        let m = model();
        let d = m.as_dyn();
        for c in [0.5, 2.0, 10.0, 20.0, 40.0] {
            assert_eq!(m.k_max(c), d.k_max(c));
            assert_eq!(m.best_effort(c).to_bits(), d.best_effort(c).to_bits());
            assert_eq!(m.reservation(c).to_bits(), d.reservation(c).to_bits());
        }
    }

    #[test]
    fn builtin_capabilities_are_distinctly_named() {
        let names: Vec<_> = builtin().iter().map(|k| k.capability().name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate builtin names: {names:?}");
    }

    #[test]
    fn bitwise_backends_match_scalar_reference() {
        let m = model();
        let d = m.as_dyn();
        let cs = [0.5, 2.0, 5.0, 10.0, 20.0, 40.0];
        for k in [scalar(), batch()] {
            assert_eq!(k.capability().parity, ParityClass::Bitwise);
            let got = k.sweep_grid(&d, &cs);
            for (i, &c) in cs.iter().enumerate() {
                assert_eq!(got.k_max[i], m.k_max(c), "{} k_max C={c}", k.capability().name);
                assert_eq!(got.best_effort[i].to_bits(), m.best_effort(c).to_bits());
                assert_eq!(got.reservation[i].to_bits(), m.reservation(c).to_bits());
            }
        }
    }

    #[test]
    fn value_grid_mirrors_value_table_scaling() {
        let m = model();
        let d = m.as_dyn();
        let cs = [5.0, 10.0, 20.0];
        let vb = batch().value_grid(&d, &cs, false);
        let vr = batch().value_grid(&d, &cs, true);
        for (i, &c) in cs.iter().enumerate() {
            assert_eq!(vb[i].to_bits(), (m.mean_load() * m.best_effort(c)).to_bits());
            assert_eq!(vr[i].to_bits(), (m.mean_load() * m.reservation(c)).to_bits());
        }
    }
}
