//! The variable-capacity (welfare) model — paper §4.
//!
//! A provider pays `p` per unit bandwidth and provisions
//! `C(p) = argmax_C V(C) − pC`; the resulting welfare is
//! `W(p) = V(C(p)) − p·C(p)`. Architectures are compared at equal *price*
//! rather than equal capacity, recognizing that provisioning decisions
//! respond to the architecture: the **equalizing price ratio**
//! `γ(p) = p̂/p` with `W_R(p̂) = W_B(p)` measures how much more expensive
//! reservation-capable bandwidth may be before best-effort becomes the more
//! cost-effective architecture.

use bevra_num::{brent, expand_bracket_up, golden_section_max, NumResult};

/// Result of a welfare optimization: the provisioned capacity and the
/// welfare it achieves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelfarePoint {
    /// Optimal capacity `C(p)` (0 = don't build the network).
    pub capacity: f64,
    /// Optimal welfare `W(p) = V(C(p)) − p·C(p)` (≥ 0 by the option of
    /// building nothing).
    pub welfare: f64,
}

/// Maximize `V(C) − p·C` over `C ∈ [0, c_max]`.
///
/// `V` may be a step function (rigid utilities in the discrete model), so a
/// pure golden-section search is unsafe. The strategy is: scan a dense grid
/// (linear around `c_scale`, geometric beyond), then refine the best cell
/// with golden-section. `c_scale` should be the natural capacity scale —
/// the mean load `k̄` is a good choice.
///
/// # Errors
///
/// Propagates optimizer failures (practically unreachable: the grid always
/// yields a candidate).
pub fn optimal_welfare(
    v: impl Fn(f64) -> f64,
    price: f64,
    c_scale: f64,
    c_max: f64,
) -> NumResult<WelfarePoint> {
    assert!(price >= 0.0, "price must be nonnegative");
    assert!(c_scale > 0.0 && c_max > 0.0, "capacity scales must be positive");
    let w = |c: f64| v(c) - price * c;
    // Candidate grid: 0, linear sweep to 4·c_scale, geometric to c_max.
    let mut best = WelfarePoint { capacity: 0.0, welfare: w(0.0).max(0.0) };
    let mut candidates: Vec<f64> = Vec::with_capacity(420);
    let lin_step = c_scale / 50.0;
    let mut c = lin_step;
    while c <= 4.0 * c_scale {
        candidates.push(c);
        c += lin_step;
    }
    while c <= c_max {
        candidates.push(c);
        c *= 1.05;
    }
    let mut best_idx = None;
    for (i, &c) in candidates.iter().enumerate() {
        let wc = w(c);
        if wc > best.welfare {
            best = WelfarePoint { capacity: c, welfare: wc };
            best_idx = Some(i);
        }
    }
    // Refine within the neighboring grid cells.
    if let Some(i) = best_idx {
        let lo = if i == 0 { 0.0 } else { candidates[i - 1] };
        let hi = if i + 1 < candidates.len() { candidates[i + 1] } else { c_max };
        let m = golden_section_max(&w, lo, hi, 1e-9 * c_scale)?;
        if m.value > best.welfare {
            best = WelfarePoint { capacity: m.x, welfare: m.value };
        }
    }
    // Never report negative welfare: building nothing yields exactly 0.
    if best.welfare < 0.0 {
        best = WelfarePoint { capacity: 0.0, welfare: 0.0 };
    }
    Ok(best)
}

/// Equalizing price ratio `γ(p)`: find `p̂ ≥ p` with
/// `W_R(p̂) = target_welfare` (the best-effort welfare at price `p`) and
/// return `p̂/p`.
///
/// `welfare_r` must be nonincreasing in its price argument (true for any
/// optimal-welfare function by the envelope theorem).
///
/// # Errors
///
/// Propagates bracketing failures (e.g. `W_R` never falls to the target
/// below the search cap — only possible for degenerate inputs).
pub fn equalizing_price_ratio(
    welfare_r: impl Fn(f64) -> f64,
    target_welfare: f64,
    price: f64,
) -> NumResult<f64> {
    assert!(price > 0.0, "price must be positive");
    // f increases from W-advantage ≤ 0 at p̂ = p toward positive values.
    let f = |ph: f64| target_welfare - welfare_r(ph);
    if f(price) >= 0.0 {
        // Reservation holds no advantage at this price.
        return Ok(1.0);
    }
    let br = expand_bracket_up(f, price, 0.25 * price, 1e9 * price.max(1.0))?;
    if br.lo == br.hi {
        return Ok(br.lo / price);
    }
    let ph = brent(f, br.lo, br.hi, 1e-10 * price)?;
    Ok(ph / price)
}

/// A total-utility curve `V(C)` precomputed on a capacity grid, with linear
/// interpolation between grid points.
///
/// The `γ(p)` figures require nested optimization — a welfare maximization
/// inside a price root-find inside a price sweep — and evaluating the
/// discrete `V(C)` exactly at every probe is quadratically wasteful for
/// megabyte-scale load tables. Sampling `V` once on a dense grid and
/// interpolating makes the whole sweep linear in table size. `V` is
/// nondecreasing and (piecewise) smooth, so the interpolation error is far
/// below figure resolution for a ~1000-point grid.
#[derive(Debug, Clone)]
pub struct SampledValue {
    cs: Vec<f64>,
    vs: Vec<f64>,
}

impl SampledValue {
    /// Sample `v` on a half-linear, half-geometric grid over `(0, c_max]`
    /// with `n` points, anchored at the natural scale `c_scale`.
    ///
    /// # Panics
    ///
    /// Panics for `n < 16` or nonpositive scales.
    pub fn build(v: impl Fn(f64) -> f64, c_scale: f64, c_max: f64, n: usize) -> Self {
        let cs = Self::grid(c_scale, c_max, n);
        let vs = cs.iter().map(|&c| v(c)).collect();
        Self { cs, vs }
    }

    /// The capacity grid [`Self::build`] samples on, exposed so callers
    /// (notably the parallel sweep engine) can evaluate `V` over the grid
    /// themselves — e.g. fanned out across threads — and assemble the
    /// table with [`Self::from_samples`].
    ///
    /// # Panics
    ///
    /// Panics for `n < 16` or nonpositive scales.
    #[must_use]
    pub fn grid(c_scale: f64, c_max: f64, n: usize) -> Vec<f64> {
        assert!(n >= 16, "grid too coarse");
        assert!(c_scale > 0.0 && c_max > c_scale, "bad capacity scales");
        let mut cs = Vec::with_capacity(n + 1);
        cs.push(0.0);
        let n_lin = n / 2;
        for i in 1..=n_lin {
            cs.push(4.0 * c_scale * i as f64 / n_lin as f64);
        }
        let n_geo = n - n_lin;
        let ratio = (c_max / (4.0 * c_scale)).powf(1.0 / n_geo as f64);
        let mut c = 4.0 * c_scale;
        for _ in 0..n_geo {
            c *= ratio;
            cs.push(c);
        }
        cs
    }

    /// Assemble a table from a strictly increasing grid and its samples.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ, fewer than 2 points are given, or the
    /// grid is not strictly increasing.
    #[must_use]
    pub fn from_samples(cs: Vec<f64>, vs: Vec<f64>) -> Self {
        assert_eq!(cs.len(), vs.len(), "grid and samples must pair up");
        assert!(cs.len() >= 2, "need at least two samples to interpolate");
        assert!(cs.windows(2).all(|w| w[0] < w[1]), "grid must be strictly increasing");
        Self { cs, vs }
    }

    /// Interpolated `V(C)` (clamped to the grid ends).
    #[must_use]
    pub fn value(&self, c: f64) -> f64 {
        if c <= self.cs[0] {
            return self.vs[0];
        }
        let last = self.cs.len() - 1;
        if c >= self.cs[last] {
            return self.vs[last];
        }
        let i = self.cs.partition_point(|&x| x <= c);
        let (c0, c1) = (self.cs[i - 1], self.cs[i]);
        let (v0, v1) = (self.vs[i - 1], self.vs[i]);
        v0 + (v1 - v0) * (c - c0) / (c1 - c0)
    }

    /// Welfare maximum over the grid: `max_i V(C_i) − p·C_i` (plus the
    /// build-nothing option).
    #[must_use]
    pub fn welfare(&self, price: f64) -> WelfarePoint {
        let mut best = WelfarePoint { capacity: 0.0, welfare: 0.0 };
        for (&c, &v) in self.cs.iter().zip(&self.vs) {
            let w = v - price * c;
            if w > best.welfare {
                best = WelfarePoint { capacity: c, welfare: w };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModel;
    use bevra_load::{Poisson, Tabulated};
    use bevra_utility::{AdaptiveExp, Rigid};

    #[test]
    fn sampled_value_tracks_function() {
        let sv = SampledValue::build(|c: f64| c.sqrt(), 10.0, 1e4, 1000);
        for c in [1.0, 25.0, 400.0, 9000.0] {
            assert!((sv.value(c) - c.sqrt()).abs() < 0.05 * c.sqrt(), "c={c}");
        }
    }

    #[test]
    fn sampled_welfare_close_to_exact() {
        // V = 2√C, p = 0.1 ⇒ W = 10 at C = 100.
        let sv = SampledValue::build(|c: f64| 2.0 * c.sqrt(), 20.0, 1e5, 2000);
        let wp = sv.welfare(0.1);
        assert!((wp.welfare - 10.0).abs() < 0.05, "W = {}", wp.welfare);
        assert!((wp.capacity - 100.0).abs() < 10.0);
    }

    #[test]
    fn sampled_welfare_zero_price_takes_max() {
        let sv = SampledValue::build(|c: f64| 1.0 - (-c).exp(), 1.0, 100.0, 100);
        let wp = sv.welfare(0.0);
        assert!(wp.welfare > 0.99);
    }

    #[test]
    fn quadratic_value_function() {
        // V(C) = 2√C: optimum at V' = 1/√C = p ⇒ C = 1/p², W = 1/p.
        let p = 0.1;
        let wp = optimal_welfare(|c: f64| 2.0 * c.sqrt(), p, 10.0, 1e6).unwrap();
        assert!((wp.capacity - 100.0).abs() < 0.5, "C = {}", wp.capacity);
        assert!((wp.welfare - 10.0).abs() < 1e-3);
    }

    #[test]
    fn expensive_bandwidth_builds_nothing() {
        let wp = optimal_welfare(|c: f64| 1.0 - (-c).exp(), 2.0, 1.0, 1e6).unwrap();
        assert_eq!(wp.capacity, 0.0);
        assert_eq!(wp.welfare, 0.0);
    }

    #[test]
    fn step_value_function_lands_on_step() {
        // V jumps by 1 at C = 10 and by 1 at C = 20; p = 0.05.
        let v = |c: f64| {
            let mut t = 0.0;
            if c >= 10.0 {
                t += 1.0;
            }
            if c >= 20.0 {
                t += 1.0;
            }
            t
        };
        let wp = optimal_welfare(v, 0.05, 10.0, 1e4).unwrap();
        assert!((wp.capacity - 20.0).abs() < 0.2, "C = {}", wp.capacity);
        assert!((wp.welfare - 1.0).abs() < 0.05);
    }

    #[test]
    fn discrete_model_welfare_ordered() {
        let load = Tabulated::from_model(&Poisson::new(50.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, Rigid::unit());
        let p = 0.2;
        let wb = optimal_welfare(|c| m.total_best_effort(c), p, 50.0, 5e4).unwrap();
        let wr = optimal_welfare(|c| m.total_reservation(c), p, 50.0, 5e4).unwrap();
        assert!(wr.welfare >= wb.welfare, "W_R {} < W_B {}", wr.welfare, wb.welfare);
        assert!(wb.capacity > 0.0 && wr.capacity > 0.0);
    }

    #[test]
    fn gamma_one_when_no_advantage() {
        let g = equalizing_price_ratio(|p| 1.0 - p, 1.0 - 0.3, 0.3).unwrap();
        assert_eq!(g, 1.0);
    }

    #[test]
    fn gamma_solves_the_equation() {
        // W_R(p) = 1/p (toy). Target welfare 2 at price 0.1: p̂ = 0.5, γ = 5.
        let g = equalizing_price_ratio(|p| 1.0 / p, 2.0, 0.1).unwrap();
        assert!((g - 5.0).abs() < 1e-6, "γ = {g}");
    }

    #[test]
    fn poisson_rigid_gamma_in_paper_band() {
        // §4: for Poisson loads and rigid applications γ(p) sits between
        // ~1.1 and ~1.2 over most of the price range.
        let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, Rigid::unit());
        let p = 0.3;
        let wb = optimal_welfare(|c| m.total_best_effort(c), p, 100.0, 1e5).unwrap();
        let g = equalizing_price_ratio(
            |ph| {
                optimal_welfare(|c| m.total_reservation(c), ph, 100.0, 1e5)
                    .map(|w| w.welfare)
                    .unwrap_or(0.0)
            },
            wb.welfare,
            p,
        )
        .unwrap();
        assert!(g > 1.03 && g < 1.35, "γ = {g}");
    }

    #[test]
    fn poisson_adaptive_gamma_near_one() {
        // §4: with adaptive applications the Poisson γ(p) is effectively 1
        // for all but the highest prices.
        let load = Tabulated::from_model(&Poisson::new(100.0), 1e-12, 1 << 20);
        let m = DiscreteModel::new(load, AdaptiveExp::paper());
        let p = 0.05;
        let wb = optimal_welfare(|c| m.total_best_effort(c), p, 100.0, 1e5).unwrap();
        let g = equalizing_price_ratio(
            |ph| {
                optimal_welfare(|c| m.total_reservation(c), ph, 100.0, 1e5)
                    .map(|w| w.welfare)
                    .unwrap_or(0.0)
            },
            wb.welfare,
            p,
        )
        .unwrap();
        assert!(g < 1.02, "γ = {g}");
    }
}
