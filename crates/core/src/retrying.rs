//! The retrying extension (paper §5.2): blocked reservation requests come
//! back.
//!
//! The basic model charges a rejected flow zero utility, once. In reality a
//! blocked flow retries later: it eventually gets in, but pays a
//! dissatisfaction penalty `α` per retry, and — crucially — its retries add
//! to the offered load. The model closes the loop self-consistently: if
//! the base load has mean `L` and each flow makes `D` retries on average,
//! the *effective* offered load has mean `L̂ = L·(1 + D)`, drawn from the
//! same distribution family; `D` in turn depends on the blocking rate at
//! load `L̂`. With per-attempt blocking probability `θ` and independent
//! retries, `D = θ/(1 − θ)`.
//!
//! The per-original-flow reservation utility is then
//!
//! ```text
//! R̃_L(C) = (L̂/L)·R_{L̂}(C) − α·D
//! ```
//!
//! (the factor `L̂/L` converts the per-attempt average `R_{L̂}` — which
//! counts rejected attempts as zeros — into a per-flow average, since each
//! flow makes `1 + D = L̂/L` attempts of which one succeeds). Best-effort is
//! unchanged: it never blocks, so it never triggers retries.

use crate::discrete::DiscreteModel;
use bevra_load::{Algebraic, Geometric, Poisson, Tabulated};
use bevra_num::{brent, expand_bracket_up, fixed_point, NumResult};
use bevra_utility::Utility;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A family of load distributions parameterized by their mean — the paper's
/// "the retries obey the same basic distribution" assumption. Families are
/// memoized because the retrying fixed point and the welfare optimizer
/// request many nearby means.
pub trait LoadFamily: Send + Sync {
    /// Build (or fetch from cache) the tabulated distribution with the given
    /// mean.
    fn make(&self, mean: f64) -> Arc<Tabulated>;

    /// Family name for reports.
    fn name(&self) -> &'static str;
}

/// Quantize a mean for caching: 1 part in 10⁴. Tables are *built at the
/// quantized mean*, so the cache is exact for the distribution it serves;
/// a 0.01% mean perturbation is far below every quantity the models report.
/// Without quantization the retry fixed point's wandering iterates would
/// each build (and retain) a distinct megabyte-scale table.
fn quantize(mean: f64) -> u64 {
    (mean * 1e4).round() as u64
}

/// Cache size bound: beyond this the whole cache is dropped (simple and
/// sufficient — sweeps revisit a small working set of means).
const CACHE_CAP: usize = 64;

macro_rules! cached_family {
    ($(#[$doc:meta])* $name:ident, $fam:literal, $builder:expr) => {
        $(#[$doc])*
        pub struct $name {
            tol: f64,
            max_len: usize,
            cache: Mutex<HashMap<u64, Arc<Tabulated>>>,
        }

        impl $name {
            /// New family with tabulation tolerance and length cap.
            #[must_use]
            pub fn new(tol: f64, max_len: usize) -> Self {
                Self { tol, max_len, cache: Mutex::new(HashMap::new()) }
            }
        }

        impl LoadFamily for $name {
            fn make(&self, mean: f64) -> Arc<Tabulated> {
                let key = quantize(mean);
                let mean_q = key as f64 / 1e4;
                if let Some(hit) = self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
                    return Arc::clone(hit);
                }
                #[allow(clippy::redundant_closure_call)]
                let built: Arc<Tabulated> =
                    Arc::new(($builder)(mean_q, self.tol, self.max_len));
                let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
                if cache.len() >= CACHE_CAP {
                    cache.clear();
                }
                cache.insert(key, Arc::clone(&built));
                built
            }

            fn name(&self) -> &'static str {
                $fam
            }
        }
    };
}

cached_family!(
    /// Poisson loads of varying mean.
    PoissonFamily,
    "poisson",
    |mean: f64, tol: f64, max_len: usize| Tabulated::from_model(
        &Poisson::new(mean),
        tol,
        max_len
    )
);

cached_family!(
    /// Exponential (geometric) loads of varying mean.
    GeometricFamily,
    "exponential",
    |mean: f64, tol: f64, max_len: usize| Tabulated::from_model(
        &Geometric::from_mean(mean),
        tol,
        max_len
    )
);

/// Algebraic loads of varying mean with fixed tail exponent `z`.
pub struct AlgebraicFamily {
    z: f64,
    tol: f64,
    max_len: usize,
    cache: Mutex<HashMap<u64, Arc<Tabulated>>>,
}

impl AlgebraicFamily {
    /// New family with fixed exponent `z > 2`.
    #[must_use]
    pub fn new(z: f64, tol: f64, max_len: usize) -> Self {
        assert!(z > 2.0, "algebraic family requires z > 2");
        Self { z, tol, max_len, cache: Mutex::new(HashMap::new()) }
    }
}

impl LoadFamily for AlgebraicFamily {
    fn make(&self, mean: f64) -> Arc<Tabulated> {
        let key = quantize(mean);
        let mean_q = key as f64 / 1e4;
        if let Some(hit) = self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            return Arc::clone(hit);
        }
        let model = Algebraic::from_mean(self.z, mean_q).unwrap_or_else(|e| {
            panic!("algebraic family mean {mean_q} unachievable at z = {z}: {e:?}", z = self.z)
        });
        let built = Arc::new(Tabulated::from_model(&model, self.tol, self.max_len));
        let mut cache = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if cache.len() >= CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&built));
        built
    }

    fn name(&self) -> &'static str {
        "algebraic"
    }
}

/// Diagnostics of one retrying evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryOutcome {
    /// Self-consistent effective mean load `L̂`.
    pub effective_mean: f64,
    /// Per-attempt blocking probability `θ` at `L̂`.
    pub blocking: f64,
    /// Expected retries per flow `D = θ/(1−θ)`.
    pub retries: f64,
    /// Per-original-flow reservation utility `R̃(C)`.
    pub reservation: f64,
}

/// The §5.2 retrying model.
pub struct RetryModel<U: Utility + Clone, F: LoadFamily> {
    family: F,
    utility: U,
    base_mean: f64,
    /// Utility penalty per retry `α`.
    alpha: f64,
    /// Optional fixed admission cap (footnote 9: lets a reservation network
    /// cap even *elastic* flows, where the utility-derived threshold is
    /// infinite).
    admission_cap: Option<u64>,
}

impl<U: Utility + Clone, F: LoadFamily> RetryModel<U, F> {
    /// New retrying model over a load family at base mean `L` with retry
    /// penalty `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `base_mean > 0` and `0 ≤ alpha ≤ 1`.
    pub fn new(family: F, utility: U, base_mean: f64, alpha: f64) -> Self {
        assert!(base_mean > 0.0, "base mean must be positive");
        assert!((0.0..=1.0).contains(&alpha), "retry penalty must be in [0, 1]");
        Self { family, utility, base_mean, alpha, admission_cap: None }
    }

    /// Impose a fixed admission cap on the reservation network (paper
    /// footnote 9). With elastic applications this is the only way a
    /// reservation architecture differs from best-effort — and with
    /// retries, capping can *raise* per-flow utility, since delayed flows
    /// are eventually served at a better share.
    ///
    /// # Panics
    ///
    /// Panics on a zero cap.
    #[must_use]
    pub fn with_admission_cap(mut self, cap: u64) -> Self {
        assert!(cap > 0, "admission cap must be positive");
        self.admission_cap = Some(cap);
        self
    }

    /// Base mean load `L`.
    pub fn base_mean(&self) -> f64 {
        self.base_mean
    }

    /// Retry penalty `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn model_at(&self, mean: f64) -> DiscreteModel<U> {
        let m = DiscreteModel::new(self.family.make(mean), self.utility.clone());
        match self.admission_cap {
            Some(cap) => m.with_admission_cap(cap),
            None => m,
        }
    }

    /// Best-effort utility — unaffected by retries (no blocking).
    pub fn best_effort(&self, capacity: f64) -> f64 {
        self.model_at(self.base_mean).best_effort(capacity)
    }

    /// Solve the load-inflation fixed point and evaluate the reservation
    /// architecture with retries at capacity `C`.
    ///
    /// # Errors
    ///
    /// Propagates fixed-point failures (extreme overload where the retry
    /// storm diverges).
    pub fn evaluate(&self, capacity: f64) -> NumResult<RetryOutcome> {
        let l = self.base_mean;
        // D(L̂) from the blocking rate; clamp θ away from 1 so the map stays
        // finite in deep overload (the physical reading: finite patience).
        let d_of = |lhat: f64| {
            let m = self.model_at(lhat.max(l));
            let theta = m.blocking_fraction(capacity).min(0.99);
            theta / (1.0 - theta)
        };
        let lhat = fixed_point(|x| l * (1.0 + d_of(x)), l, 0.5, 1e-9, 500)?;
        let model = self.model_at(lhat.max(l));
        let theta = model.blocking_fraction(capacity).min(0.99);
        let d = theta / (1.0 - theta);
        let r = ((lhat / l) * model.reservation(capacity) - self.alpha * d).max(0.0);
        Ok(RetryOutcome { effective_mean: lhat, blocking: theta, retries: d, reservation: r })
    }

    /// Performance gap with retries `δ̃(C) = R̃(C) − B(C)`.
    ///
    /// # Errors
    ///
    /// Propagates [`RetryModel::evaluate`] failures.
    pub fn performance_gap(&self, capacity: f64) -> NumResult<f64> {
        Ok((self.evaluate(capacity)?.reservation - self.best_effort(capacity)).max(0.0))
    }

    /// Bandwidth gap with retries: solves `B(C + Δ) = R̃(C)`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn bandwidth_gap(&self, capacity: f64) -> NumResult<f64> {
        let target = self.evaluate(capacity)?.reservation;
        let base = self.model_at(self.base_mean);
        if base.best_effort(capacity) + 1e-12 >= target {
            return Ok(0.0);
        }
        let f = |d: f64| base.best_effort(capacity + d) - target;
        let br = expand_bracket_up(f, 0.0, 0.01 * self.base_mean, 1e7 * self.base_mean)?;
        if br.lo == br.hi {
            return Ok(br.lo);
        }
        brent(f, br.lo, br.hi, 1e-9 * self.base_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_utility::{AdaptiveExp, Rigid};

    #[test]
    fn no_blocking_means_no_inflation() {
        // Poisson load deeply overprovisioned: θ ≈ 0, L̂ ≈ L, R̃ ≈ R.
        let rm = RetryModel::new(PoissonFamily::new(1e-12, 1 << 20), Rigid::unit(), 50.0, 0.1);
        let out = rm.evaluate(200.0).unwrap();
        assert!((out.effective_mean - 50.0).abs() < 1e-6);
        assert!(out.blocking < 1e-10);
        assert!(out.retries < 1e-10);
    }

    #[test]
    fn blocking_inflates_load() {
        let rm = RetryModel::new(PoissonFamily::new(1e-12, 1 << 20), Rigid::unit(), 50.0, 0.1);
        let out = rm.evaluate(40.0).unwrap();
        assert!(out.effective_mean > 50.0, "L̂ = {}", out.effective_mean);
        assert!(out.blocking > 0.05);
        // Self-consistency: L̂ = L(1 + D).
        assert!((out.effective_mean - 50.0 * (1.0 + out.retries)).abs() < 1e-4);
    }

    #[test]
    fn zero_penalty_recovers_higher_utility() {
        // With α = 0 the per-flow reservation utility is the conditional
        // utility of eventually-admitted flows — at least the basic R.
        let fam = GeometricFamily::new(1e-12, 1 << 20);
        let rm = RetryModel::new(fam, AdaptiveExp::paper(), 50.0, 0.0);
        let c = 60.0;
        let out = rm.evaluate(c).unwrap();
        let basic = DiscreteModel::new(
            GeometricFamily::new(1e-12, 1 << 20).make(50.0),
            AdaptiveExp::paper(),
        );
        assert!(out.reservation >= basic.reservation(c) - 0.02, "retry {} vs basic {}", out.reservation, basic.reservation(c));
    }

    #[test]
    fn penalty_reduces_utility() {
        let c = 45.0;
        let mk = |alpha| {
            RetryModel::new(GeometricFamily::new(1e-12, 1 << 20), Rigid::unit(), 50.0, alpha)
                .evaluate(c)
                .unwrap()
                .reservation
        };
        let r0 = mk(0.0);
        let r_half = mk(0.5);
        assert!(r_half < r0, "α=0.5 gives {r_half} vs α=0 {r0}");
    }

    #[test]
    fn large_c_disutility_is_alpha_theta() {
        // §5.2: for large C, R̃ ≈ 1 − α·θ.
        let rm = RetryModel::new(GeometricFamily::new(1e-12, 1 << 20), Rigid::unit(), 50.0, 0.5);
        let c = 250.0;
        let out = rm.evaluate(c).unwrap();
        let predicted = 1.0 - 0.5 * out.blocking;
        assert!((out.reservation - predicted).abs() < 5e-3, "{} vs {predicted}", out.reservation);
    }

    #[test]
    fn bandwidth_gap_roundtrip_with_retries() {
        let rm = RetryModel::new(GeometricFamily::new(1e-12, 1 << 20), AdaptiveExp::paper(), 50.0, 0.1);
        let c = 75.0;
        let d = rm.bandwidth_gap(c).unwrap();
        let target = rm.evaluate(c).unwrap().reservation;
        assert!((rm.best_effort(c + d) - target).abs() < 1e-6);
    }
}
