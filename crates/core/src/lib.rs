//! The comparative analysis of Breslau & Shenker,
//! *"Best-Effort versus Reservations: A Simple Comparative Analysis"*
//! (SIGCOMM 1998) — the paper's primary contribution, implemented in full.
//!
//! # The question
//!
//! Should a network adopt a reservation-capable (admission-controlled)
//! architecture, or stay best-effort-only and simply buy more bandwidth?
//! The paper formalizes the comparison on a single bottleneck link of
//! capacity `C` shared equally by a random number of identical flows.
//!
//! # The quantities
//!
//! With load distribution `P(k)` (mean `k̄`) and per-flow utility `π(b)`:
//!
//! * **Best-effort**: every flow is admitted, each gets `C/k`;
//!   `B(C) = (1/k̄)·Σ_k P(k)·k·π(C/k)`.
//! * **Reservations**: at most `k_max(C) = argmax_k k·π(C/k)` flows are
//!   admitted; admitted flows get `C/min(k, k_max)`, rejected flows get 0;
//!   `R(C) = (1/k̄)·Σ_k P(k)·min(k, k_max)·π(C/min(k, k_max))`.
//! * **Performance gap** `δ(C) = R(C) − B(C)` and **bandwidth gap** `Δ(C)`
//!   solving `R(C) = B(C + Δ(C))` — how much extra capacity buys best-effort
//!   parity ([`gaps`]).
//! * **Welfare** `W(p) = max_C V(C) − pC` at bandwidth price `p`, and the
//!   **equalizing price ratio** `γ(p)`: how much more expensive reservation
//!   bandwidth may be before best-effort wins ([`welfare`]).
//!
//! # The models
//!
//! * [`discrete`] — numerical evaluation on tabulated loads (paper §3.1);
//! * [`continuum`] — the analytically tractable twin (§3.2): a generic
//!   quadrature evaluator plus every closed form the paper derives, each
//!   cross-checked against the other in tests;
//! * [`sampling`] — §5.1: utility driven by the worst of `S` load samples;
//! * [`retrying`] — §5.2: blocked reservations retry at penalty `α`,
//!   self-consistently inflating the offered load;
//! * [`asymptotics`] — the paper's limit formulas (logarithmic/linear
//!   bandwidth-gap growth, `γ(0⁺)` constants, the `(e−1)·C` worst case),
//!   exposed as plain functions so experiments can compare measured curves
//!   against predicted ones.

#![deny(missing_docs)]

pub mod asymptotics;
pub mod continuum;
pub mod discrete;
pub mod discrete_batch;
pub mod gaps;
pub mod heterogeneous;
pub mod kernel;
pub mod retrying;
pub mod sampling;
pub mod welfare;

pub use discrete::DiscreteModel;
pub use discrete_batch::{
    best_effort_grid, k_max_grid, reservation_grid, sweep_grid, sweep_grid_fused, GridSweep,
    PiEval,
};
pub use kernel::{DynModel, Kernel, KernelCapability, ParityClass, SimdLevel};
pub use gaps::{bandwidth_gap, performance_gap};
pub use heterogeneous::{mix_loads, FlowClass, HeterogeneousModel, RiskAverseModel};
pub use retrying::RetryModel;
pub use sampling::SamplingModel;
pub use welfare::{equalizing_price_ratio, optimal_welfare, SampledValue, WelfarePoint};
