//! Quadrature-based evaluation of the continuum model for arbitrary
//! (load density, utility) pairs.

use bevra_load::ContinuumLoad;
use bevra_num::{brent, expand_bracket_up, golden_section_max, integrate, integrate_to_inf, NumResult};
use bevra_utility::Utility;

/// The continuum model: load density `P(k)` on `[lo, ∞)`, per-flow utility
/// `π(b)`; total utilities
///
/// ```text
/// V_B(C) = ∫ P(k)·k·π(C/k) dk
/// V_R(C) = ∫_lo^{k_max} P(k)·k·π(C/k) dk + k_max·π(C/k_max)·P[k > k_max]
/// ```
///
/// normalized by the mean `k̄`. Integrals are split at the load levels
/// `C/b` for each utility knot `b` (slope breaks of piecewise utilities), so
/// rigid and ramp utilities integrate exactly as a smooth quadrature problem
/// per segment; the final unbounded segment uses the tanh-sinh semi-infinite
/// rule.
pub struct ContinuumModel<L: ContinuumLoad, U: Utility> {
    load: L,
    utility: U,
    tol: f64,
}

impl<L: ContinuumLoad, U: Utility> ContinuumModel<L, U> {
    /// New continuum model with the default quadrature tolerance (1e−10).
    pub fn new(load: L, utility: U) -> Self {
        Self { load, utility, tol: 1e-10 }
    }

    /// Override the quadrature tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// The load density.
    pub fn load(&self) -> &L {
        &self.load
    }

    /// The utility function.
    pub fn utility(&self) -> &U {
        &self.utility
    }

    /// Mean offered load `k̄`.
    pub fn mean_load(&self) -> f64 {
        self.load.mean()
    }

    /// Continuous admission threshold `k_max(C)` and the peak total utility
    /// `k_max·π(C/k_max)` it attains.
    ///
    /// Returns `None` for elastic utilities (no finite maximizer): the
    /// architectures then coincide.
    pub fn k_max(&self, capacity: f64) -> Option<(f64, f64)> {
        if capacity <= 0.0 {
            return None;
        }
        let f = |k: f64| {
            if k <= 0.0 {
                0.0
            } else {
                k * self.utility.value(capacity / k)
            }
        };
        let hi = 1e6 * capacity.max(1.0);
        let m = golden_section_max(f, 1e-12, hi, 1e-10 * capacity.max(1.0)).ok()?;
        // A maximizer pinned at the search boundary means V was still
        // increasing: elastic. Detect by comparing against a far probe.
        if f(hi * 0.999_999) >= m.value {
            return None;
        }
        if m.value <= 0.0 {
            return None;
        }
        Some((m.x, m.value))
    }

    /// Load levels at which the integrand `k·P(k)·π(C/k)` is non-smooth.
    fn split_points(&self, capacity: f64, lo: f64, hi: f64) -> Vec<f64> {
        let mut pts = vec![lo];
        let mut knots: Vec<f64> = self
            .utility
            .knots()
            .into_iter()
            .filter(|&b| b > 0.0)
            .map(|b| capacity / b)
            .collect();
        // Also split at C itself: many utilities change character at b = 1.
        knots.push(capacity);
        knots.sort_by(f64::total_cmp);
        for k in knots {
            if k > lo && k < hi {
                pts.push(k);
            }
        }
        pts.push(hi);
        pts.dedup();
        pts
    }

    /// `∫_a^b P(k)·k·π(C/k) dk` with knot-aware splitting; `b = ∞` allowed.
    fn utility_integral(&self, capacity: f64, a: f64, b: f64) -> NumResult<f64> {
        let integrand = |k: f64| {
            if k <= 0.0 {
                return 0.0;
            }
            self.load.density(k) * k * self.utility.value(capacity / k)
        };
        // Finite splits; treat the last segment as semi-infinite if b = ∞.
        let finite_hi = if b.is_finite() { b } else { (16.0 * capacity).max(4.0 * a) };
        let pts = self.split_points(capacity, a, finite_hi);
        let mut total = 0.0;
        for w in pts.windows(2) {
            total += integrate(integrand, w[0], w[1], self.tol)?;
        }
        if !b.is_finite() {
            total += integrate_to_inf(integrand, finite_hi, self.tol)?;
        }
        Ok(total)
    }

    /// Total best-effort utility `V_B(C)`.
    pub fn total_best_effort(&self, capacity: f64) -> NumResult<f64> {
        if capacity <= 0.0 {
            return Ok(0.0);
        }
        self.utility_integral(capacity, self.load.support_lo(), f64::INFINITY)
    }

    /// Total reservation utility `V_R(C)`.
    pub fn total_reservation(&self, capacity: f64) -> NumResult<f64> {
        if capacity <= 0.0 {
            return Ok(0.0);
        }
        let Some((kmax, peak)) = self.k_max(capacity) else {
            return self.total_best_effort(capacity);
        };
        let lo = self.load.support_lo();
        if kmax <= lo {
            // Even the smallest possible population exceeds the optimum:
            // all mass is in overload, every load level is truncated to
            // k_max admitted flows.
            return Ok(peak * self.load.ccdf(lo));
        }
        let body = self.utility_integral(capacity, lo, kmax)?;
        // Overload: each load level k > k_max serves k_max flows at the
        // peak per-capacity utility (peak = k_max·π(C/k_max), evaluated at
        // the optimizer so rigid steps cannot be lost to rounding).
        Ok(body + peak * self.load.ccdf(kmax))
    }

    /// Normalized best-effort utility `B(C) = V_B(C)/k̄`.
    pub fn best_effort(&self, capacity: f64) -> NumResult<f64> {
        Ok(self.total_best_effort(capacity)? / self.load.mean())
    }

    /// Normalized reservation utility `R(C) = V_R(C)/k̄`.
    pub fn reservation(&self, capacity: f64) -> NumResult<f64> {
        Ok(self.total_reservation(capacity)? / self.load.mean())
    }

    /// Performance gap `δ(C) = R(C) − B(C)`.
    pub fn performance_gap(&self, capacity: f64) -> NumResult<f64> {
        Ok((self.reservation(capacity)? - self.best_effort(capacity)?).max(0.0))
    }

    /// Bandwidth gap `Δ(C)`: solves `B(C + Δ) = R(C)` by bracket + Brent.
    pub fn bandwidth_gap(&self, capacity: f64) -> NumResult<f64> {
        let target = self.reservation(capacity)?;
        if self.best_effort(capacity)? >= target {
            return Ok(0.0);
        }
        let kbar = self.load.mean();
        let f = |d: f64| match self.best_effort(capacity + d) {
            Ok(b) => b - target,
            Err(_) => f64::NAN,
        };
        let br = expand_bracket_up(f, 0.0, 0.05 * kbar.max(1.0), 1e9 * kbar)?;
        if br.lo == br.hi {
            return Ok(br.lo);
        }
        brent(f, br.lo, br.hi, 1e-9 * kbar.max(1.0))
    }

    /// Flow-perspective blocking fraction
    /// `θ(C) = (1/k̄)·∫_{k_max}^∞ (k − k_max)·P(k) dk`, in closed form via
    /// the load's tail moments.
    pub fn blocking_fraction(&self, capacity: f64) -> f64 {
        let Some((kmax, _)) = self.k_max(capacity) else {
            return 0.0;
        };
        let kbar = self.load.mean();
        ((self.load.tail_mean(kmax) - kmax * self.load.ccdf(kmax)) / kbar).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bevra_load::{ExponentialDensity, ParetoDensity};
    use bevra_utility::{Ramp, Rigid};

    #[test]
    fn exponential_rigid_matches_closed_form() {
        // Paper §3.3: V_B = (1/β)(1 − e^{−βC}(1+βC)), V_R = (1/β)(1−e^{−βC}).
        let beta = 0.02;
        let m = ContinuumModel::new(ExponentialDensity::new(beta), Rigid::unit());
        for c in [10.0, 50.0, 120.0] {
            let vb = m.total_best_effort(c).unwrap();
            let want_b = (1.0 - (-beta * c).exp() * (1.0 + beta * c)) / beta;
            assert!((vb - want_b).abs() < 1e-6, "C={c}: V_B {vb} vs {want_b}");
            let vr = m.total_reservation(c).unwrap();
            let want_r = (1.0 - (-beta * c).exp()) / beta;
            assert!((vr - want_r).abs() < 1e-5, "C={c}: V_R {vr} vs {want_r}");
        }
    }

    #[test]
    fn pareto_rigid_matches_closed_form() {
        // Normalized: B = 1 − C^{2−z}, R = 1 − C^{2−z}/(z−1).
        let z = 3.0;
        let m = ContinuumModel::new(ParetoDensity::new(z), Rigid::unit());
        for c in [2.0, 5.0, 20.0] {
            let b = m.best_effort(c).unwrap();
            assert!((b - (1.0 - c.powf(2.0 - z))).abs() < 1e-7, "C={c}: B={b}");
            let r = m.reservation(c).unwrap();
            assert!((r - (1.0 - c.powf(2.0 - z) / (z - 1.0))).abs() < 1e-6, "C={c}: R={r}");
        }
    }

    #[test]
    fn pareto_ramp_gap_matches_derivation() {
        // δ·k̄ = C^{2−z}·a(1−a^{z−2})/((1−a)(z−2)) — the formula the paper
        // prints for the continuum adaptive case.
        let (z, a) = (3.0, 0.5);
        let m = ContinuumModel::new(ParetoDensity::new(z), Ramp::new(a));
        for c in [4.0, 10.0] {
            let delta = m.performance_gap(c).unwrap();
            let want = c.powf(2.0 - z) * a * (1.0 - a.powf(z - 2.0))
                / ((1.0 - a) * (z - 2.0))
                / m.mean_load();
            assert!((delta - want).abs() < 1e-7, "C={c}: δ={delta} vs {want}");
        }
    }

    #[test]
    fn bandwidth_gap_linear_for_pareto_rigid() {
        // Δ(C) = C((z−1)^{1/(z−2)} − 1); z = 3 ⇒ Δ = C.
        let m = ContinuumModel::new(ParetoDensity::new(3.0), Rigid::unit());
        for c in [3.0, 8.0, 20.0] {
            let d = m.bandwidth_gap(c).unwrap();
            assert!((d - c).abs() < 0.02 * c, "C={c}: Δ={d}");
        }
    }

    #[test]
    fn k_max_is_capacity_for_rigid_and_ramp() {
        let m = ContinuumModel::new(ParetoDensity::new(3.0), Rigid::unit());
        let (k, v) = m.k_max(10.0).unwrap();
        assert!((k - 10.0).abs() < 1e-3, "k_max {k}");
        assert!((v - 10.0).abs() < 1e-3);
        let m2 = ContinuumModel::new(ParetoDensity::new(3.0), Ramp::new(0.3));
        let (k2, _) = m2.k_max(10.0).unwrap();
        assert!((k2 - 10.0).abs() < 1e-3, "ramp k_max {k2}");
    }

    #[test]
    fn blocking_fraction_closed_form_pareto() {
        // With kmax = C: tail_mean(C) − C·ccdf(C) = k̄C^{2−z} − C^{2−z};
        // dividing by k̄ = (z−1)/(z−2) gives θ = C^{2−z}/(z−1).
        let z = 3.0;
        let m = ContinuumModel::new(ParetoDensity::new(z), Rigid::unit());
        for c in [2.0, 6.0] {
            let theta = m.blocking_fraction(c);
            let want = c.powf(2.0 - z) / (z - 1.0);
            assert!((theta - want).abs() < 2e-3 * want, "C={c}: θ={theta} want={want}");
        }
    }

    #[test]
    fn r_dominates_b() {
        let m = ContinuumModel::new(ExponentialDensity::from_mean(100.0), Ramp::new(0.5));
        for c in [20.0, 100.0, 400.0] {
            assert!(m.reservation(c).unwrap() >= m.best_effort(c).unwrap() - 1e-9);
        }
    }
}
