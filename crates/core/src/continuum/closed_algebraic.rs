//! Closed forms for algebraic (Pareto) continuum loads (paper §3.3, §4).

/// Algebraic continuum load `P(k) = (z−1)k^{−z}` (`k ≥ 1`, `z > 2`) with a
/// rigid or ramp utility, all §3.3/§4 quantities in closed form.
///
/// Everything is controlled by a single coefficient
///
/// ```text
/// H(a, z) = 1 + a(1 − a^{z−2})/(1 − a)     (rigid: a → 1 gives H = z − 1)
/// ```
///
/// in terms of which (normalized by `k̄ = (z−1)/(z−2)`, valid `C ≥ 1`):
///
/// ```text
/// R(C) = 1 − C^{2−z}/(z−1)        B(C) = 1 − C^{2−z}·H/(z−1)
/// δ(C) = C^{2−z}(H − 1)/(z−1)     Δ(C) = C·(H^{1/(z−2)} − 1)
/// γ(p) = H^{1/(z−2)}              (independent of p!)
/// ```
///
/// The bandwidth gap grows **linearly** in capacity and the equalizing price
/// ratio does **not** converge to 1 as bandwidth gets cheap — the paper's
/// central argument that heavy-tailed loads keep reservations relevant no
/// matter how cheap bandwidth becomes. In the `z → 2⁺` rigid limit
/// `Δ → (e−1)·C` and `γ → e`, the conjectured maximal advantage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgebraicClosed {
    /// Load tail exponent `z > 2`.
    pub z: f64,
    /// The `H` coefficient (see type docs).
    pub h: f64,
}

impl AlgebraicClosed {
    /// Closed forms for **rigid** applications (`b̄ = 1`): `H = z − 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `z > 2`.
    #[must_use]
    pub fn rigid(z: f64) -> Self {
        assert!(z > 2.0, "algebraic continuum requires z > 2");
        Self { z, h: z - 1.0 }
    }

    /// Closed forms for the **ramp** utility with adaptivity `a ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `z > 2` and `0 < a ≤ 1`.
    #[must_use]
    pub fn ramp(z: f64, a: f64) -> Self {
        assert!(z > 2.0, "algebraic continuum requires z > 2");
        let ramp = bevra_utility::Ramp::new(a);
        Self { z, h: ramp.h_coefficient(z) }
    }

    /// Mean load `k̄ = (z−1)/(z−2)`.
    #[must_use]
    pub fn mean_load(&self) -> f64 {
        (self.z - 1.0) / (self.z - 2.0)
    }

    /// Normalized reservation utility `R(C) = 1 − C^{2−z}/(z−1)` (`C ≥ 1`).
    #[must_use]
    pub fn reservation(&self, c: f64) -> f64 {
        if c < 1.0 {
            return f64::NAN;
        }
        1.0 - c.powf(2.0 - self.z) / (self.z - 1.0)
    }

    /// Normalized best-effort utility `B(C) = 1 − C^{2−z}·H/(z−1)` (`C ≥ 1`;
    /// for ramp utilities additionally requires the ramp foot `C/a ≥ 1`,
    /// which `C ≥ 1` implies).
    #[must_use]
    pub fn best_effort(&self, c: f64) -> f64 {
        if c < 1.0 {
            return f64::NAN;
        }
        1.0 - c.powf(2.0 - self.z) * self.h / (self.z - 1.0)
    }

    /// Performance gap `δ(C) = C^{2−z}(H−1)/(z−1)`.
    #[must_use]
    pub fn performance_gap(&self, c: f64) -> f64 {
        c.powf(2.0 - self.z) * (self.h - 1.0) / (self.z - 1.0)
    }

    /// Bandwidth gap `Δ(C) = C(H^{1/(z−2)} − 1)` — linear in `C`.
    #[must_use]
    pub fn bandwidth_gap(&self, c: f64) -> f64 {
        c * (self.gap_slope_plus_one() - 1.0)
    }

    /// `lim (C+Δ)/C = H^{1/(z−2)}`, also the value of `γ(p)`.
    #[must_use]
    pub fn gap_slope_plus_one(&self) -> f64 {
        self.h.powf(1.0 / (self.z - 2.0))
    }

    /// Total best-effort utility `V_B(C) = k̄ − C^{2−z}·H/(z−2)`.
    #[must_use]
    pub fn total_best_effort(&self, c: f64) -> f64 {
        self.mean_load() - c.powf(2.0 - self.z) * self.h / (self.z - 2.0)
    }

    /// Total reservation utility `V_R(C) = k̄ − C^{2−z}/(z−2)`.
    #[must_use]
    pub fn total_reservation(&self, c: f64) -> f64 {
        self.mean_load() - c.powf(2.0 - self.z) / (self.z - 2.0)
    }

    /// Best-effort welfare-optimal capacity `C_B(p) = (H/p)^{1/(z−1)}`
    /// (from `V_B′(C) = H·C^{1−z} = p`). Valid while the result is ≥ 1.
    #[must_use]
    pub fn capacity_best_effort(&self, p: f64) -> f64 {
        (self.h / p).powf(1.0 / (self.z - 1.0))
    }

    /// Reservation welfare-optimal capacity `C_R(p) = p^{−1/(z−1)}`.
    #[must_use]
    pub fn capacity_reservation(&self, p: f64) -> f64 {
        p.powf(-1.0 / (self.z - 1.0))
    }

    /// Optimal best-effort welfare
    /// `W_B(p) = k̄ − (z−1)/(z−2)·(H·p^{z−2})^{1/(z−1)}`.
    #[must_use]
    pub fn welfare_best_effort(&self, p: f64) -> f64 {
        let e = (self.z - 2.0) / (self.z - 1.0);
        (self.mean_load() * (1.0 - (self.h.powf(1.0 / (self.z - 1.0))) * p.powf(e))).max(0.0)
    }

    /// Optimal reservation welfare `W_R(p) = k̄·(1 − p^{(z−2)/(z−1)})`.
    #[must_use]
    pub fn welfare_reservation(&self, p: f64) -> f64 {
        let e = (self.z - 2.0) / (self.z - 1.0);
        (self.mean_load() * (1.0 - p.powf(e))).max(0.0)
    }

    /// Equalizing price ratio: `γ(p) = H^{1/(z−2)}` for every `p` —
    /// `W_R(γp) = W_B(p)` holds identically because both welfares share the
    /// same power of `p`.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gap_slope_plus_one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_h_is_z_minus_one() {
        let m = AlgebraicClosed::rigid(3.0);
        assert_eq!(m.h, 2.0);
        // Δ = C at z = 3: best-effort needs double the capacity.
        assert!((m.bandwidth_gap(10.0) - 10.0).abs() < 1e-12);
        assert!((m.gamma() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_limit_is_e() {
        // z → 2⁺: γ → e and Δ/C → e − 1, the paper's conjectured bounds.
        let m = AlgebraicClosed::rigid(2.000_001);
        assert!((m.gamma() - std::f64::consts::E).abs() < 1e-4, "γ = {}", m.gamma());
        assert!(
            (m.bandwidth_gap(1.0) - (std::f64::consts::E - 1.0)).abs() < 1e-4,
            "slope = {}",
            m.bandwidth_gap(1.0)
        );
    }

    #[test]
    fn ramp_interpolates_between_elastic_and_rigid() {
        let z = 3.0;
        let elastic_ish = AlgebraicClosed::ramp(z, 1e-9);
        assert!((elastic_ish.gamma() - 1.0).abs() < 1e-8);
        let rigid_ish = AlgebraicClosed::ramp(z, 1.0);
        assert!((rigid_ish.gamma() - AlgebraicClosed::rigid(z).gamma()).abs() < 1e-9);
        // Monotone in a.
        let g_lo = AlgebraicClosed::ramp(z, 0.3).gamma();
        let g_hi = AlgebraicClosed::ramp(z, 0.8).gamma();
        assert!(g_lo < g_hi);
    }

    #[test]
    fn gap_equation_roundtrip() {
        // B(C + Δ) must equal R(C) exactly for the closed forms.
        let m = AlgebraicClosed::ramp(2.7, 0.6);
        for c in [2.0, 5.0, 50.0] {
            let d = m.bandwidth_gap(c);
            assert!((m.best_effort(c + d) - m.reservation(c)).abs() < 1e-12, "C={c}");
        }
    }

    #[test]
    fn welfare_foc_consistency() {
        // W_B(p) must equal V_B(C_B(p)) − p·C_B(p).
        let m = AlgebraicClosed::rigid(3.0);
        for p in [1e-4, 1e-2] {
            let c = m.capacity_best_effort(p);
            let direct = m.total_best_effort(c) - p * c;
            assert!((m.welfare_best_effort(p) - direct).abs() < 1e-10, "p={p}");
            let cr = m.capacity_reservation(p);
            let direct_r = m.total_reservation(cr) - p * cr;
            assert!((m.welfare_reservation(p) - direct_r).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn gamma_equalizes_welfares_identically() {
        let m = AlgebraicClosed::ramp(3.0, 0.5);
        let g = m.gamma();
        for p in [1e-6, 1e-4, 1e-2] {
            let wb = m.welfare_best_effort(p);
            let wr = m.welfare_reservation(g * p);
            assert!((wb - wr).abs() < 1e-10, "p={p}: {wb} vs {wr}");
        }
    }

    #[test]
    fn r_dominates_b_and_both_approach_one() {
        let m = AlgebraicClosed::rigid(2.5);
        let mut prev_b = 0.0;
        for c in [1.5, 3.0, 10.0, 100.0, 10_000.0] {
            let b = m.best_effort(c);
            let r = m.reservation(c);
            assert!(r >= b, "C={c}");
            assert!(b >= prev_b);
            prev_b = b;
        }
        assert!(m.best_effort(1e8) > 0.999);
    }
}
