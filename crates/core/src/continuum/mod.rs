//! The continuum variable-load model (paper §3.2).
//!
//! The paper pairs its discrete numerics with a continuum twin — load a
//! continuous density, sums become integrals — because "these
//! simplifications do not affect the asymptotic behavior of the quantities
//! we examine" while making closed forms possible. This module follows the
//! same two-track structure:
//!
//! * [`generic`] evaluates `B(C)`, `R(C)`, and the gaps for *any*
//!   ([`bevra_load::ContinuumLoad`], [`bevra_utility::Utility`]) pair by
//!   piecewise adaptive quadrature;
//! * [`closed_exponential`] and [`closed_algebraic`] implement every closed
//!   form derived in §3.3 and §4 (utilities, gaps, welfare optima, price
//!   ratios).
//!
//! Tests and the `closed_vs_quad` integration suite assert the two tracks
//! agree, so the paper's algebra is *checked*, not transcribed on faith.

pub mod closed_algebraic;
pub mod closed_exponential;
pub mod generic;

pub use closed_algebraic::AlgebraicClosed;
pub use closed_exponential::{ExponentialRampClosed, ExponentialRigidClosed};
pub use generic::ContinuumModel;
