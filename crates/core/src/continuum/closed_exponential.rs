//! Closed forms for exponential continuum loads (paper §3.3 and §4).

use bevra_num::{brent, expand_bracket_up, golden_section_max, lambert_wm1, NumResult};

/// Exponential load `P(k) = βe^{−βk}` with **rigid** applications
/// (`b̄ = 1`) — every formula of §3.3/§4 for this case.
///
/// Normalized utilities (`k̄ = 1/β`):
///
/// ```text
/// B(C) = 1 − e^{−βC}(1 + βC)       R(C) = 1 − e^{−βC}
/// δ(C) = βC·e^{−βC}
/// Δ(C):  βΔ = ln(1 + β(C + Δ))  ⇒  Δ ≈ ln(βC)/β  (grows forever!)
/// ```
///
/// Welfare at bandwidth price `p` (per §4): the best-effort optimum solves
/// `p = βC e^{−βC}` (largest root, via the Lambert `W₋₁` branch) and the
/// reservation optimum solves `p = e^{−βC}`, giving
/// `W_R(p) = (1/β)(1 − p + p·ln p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialRigidClosed {
    /// Load decay rate β (mean load `1/β`).
    pub beta: f64,
}

impl ExponentialRigidClosed {
    /// New closed-form bundle for decay rate `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `beta` is positive and finite.
    #[must_use]
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive and finite");
        Self { beta }
    }

    /// Calibrate from the mean load: `β = 1/k̄`.
    #[must_use]
    pub fn from_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// Normalized best-effort utility `B(C)`.
    #[must_use]
    pub fn best_effort(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 0.0;
        }
        let bc = self.beta * c;
        1.0 - (-bc).exp() * (1.0 + bc)
    }

    /// Normalized reservation utility `R(C)`.
    #[must_use]
    pub fn reservation(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 0.0;
        }
        -(-self.beta * c).exp_m1()
    }

    /// Performance gap `δ(C) = βC·e^{−βC}`.
    #[must_use]
    pub fn performance_gap(&self, c: f64) -> f64 {
        let bc = self.beta * c;
        bc * (-bc).exp()
    }

    /// Bandwidth gap: the exact solution of `βΔ = ln(1 + β(C + Δ))`.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures (none for positive inputs).
    pub fn bandwidth_gap(&self, c: f64) -> NumResult<f64> {
        let beta = self.beta;
        let f = |d: f64| beta * d - (1.0 + beta * (c + d)).ln();
        // f(0) = −ln(1+βC) < 0 and f grows linearly: bracket upward.
        let br = expand_bracket_up(f, 0.0, 1.0 / beta, 1e9 / beta)?;
        brent(f, br.lo, br.hi, 1e-10 / beta)
    }

    /// The asymptotic (large `C`) bandwidth gap `ln(βC)/β` — logarithmic
    /// growth, the §3.3 headline for this case.
    #[must_use]
    pub fn bandwidth_gap_asymptote(&self, c: f64) -> f64 {
        (self.beta * c).ln() / self.beta
    }

    /// Best-effort welfare-optimal capacity: largest root of
    /// `p = βC·e^{−βC}`, i.e. `βC = −W₋₁(−p)`. `None` when `p ≥ 1/e` (even
    /// the best capacity cannot pay for itself; provision nothing).
    #[must_use]
    pub fn capacity_best_effort(&self, p: f64) -> Option<f64> {
        if !(0.0 < p && p < (-1.0f64).exp()) {
            return None;
        }
        let h = -lambert_wm1(-p).ok()?;
        Some(h / self.beta)
    }

    /// Reservation welfare-optimal capacity: `C = −ln(p)/β` (for `p < 1`).
    #[must_use]
    pub fn capacity_reservation(&self, p: f64) -> Option<f64> {
        if !(0.0 < p && p < 1.0) {
            return None;
        }
        Some(-p.ln() / self.beta)
    }

    /// Optimal best-effort welfare
    /// `W_B(p) = (1/β)(1 − p − p/h − p·h)` with `h = βC_B(p)`.
    #[must_use]
    pub fn welfare_best_effort(&self, p: f64) -> f64 {
        match self.capacity_best_effort(p) {
            Some(c) => {
                let h = self.beta * c;
                ((1.0 - p - p / h - p * h) / self.beta).max(0.0)
            }
            None => 0.0,
        }
    }

    /// Optimal reservation welfare `W_R(p) = (1/β)(1 − p + p·ln p)`.
    #[must_use]
    pub fn welfare_reservation(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return 1.0 / self.beta;
        }
        if p >= 1.0 {
            return 0.0;
        }
        ((1.0 - p + p * p.ln()) / self.beta).max(0.0)
    }

    /// Equalizing price ratio `γ(p)`: the `p̂/p` with
    /// `W_R(p̂) = W_B(p)`. Converges to 1 as `p → 0⁺` — the key §4 result
    /// that cheap bandwidth erases the reservation advantage for
    /// exponential loads.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn gamma(&self, p: f64) -> NumResult<f64> {
        let target = self.welfare_best_effort(p);
        let f = |ph: f64| target - self.welfare_reservation(ph);
        let br = expand_bracket_up(f, p, 0.1 * p, 1e9)?;
        let ph = if br.lo == br.hi { br.lo } else { brent(f, br.lo, br.hi, 1e-12 * p)? };
        Ok(ph / p)
    }
}

/// Exponential load with the continuum **ramp** (adaptive) utility of
/// parameter `a` (paper §3.2–§4).
///
/// Derived in closed form (and verified against quadrature in tests):
///
/// ```text
/// V_B(C) = (1/β)·[1 − e^{−βC}/(1−a) + (a/(1−a))·e^{−βC/a}]
/// V_R(C) = (1/β)·(1 − e^{−βC})          (k_max = C, π(1) = 1)
/// δ(C)   = (a/(1−a))·(e^{−βC} − e^{−βC/a})
/// Δ(C) → −ln(1−a)/β                      (a finite constant, not ln C!)
/// ```
///
/// The contrast with the rigid case — bounded versus logarithmically growing
/// bandwidth gap — is the paper's cleanest demonstration that adaptivity
/// changes the architecture tradeoff *qualitatively*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialRampClosed {
    /// Load decay rate β.
    pub beta: f64,
    /// Ramp adaptivity parameter `a ∈ (0, 1)`.
    pub a: f64,
}

impl ExponentialRampClosed {
    /// New bundle.
    ///
    /// # Panics
    ///
    /// Panics unless `beta > 0` and `0 < a < 1` (use
    /// [`ExponentialRigidClosed`] for the `a = 1` rigid limit).
    #[must_use]
    pub fn new(beta: f64, a: f64) -> Self {
        assert!(beta > 0.0 && beta.is_finite(), "beta must be positive and finite");
        assert!(a > 0.0 && a < 1.0, "ramp parameter must satisfy 0 < a < 1");
        Self { beta, a }
    }

    /// Normalized best-effort utility `B(C)`.
    #[must_use]
    pub fn best_effort(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 0.0;
        }
        let bc = self.beta * c;
        let frac = self.a / (1.0 - self.a);
        1.0 - (-bc).exp() / (1.0 - self.a) + frac * (-bc / self.a).exp()
    }

    /// Normalized reservation utility `R(C) = 1 − e^{−βC}` (identical to the
    /// rigid case: `k_max = C` and admitted flows sit at `π ≥ π(1) = 1`).
    #[must_use]
    pub fn reservation(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 0.0;
        }
        -(-self.beta * c).exp_m1()
    }

    /// Performance gap `δ(C) = (a/(1−a))(e^{−βC} − e^{−βC/a})`.
    #[must_use]
    pub fn performance_gap(&self, c: f64) -> f64 {
        let frac = self.a / (1.0 - self.a);
        frac * ((-self.beta * c).exp() - (-self.beta * c / self.a).exp())
    }

    /// Utility *deficit* `1 − B(C)`, computed without cancellation so the
    /// bandwidth gap stays solvable even where `B` rounds to 1.0:
    /// `1 − B(C) = e^{−βC}/(1−a) − (a/(1−a))·e^{−βC/a}`.
    #[must_use]
    pub fn best_effort_deficit(&self, c: f64) -> f64 {
        let bc = self.beta * c;
        ((-bc).exp() - self.a * (-bc / self.a).exp()) / (1.0 - self.a)
    }

    /// `ln(1 − B(C))`, factored as `−βC + ln((1 − a·e^{−βC(1/a−1)})/(1−a))`
    /// so it stays finite long after `e^{−βC}` itself underflows — the form
    /// the bandwidth-gap equation is solved in.
    #[must_use]
    pub fn log_best_effort_deficit(&self, c: f64) -> f64 {
        let bc = self.beta * c;
        let cross = self.a * (-bc * (1.0 / self.a - 1.0)).exp();
        -bc + ((1.0 - cross) / (1.0 - self.a)).ln()
    }

    /// Bandwidth gap `Δ(C)`: exact numeric solution of `B(C+Δ) = R(C)`.
    ///
    /// Solved in log-deficit space — `ln(1−B(C+Δ)) = −βC` — because for
    /// large `C` both utilities round to 1.0 in f64 while their deficits
    /// (which the equation actually balances) remain perfectly
    /// representable.
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn bandwidth_gap(&self, c: f64) -> NumResult<f64> {
        if c <= 0.0 {
            return Ok(0.0);
        }
        // f(d) = ln(1−B(C+d)) − ln(1−R(C)); positive at d = 0, strictly
        // decreasing, crosses zero at the gap.
        let target_log = -self.beta * c; // ln(e^{−βC})
        let f = |d: f64| self.log_best_effort_deficit(c + d) - target_log;
        if f(0.0) <= 0.0 {
            return Ok(0.0);
        }
        // The gap is bounded by its large-C limit −ln(1−a)/β plus slack.
        let br = expand_bracket_up(|d| -f(d), 0.0, 0.1 / self.beta, 1e9 / self.beta)?;
        brent(f, br.lo, br.hi, 1e-12 / self.beta)
    }

    /// Large-`C` limit of the bandwidth gap: `−ln(1−a)/β`.
    #[must_use]
    pub fn bandwidth_gap_limit(&self) -> f64 {
        -(1.0 - self.a).ln() / self.beta
    }

    /// Marginal total utility `V_B′(C) = (e^{−βC} − e^{−βC/a})/(1−a)` — the
    /// price at which capacity `C` is the best-effort optimum.
    #[must_use]
    pub fn marginal_best_effort(&self, c: f64) -> f64 {
        ((-self.beta * c).exp() - (-self.beta * c / self.a).exp()) / (1.0 - self.a)
    }

    /// Best-effort welfare-optimal capacity at price `p`: the largest root
    /// of `marginal = p`, or `None` if the marginal never reaches `p`.
    #[must_use]
    pub fn capacity_best_effort(&self, p: f64) -> Option<f64> {
        if p <= 0.0 {
            return None;
        }
        // The marginal is 0 at C = 0, rises to a peak, then decays; the
        // welfare optimum is the decaying-side root.
        let peak = golden_section_max(|c| self.marginal_best_effort(c), 0.0, 20.0 / self.beta, 1e-9 / self.beta).ok()?;
        if p > peak.value {
            return None;
        }
        let f = |c: f64| self.marginal_best_effort(c) - p;
        let br = expand_bracket_up(f, peak.x, 1.0 / self.beta, 1e9 / self.beta).ok()?;
        brent(f, br.lo, br.hi, 1e-10 / self.beta).ok()
    }

    /// Optimal best-effort welfare `W_B(p) = V_B(C*) − pC*` (0 if building
    /// nothing is best).
    #[must_use]
    pub fn welfare_best_effort(&self, p: f64) -> f64 {
        match self.capacity_best_effort(p) {
            Some(c) => ((self.best_effort(c) / self.beta) - p * c).max(0.0),
            None => 0.0,
        }
    }

    /// Optimal reservation welfare — identical formula to the rigid case.
    #[must_use]
    pub fn welfare_reservation(&self, p: f64) -> f64 {
        ExponentialRigidClosed { beta: self.beta }.welfare_reservation(p)
    }

    /// Equalizing price ratio `γ(p)`; approaches 1 logarithmically as
    /// `p → 0⁺` (§4).
    ///
    /// # Errors
    ///
    /// Propagates root-finder failures.
    pub fn gamma(&self, p: f64) -> NumResult<f64> {
        let target = self.welfare_best_effort(p);
        let f = |ph: f64| target - self.welfare_reservation(ph);
        let br = expand_bracket_up(f, p, 0.1 * p, 1e9)?;
        let ph = if br.lo == br.hi { br.lo } else { brent(f, br.lo, br.hi, 1e-12 * p)? };
        Ok(ph / p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_identities() {
        let m = ExponentialRigidClosed::from_mean(100.0);
        let c = 150.0;
        // R − B = βCe^{−βC}.
        assert!(
            (m.reservation(c) - m.best_effort(c) - m.performance_gap(c)).abs() < 1e-14
        );
        // Gap equation round-trip.
        let d = m.bandwidth_gap(c).unwrap();
        assert!((m.best_effort(c + d) - m.reservation(c)).abs() < 1e-10);
    }

    #[test]
    fn rigid_gap_is_logarithmic() {
        let m = ExponentialRigidClosed::from_mean(100.0);
        // Δ at 1000k̄ vs 100k̄ should differ by ≈ ln(10)/β, not by 900k̄.
        // (Deep in the asymptotic regime: βC = 100 and 1000.)
        let d1 = m.bandwidth_gap(10_000.0).unwrap();
        let d2 = m.bandwidth_gap(100_000.0).unwrap();
        let growth = d2 - d1;
        let predicted = 10f64.ln() / m.beta;
        assert!((growth - predicted).abs() < 0.05 * predicted, "growth {growth} vs {predicted}");
        // And tracks the asymptote.
        assert!((d2 - m.bandwidth_gap_asymptote(100_000.0)).abs() < 0.05 * d2);
    }

    #[test]
    fn rigid_welfare_capacity_solves_foc() {
        let m = ExponentialRigidClosed::from_mean(100.0);
        let p = 0.05;
        let c = m.capacity_best_effort(p).unwrap();
        assert!((m.beta * c * (-m.beta * c).exp() - p).abs() < 1e-12);
        assert!(c > 100.0, "largest root is past the mean: {c}");
        let cr = m.capacity_reservation(p).unwrap();
        assert!(((-m.beta * cr).exp() - p).abs() < 1e-12);
    }

    #[test]
    fn rigid_welfare_formulas_match_direct_maximization() {
        // W(C) = V(C) − pC is NOT unimodal from 0 here (the marginal starts
        // below p, rises above it, then decays), so use the grid-scanning
        // welfare optimizer rather than a bare bracket search.
        let m = ExponentialRigidClosed::from_mean(50.0);
        let p = 0.08;
        let direct =
            crate::welfare::optimal_welfare(|c| m.best_effort(c) / m.beta, p, 50.0, 1e5).unwrap();
        assert!(
            (m.welfare_best_effort(p) - direct.welfare).abs() < 1e-6,
            "closed {} vs direct {}",
            m.welfare_best_effort(p),
            direct.welfare
        );
        let direct_r =
            crate::welfare::optimal_welfare(|c| m.reservation(c) / m.beta, p, 50.0, 1e5).unwrap();
        assert!((m.welfare_reservation(p) - direct_r.welfare).abs() < 1e-6);
    }

    #[test]
    fn rigid_gamma_exceeds_one_and_tends_to_one() {
        let m = ExponentialRigidClosed::from_mean(100.0);
        let g_mid = m.gamma(0.05).unwrap();
        let g_small = m.gamma(1e-6).unwrap();
        let g_tiny = m.gamma(1e-12).unwrap();
        assert!(g_mid > 1.0);
        assert!(g_small > 1.0);
        assert!(g_small < g_mid, "γ decreases toward 1 as p → 0: {g_small} vs {g_mid}");
        // The convergence is only logarithmic (γ ≈ 1 + ln(−ln p)-ish/−ln p),
        // so even p = 1e−12 leaves γ visibly above 1.
        assert!(g_tiny < g_small);
        assert!(g_tiny < 1.15, "γ(1e−12) = {g_tiny}");
    }

    #[test]
    fn ramp_limits_recover_rigid_and_elastic() {
        let beta = 0.01;
        let c = 250.0;
        let rigid = ExponentialRigidClosed::new(beta);
        let nearly_rigid = ExponentialRampClosed::new(beta, 0.999_999);
        assert!((nearly_rigid.best_effort(c) - rigid.best_effort(c)).abs() < 1e-3);
        let nearly_elastic = ExponentialRampClosed::new(beta, 1e-9);
        assert!((nearly_elastic.best_effort(c) - nearly_elastic.reservation(c)).abs() < 1e-6);
    }

    #[test]
    fn ramp_gap_bounded() {
        let m = ExponentialRampClosed::new(0.01, 0.5);
        let limit = m.bandwidth_gap_limit();
        assert!((limit - 2f64.ln() * 100.0).abs() < 1e-9);
        let d_far = m.bandwidth_gap(5_000.0).unwrap();
        assert!((d_far - limit).abs() < 0.01 * limit, "Δ(∞)={d_far} vs {limit}");
        // Unlike rigid, the gap does NOT keep growing.
        let d_farther = m.bandwidth_gap(20_000.0).unwrap();
        assert!((d_farther - limit).abs() < 0.01 * limit);
    }

    #[test]
    fn ramp_welfare_and_gamma_behave() {
        let m = ExponentialRampClosed::new(0.01, 0.5);
        let p = 0.02;
        let wb = m.welfare_best_effort(p);
        let wr = m.welfare_reservation(p);
        assert!(wr >= wb, "W_R {wr} must dominate W_B {wb}");
        let g = m.gamma(p).unwrap();
        assert!(g >= 1.0);
        // γ smaller than the rigid counterpart at the same price.
        let g_rigid = ExponentialRigidClosed::new(0.01).gamma(p).unwrap();
        assert!(g < g_rigid, "adaptive γ {g} vs rigid {g_rigid}");
    }
}
