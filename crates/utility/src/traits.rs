//! The [`Utility`] trait and curvature classification.

/// Utility (performance) of an application as a function of the bandwidth
/// share it receives.
///
/// Contract (paper §2): `value(0) = 0`, `value` is nondecreasing, and
/// `value(b) → 1` as `b → ∞`. Implementations are immutable value types so
/// they can be shared freely across models, threads, and the simulator.
pub trait Utility: Send + Sync {
    /// `π(b)`: performance at per-flow bandwidth `b ≥ 0`.
    fn value(&self, b: f64) -> f64;

    /// Short stable name used in reports and figure legends.
    fn name(&self) -> &'static str;

    /// `π′(b)`. The default is a symmetric finite difference; families with
    /// cheap analytic derivatives override it.
    fn derivative(&self, b: f64) -> f64 {
        let h = 1e-6 * (1.0 + b.abs());
        let lo = (b - h).max(0.0);
        (self.value(b + h) - self.value(lo)) / (b + h - lo)
    }

    /// Bandwidths at which `π` is non-smooth (steps or slope breaks).
    /// Quadrature-based evaluators split their integrals at the
    /// corresponding load levels so piecewise utilities stay cheap and
    /// accurate. Smooth families return the default empty list.
    fn knots(&self) -> Vec<f64> {
        Vec::new()
    }
}

/// Blanket impl so `&U`, `Box<U>`, `Arc<U>` can be used wherever a utility
/// is expected.
impl<U: Utility + ?Sized> Utility for &U {
    fn value(&self, b: f64) -> f64 {
        (**self).value(b)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn derivative(&self, b: f64) -> f64 {
        (**self).derivative(b)
    }
}

impl<U: Utility + ?Sized> Utility for std::sync::Arc<U> {
    fn value(&self, b: f64) -> f64 {
        (**self).value(b)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn derivative(&self, b: f64) -> f64 {
        (**self).derivative(b)
    }
}

/// Curvature class of a utility function near the origin, which determines
/// the architecture verdict of the fixed-load model (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curvature {
    /// Strictly concave near the origin: `V(k)` is increasing, admission
    /// control never helps (the paper's *elastic* applications).
    ConcaveAtOrigin,
    /// Convex (but not linear) in a neighborhood of the origin: `V(k)` has a
    /// finite peak `k_max`, reservations raise total utility (*inelastic*).
    ConvexAtOrigin,
    /// Numerically indistinguishable from linear at the probe scale.
    Indeterminate,
}

/// Classify the curvature of `π` near the origin by probing the second
/// difference `π(2h) − 2π(h) + π(0)` across several scales `h`.
///
/// A positive second difference at every probe scale ⇒ convex near origin
/// (inelastic); negative at every scale ⇒ concave (elastic); anything mixed
/// or below noise ⇒ [`Curvature::Indeterminate`].
pub fn classify(u: &dyn Utility) -> Curvature {
    let mut sign = 0i32;
    for &h in &[1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let d2 = u.value(2.0 * h) - 2.0 * u.value(h) + u.value(0.0);
        let s = if d2 > 1e-14 {
            1
        } else if d2 < -1e-14 {
            -1
        } else {
            0
        };
        if s == 0 {
            continue;
        }
        if sign == 0 {
            sign = s;
        } else if sign != s {
            return Curvature::Indeterminate;
        }
    }
    match sign {
        1 => Curvature::ConvexAtOrigin,
        -1 => Curvature::ConcaveAtOrigin,
        _ => Curvature::Indeterminate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quad;
    impl Utility for Quad {
        fn value(&self, b: f64) -> f64 {
            let b = b.max(0.0);
            (b * b).min(1.0)
        }
        fn name(&self) -> &'static str {
            "quad"
        }
    }

    struct Conc;
    impl Utility for Conc {
        fn value(&self, b: f64) -> f64 {
            b.max(0.0) / (1.0 + b.max(0.0))
        }
        fn name(&self) -> &'static str {
            "conc"
        }
    }

    #[test]
    fn classify_convex_and_concave() {
        assert_eq!(classify(&Quad), Curvature::ConvexAtOrigin);
        assert_eq!(classify(&Conc), Curvature::ConcaveAtOrigin);
    }

    #[test]
    fn default_derivative_matches_analytic() {
        // d/db [b/(1+b)] = 1/(1+b)^2.
        let u = Conc;
        for b in [0.1, 0.5, 1.0, 4.0] {
            let got = u.derivative(b);
            let want = 1.0 / ((1.0 + b) * (1.0 + b));
            assert!((got - want).abs() < 1e-5, "b={b}: {got} vs {want}");
        }
    }

    #[test]
    fn references_implement_utility() {
        fn takes_utility(u: impl Utility) -> f64 {
            u.value(1.0)
        }
        let u = Conc;
        assert_eq!(takes_utility(&u), 0.5);
        let arc: std::sync::Arc<dyn Utility> = std::sync::Arc::new(Conc);
        assert_eq!(takes_utility(arc), 0.5);
    }
}
