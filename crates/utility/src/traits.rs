//! The [`Utility`] trait and curvature classification.

/// Utility (performance) of an application as a function of the bandwidth
/// share it receives.
///
/// Contract (paper §2): `value(0) = 0`, `value` is nondecreasing, and
/// `value(b) → 1` as `b → ∞`. Implementations are immutable value types so
/// they can be shared freely across models, threads, and the simulator.
pub trait Utility: Send + Sync {
    /// `π(b)`: performance at per-flow bandwidth `b ≥ 0`.
    fn value(&self, b: f64) -> f64;

    /// Short stable name used in reports and figure legends.
    fn name(&self) -> &'static str;

    /// `π′(b)`. The default is a symmetric finite difference; families with
    /// cheap analytic derivatives override it.
    fn derivative(&self, b: f64) -> f64 {
        let h = 1e-6 * (1.0 + b.abs());
        let lo = (b - h).max(0.0);
        (self.value(b + h) - self.value(lo)) / (b + h - lo)
    }

    /// Bandwidths at which `π` is non-smooth (steps or slope breaks).
    /// Quadrature-based evaluators split their integrals at the
    /// corresponding load levels so piecewise utilities stay cheap and
    /// accurate. Smooth families return the default empty list.
    fn knots(&self) -> Vec<f64> {
        Vec::new()
    }

    /// Cross-platform deterministic `π(b)`: same input bits ⇒ same output
    /// bits on **every** platform and libm.
    ///
    /// The default forwards to [`Utility::value`], which is already
    /// portable for families built from pure `+ − × ÷` arithmetic (IEEE 754
    /// basic operations are correctly rounded everywhere). Families that
    /// call libm transcendentals (`exp_m1`, `powf`, …) override this with a
    /// branch-free polynomial kernel (see `bevra_num::one_minus_exp_neg`)
    /// whose result is within a few ULPs of `value` but bit-identical
    /// across toolchains — this is what the engine's `deterministic-portable`
    /// backend evaluates, retiring libm-ULP drift from pinned artifacts.
    ///
    /// Overrides must preserve the `value` contract (0 at 0, nondecreasing,
    /// → 1) and stay within the engine's documented `Tolerance(1e-13)`
    /// relative parity class of `value`.
    fn value_portable(&self, b: f64) -> f64 {
        self.value(b)
    }

    /// Evaluate `π` over a bandwidth slice: `out[i] = value(bs[i])`.
    ///
    /// The default loops over [`Utility::value`]; overrides must stay
    /// **bitwise identical** to that loop (the batched welfare kernels rely
    /// on this to mirror the scalar evaluation path exactly). Families whose
    /// `value` is branch-light (e.g. step functions) may override this with
    /// an auto-vectorizable loop.
    ///
    /// # Panics
    ///
    /// Panics if `bs` and `out` have different lengths.
    fn value_slice(&self, bs: &[f64], out: &mut [f64]) {
        assert_eq!(bs.len(), out.len(), "bandwidth/output slices must match");
        for (o, &b) in out.iter_mut().zip(bs) {
            *o = self.value(b);
        }
    }

    /// Fast approximate slice evaluation: `out[i] ≈ value(bs[i])` within a
    /// few ULPs.
    ///
    /// The default forwards to [`Utility::value_slice`] (exact). Families
    /// dominated by transcendental calls override this with a vectorizable
    /// polynomial kernel (see `bevra_num::one_minus_exp_neg`); such
    /// overrides are *deterministic* (same input bits ⇒ same output bits,
    /// on every platform) but need not match `value` bitwise. Callers that
    /// require bitwise parity with the scalar path must use
    /// [`Utility::value_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `bs` and `out` have different lengths.
    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        self.value_slice(bs, out);
    }

    /// Fast evaluation of `π(C/k)` over a **capacity** slice at admission
    /// level `kf = k`: `out[i] ≈ value(cs[i] / kf)`.
    ///
    /// This is the hot call of the grid-batched welfare kernels (see
    /// `bevra_core::discrete_batch`), which walk a whole load table with
    /// the capacity grid fixed. The default divides into `scratch` and
    /// forwards to [`Utility::value_slice_fast`]; families whose exponent
    /// can absorb the division algebraically override it to save a packed
    /// divide per lane (e.g. the adaptive family's
    /// `x = C²/(κk² + Ck)` form). Overrides carry the same contract as
    /// [`Utility::value_slice_fast`] — deterministic, tolerance-budgeted,
    /// not necessarily bitwise equal to the scalar composition.
    ///
    /// # Panics
    ///
    /// Panics if `cs`, `scratch`, and `out` lengths differ, or if `kf` is
    /// not strictly positive.
    fn value_capacity_slice_fast(
        &self,
        cs: &[f64],
        kf: f64,
        scratch: &mut [f64],
        out: &mut [f64],
    ) {
        assert!(kf > 0.0, "admission level must be positive");
        assert_eq!(cs.len(), scratch.len(), "capacity/scratch slices must match");
        for (b, &c) in scratch.iter_mut().zip(cs) {
            *b = c / kf;
        }
        self.value_slice_fast(scratch, out);
    }

    /// Fused fast-path hook for the fused B+R grid pass
    /// (`bevra_core::discrete_batch`): accumulate
    /// `pmfs[i] · k · π(c/k)` for `k = k0, k0+1, …` into
    /// `bevra_num::KSPAN_ACCS` stride-interleaved Neumaier accumulator
    /// pairs, walking a whole span of admission levels for **one**
    /// capacity `c > 0` in a single vectorized call.
    ///
    /// Returns `false` (the default) when the family has no k-span
    /// kernel — the fused pass then falls back to the slice-kernel
    /// composition. Overrides must return `true` after accumulating and
    /// carry the k-span contract (see
    /// `bevra_num::one_minus_exp_neg_adaptive_kspan`): deterministic,
    /// bitwise identical across SIMD tiers, within the fast kernels'
    /// 1e-13 relative budget of the scalar composition, resumable by
    /// calling again with the next `k0`.
    fn accumulate_pi_kspan_fast(
        &self,
        _c: f64,
        _k0: f64,
        _pmfs: &[f64],
        _sums: &mut [f64; bevra_num::KSPAN_ACCS],
        _comps: &mut [f64; bevra_num::KSPAN_ACCS],
    ) -> bool {
        false
    }
}

/// Blanket impl so `&U`, `Box<U>`, `Arc<U>` can be used wherever a utility
/// is expected.
impl<U: Utility + ?Sized> Utility for &U {
    fn value(&self, b: f64) -> f64 {
        (**self).value(b)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn derivative(&self, b: f64) -> f64 {
        (**self).derivative(b)
    }
    fn knots(&self) -> Vec<f64> {
        (**self).knots()
    }
    fn value_portable(&self, b: f64) -> f64 {
        (**self).value_portable(b)
    }
    fn value_slice(&self, bs: &[f64], out: &mut [f64]) {
        (**self).value_slice(bs, out);
    }
    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        (**self).value_slice_fast(bs, out);
    }
    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, scratch: &mut [f64], out: &mut [f64]) {
        (**self).value_capacity_slice_fast(cs, kf, scratch, out);
    }
    fn accumulate_pi_kspan_fast(
        &self,
        c: f64,
        k0: f64,
        pmfs: &[f64],
        sums: &mut [f64; bevra_num::KSPAN_ACCS],
        comps: &mut [f64; bevra_num::KSPAN_ACCS],
    ) -> bool {
        (**self).accumulate_pi_kspan_fast(c, k0, pmfs, sums, comps)
    }
}

impl<U: Utility + ?Sized> Utility for std::sync::Arc<U> {
    fn value(&self, b: f64) -> f64 {
        (**self).value(b)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn derivative(&self, b: f64) -> f64 {
        (**self).derivative(b)
    }
    fn knots(&self) -> Vec<f64> {
        (**self).knots()
    }
    fn value_portable(&self, b: f64) -> f64 {
        (**self).value_portable(b)
    }
    fn value_slice(&self, bs: &[f64], out: &mut [f64]) {
        (**self).value_slice(bs, out);
    }
    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        (**self).value_slice_fast(bs, out);
    }
    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, scratch: &mut [f64], out: &mut [f64]) {
        (**self).value_capacity_slice_fast(cs, kf, scratch, out);
    }
    fn accumulate_pi_kspan_fast(
        &self,
        c: f64,
        k0: f64,
        pmfs: &[f64],
        sums: &mut [f64; bevra_num::KSPAN_ACCS],
        comps: &mut [f64; bevra_num::KSPAN_ACCS],
    ) -> bool {
        (**self).accumulate_pi_kspan_fast(c, k0, pmfs, sums, comps)
    }
}

/// Curvature class of a utility function near the origin, which determines
/// the architecture verdict of the fixed-load model (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curvature {
    /// Strictly concave near the origin: `V(k)` is increasing, admission
    /// control never helps (the paper's *elastic* applications).
    ConcaveAtOrigin,
    /// Convex (but not linear) in a neighborhood of the origin: `V(k)` has a
    /// finite peak `k_max`, reservations raise total utility (*inelastic*).
    ConvexAtOrigin,
    /// Numerically indistinguishable from linear at the probe scale.
    Indeterminate,
}

/// Classify the curvature of `π` near the origin by probing the second
/// difference `π(2h) − 2π(h) + π(0)` across several scales `h`.
///
/// A positive second difference at every probe scale ⇒ convex near origin
/// (inelastic); negative at every scale ⇒ concave (elastic); anything mixed
/// or below noise ⇒ [`Curvature::Indeterminate`].
pub fn classify(u: &dyn Utility) -> Curvature {
    let mut sign = 0i32;
    for &h in &[1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let d2 = u.value(2.0 * h) - 2.0 * u.value(h) + u.value(0.0);
        let s = if d2 > 1e-14 {
            1
        } else if d2 < -1e-14 {
            -1
        } else {
            0
        };
        if s == 0 {
            continue;
        }
        if sign == 0 {
            sign = s;
        } else if sign != s {
            return Curvature::Indeterminate;
        }
    }
    match sign {
        1 => Curvature::ConvexAtOrigin,
        -1 => Curvature::ConcaveAtOrigin,
        _ => Curvature::Indeterminate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quad;
    impl Utility for Quad {
        fn value(&self, b: f64) -> f64 {
            let b = b.max(0.0);
            (b * b).min(1.0)
        }
        fn name(&self) -> &'static str {
            "quad"
        }
    }

    struct Conc;
    impl Utility for Conc {
        fn value(&self, b: f64) -> f64 {
            b.max(0.0) / (1.0 + b.max(0.0))
        }
        fn name(&self) -> &'static str {
            "conc"
        }
    }

    #[test]
    fn classify_convex_and_concave() {
        assert_eq!(classify(&Quad), Curvature::ConvexAtOrigin);
        assert_eq!(classify(&Conc), Curvature::ConcaveAtOrigin);
    }

    #[test]
    fn default_derivative_matches_analytic() {
        // d/db [b/(1+b)] = 1/(1+b)^2.
        let u = Conc;
        for b in [0.1, 0.5, 1.0, 4.0] {
            let got = u.derivative(b);
            let want = 1.0 / ((1.0 + b) * (1.0 + b));
            assert!((got - want).abs() < 1e-5, "b={b}: {got} vs {want}");
        }
    }

    #[test]
    fn references_implement_utility() {
        fn takes_utility(u: impl Utility) -> f64 {
            u.value(1.0)
        }
        let u = Conc;
        assert_eq!(takes_utility(&u), 0.5);
        let arc: std::sync::Arc<dyn Utility> = std::sync::Arc::new(Conc);
        assert_eq!(takes_utility(arc), 0.5);
    }
}
