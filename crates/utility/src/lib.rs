//! Application utility functions and the fixed-load model of
//! Breslau & Shenker, *"Best-Effort versus Reservations"* (SIGCOMM 1998), §2.
//!
//! A network application's value to its user is modeled as a function
//! `π(b)` of the bandwidth `b` it receives, normalized so `π(0) = 0` and
//! `π(b) → 1` as `b → ∞`. The *shape* of `π` decides the architecture
//! question:
//!
//! * strictly concave `π` (**elastic** applications — mail, file transfer):
//!   total utility `V(k) = k·π(C/k)` is increasing in the population `k`, so
//!   admission control can only hurt and best-effort is optimal;
//! * `π` convex near the origin (**inelastic**): `V(k)` peaks at a finite
//!   `k_max(C)` and denying service to flows beyond the peak — a
//!   reservation-capable architecture — raises total utility.
//!
//! This crate provides the paper's utility families ([`Rigid`],
//! [`AdaptiveExp`] with the κ = 0.62086 calibration, the continuum
//! [`Ramp`], the algebraic-tail variants of §3.3) plus elastic baselines,
//! and the fixed-load analysis (`V(k)`, `k_max`) the variable-load model of
//! `bevra-core` is built on.

#![deny(missing_docs)]

pub mod adaptive;
pub mod elastic;
pub mod fixed_load;
pub mod kappa;
pub mod ramp;
pub mod rigid;
pub mod tail;
pub mod traits;

pub use adaptive::AdaptiveExp;
pub use elastic::{ExponentialElastic, Saturating};
pub use fixed_load::{k_max_continuous, k_max_discrete, total_utility, FixedLoad};
pub use kappa::{solve_kappa, KAPPA};
pub use ramp::Ramp;
pub use rigid::Rigid;
pub use tail::{AlgebraicTail, PowerLow};
pub use traits::{classify, Curvature, Utility};
