//! Calibration of the adaptive utility's κ constant (paper footnote 4).

use bevra_num::{brent, NumResult};

/// The paper's value of κ: with `π(b) = 1 − e^{−b²/(κ+b)}`, this choice
/// makes the fixed-load optimum `k_max(C) = C`, so adaptive and rigid
/// (`b̄ = 1`) results are directly comparable.
pub const KAPPA: f64 = 0.620_86;

/// Solve the calibration equation for κ.
///
/// `V(k) = k·π(C/k)` is stationary at `k = C` iff, writing `b = C/k = 1`,
///
/// ```text
/// π(1) = π′(1)            (first-order condition π(b) − b·π′(b) = 0 at b=1)
/// ```
///
/// which for the adaptive family becomes
///
/// ```text
/// 1 − e^{−1/(1+κ)} = e^{−1/(1+κ)} · (1 + 2κ)/(1 + κ)².
/// ```
///
/// The unique positive root is κ ≈ 0.62086 — the constant quoted in the
/// paper. A unit test asserts agreement to all published digits.
///
/// # Errors
///
/// Propagates root-finder failures (none occur on this monotone residual).
pub fn solve_kappa() -> NumResult<f64> {
    let residual = |kappa: f64| {
        let e = (-1.0 / (1.0 + kappa)).exp();
        (1.0 - e) - e * (1.0 + 2.0 * kappa) / ((1.0 + kappa) * (1.0 + kappa))
    };
    brent(residual, 1e-6, 10.0, 1e-14)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveExp;
    use crate::traits::Utility;

    #[test]
    fn solved_kappa_matches_paper_constant() {
        let kappa = solve_kappa().unwrap();
        assert!((kappa - KAPPA).abs() < 5e-6, "solved {kappa} vs paper {KAPPA}");
    }

    #[test]
    fn first_order_condition_holds_at_unit_bandwidth() {
        let u = AdaptiveExp::new(solve_kappa().unwrap());
        let lhs = u.value(1.0);
        let rhs = u.derivative(1.0);
        assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
    }

    #[test]
    fn k_max_is_capacity_under_calibration() {
        // With κ calibrated, argmax_k k·π(C/k) should land at k ≈ C.
        let u = AdaptiveExp::paper();
        for c in [50.0, 100.0, 400.0] {
            let k = crate::fixed_load::k_max_continuous(&u, c).unwrap();
            assert!((k - c).abs() < 0.01 * c, "C={c}: k_max={k}");
        }
    }
}
