//! The fixed-load model (paper §2): total utility `V(k) = k·π(C/k)` and its
//! maximizer `k_max(C)`.

use crate::rigid::Rigid;
use crate::traits::Utility;
use bevra_num::{argmax_unimodal_u64, golden_section_max, NumResult};

/// Total utility of `k` identical flows sharing capacity `C` equally:
/// `V(k) = k·π(C/k)`, with `V(0) = 0`.
#[must_use]
pub fn total_utility(u: &dyn Utility, k: u64, capacity: f64) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let kf = k as f64;
    kf * u.value(capacity / kf)
}

/// The discrete admission threshold `k_max(C) = argmax_{k≥1} k·π(C/k)`.
///
/// For rigid utilities the peak is `⌊C/b̄⌋` in closed form; for smooth
/// inelastic utilities the sequence is unimodal and found by integer
/// ternary search. Elastic utilities have no finite maximizer; the search
/// then reports failure (`NoBracket`), which callers treat as "never deny
/// access" (paper: `V(k)` strictly increasing ⇒ admission control unneeded).
///
/// # Errors
///
/// `NoBracket` when `V(k)` is still increasing at astronomically large `k`,
/// i.e. the utility is effectively elastic.
pub fn k_max_discrete(u: &dyn Utility, capacity: f64) -> NumResult<u64> {
    // The unimodal search handles the generic case; the rigid closed form is
    // a fast path that also avoids the cliff's non-unimodality corner.
    argmax_unimodal_u64(|k| total_utility(u, k, capacity), 1, 1u64 << 40)
}

/// Closed-form `k_max` for [`Rigid`] utilities: `⌊C/b̄⌋`.
#[must_use]
pub fn k_max_rigid(u: &Rigid, capacity: f64) -> u64 {
    u.k_max(capacity)
}

/// Continuous relaxation of `k_max(C)`: the real `k ≥ 1` maximizing
/// `k·π(C/k)`, used by the continuum model (where the paper's calibrations
/// make it exactly `C` for both rigid `b̄ = 1` and ramp utilities).
///
/// # Errors
///
/// Propagates optimizer failures (elastic utilities).
pub fn k_max_continuous(u: &dyn Utility, capacity: f64) -> NumResult<f64> {
    let f = |k: f64| {
        if k <= 0.0 {
            0.0
        } else {
            k * u.value(capacity / k)
        }
    };
    // V(k) is bounded by k·1 on the left and tends to C·π'(0)-ish slopes on
    // the right; for inelastic utilities the peak is near C, so search a
    // generous bracket around it.
    let hi = 100.0 * capacity.max(1.0);
    let m = golden_section_max(f, 1e-9, hi, 1e-9 * capacity.max(1.0))?;
    Ok(m.x)
}

/// A fixed-load scenario bundling a utility and a capacity, exposing the §2
/// quantities as methods. Convenience wrapper used by examples and tests.
#[derive(Clone)]
pub struct FixedLoad<U: Utility> {
    /// Application utility.
    pub utility: U,
    /// Link capacity `C`.
    pub capacity: f64,
}

impl<U: Utility> FixedLoad<U> {
    /// New scenario.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    #[must_use]
    pub fn new(utility: U, capacity: f64) -> Self {
        assert!(capacity > 0.0 && capacity.is_finite(), "capacity must be positive and finite");
        Self { utility, capacity }
    }

    /// `V(k) = k·π(C/k)`.
    #[must_use]
    pub fn v(&self, k: u64) -> f64 {
        total_utility(&self.utility, k, self.capacity)
    }

    /// Discrete `k_max(C)`, or `None` for elastic utilities (never deny).
    #[must_use]
    pub fn k_max(&self) -> Option<u64> {
        k_max_discrete(&self.utility, self.capacity).ok()
    }

    /// Total utility under best-effort with offered load `k`: every flow is
    /// admitted.
    #[must_use]
    pub fn best_effort(&self, k: u64) -> f64 {
        self.v(k)
    }

    /// Total utility under reservations with offered load `k`: the admitted
    /// population is capped at `k_max` (rejected flows get zero).
    #[must_use]
    pub fn reservation(&self, k: u64) -> f64 {
        match self.k_max() {
            Some(kmax) => self.v(k.min(kmax)),
            None => self.v(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveExp;
    use crate::elastic::ExponentialElastic;
    use crate::rigid::Rigid;

    #[test]
    fn rigid_k_max_is_floor() {
        let u = Rigid::unit();
        assert_eq!(k_max_discrete(&u, 100.0).unwrap(), 100);
        assert_eq!(k_max_discrete(&u, 100.7).unwrap(), 100);
        assert_eq!(k_max_rigid(&u, 250.2), 250);
    }

    #[test]
    fn adaptive_k_max_near_capacity() {
        // Paper footnote 4: κ calibrated so k_max(C) = C.
        let u = AdaptiveExp::paper();
        for c in [50.0, 100.0, 500.0] {
            let k = k_max_discrete(&u, c).unwrap() as f64;
            assert!((k - c).abs() <= 1.0 + 0.01 * c, "C={c}: k_max={k}");
        }
    }

    #[test]
    fn elastic_has_no_finite_k_max() {
        let u = ExponentialElastic::default();
        assert!(k_max_discrete(&u, 100.0).is_err());
    }

    #[test]
    fn reservation_beats_best_effort_in_overload() {
        // §2: for rigid applications, V drops to zero past k_max under best
        // effort while reservations hold V at k_max.
        let s = FixedLoad::new(Rigid::unit(), 100.0);
        assert_eq!(s.best_effort(150), 0.0);
        assert_eq!(s.reservation(150), 100.0);
        // Underload: identical.
        assert_eq!(s.best_effort(70), s.reservation(70));
    }

    #[test]
    fn adaptive_overload_degrades_gently() {
        // §2: adaptive applications lose utility past k_max far more gently
        // than rigid ones.
        let s = FixedLoad::new(AdaptiveExp::paper(), 100.0);
        let at_peak = s.reservation(100);
        let overload = s.best_effort(150);
        assert!(overload > 0.5 * at_peak, "adaptive overload keeps most utility");
        assert!(s.reservation(150) > overload, "but reservations still win");
    }

    #[test]
    fn continuous_k_max_matches_discrete() {
        let u = AdaptiveExp::paper();
        let kc = k_max_continuous(&u, 200.0).unwrap();
        let kd = k_max_discrete(&u, 200.0).unwrap() as f64;
        assert!((kc - kd).abs() <= 1.5, "{kc} vs {kd}");
    }

    #[test]
    fn v_zero_population_is_zero() {
        let s = FixedLoad::new(AdaptiveExp::paper(), 10.0);
        assert_eq!(s.v(0), 0.0);
    }
}
