//! Rigid (hard real-time) applications — paper Equation 1.

use crate::traits::Utility;

/// A rigid application needs exactly `b̄` units of bandwidth: it is worthless
/// below the threshold and gains nothing above it (paper Eq. 1):
///
/// ```text
/// π(b) = 0  for b < b̄,    π(b) = 1  for b ≥ b̄.
/// ```
///
/// Traditional telephony is the canonical example. With rigid applications
/// `V(k) = k·π(C/k)` collapses to `k` for `k ≤ C/b̄` and `0` beyond, so
/// `k_max(C) = ⌊C/b̄⌋` and admission control is clearly necessary (§2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rigid {
    /// Required bandwidth `b̄`.
    pub threshold: f64,
}

impl Rigid {
    /// Rigid application with requirement `b̄ = threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive (a zero-requirement
    /// rigid application would be identically 1, violating `π(0) = 0`).
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "rigid threshold must be positive");
        Self { threshold }
    }

    /// The paper's default calibration `b̄ = 1`, which makes
    /// `k_max(C) = ⌊C⌋`, directly comparable to the adaptive utility's
    /// `k_max(C) = C` calibration.
    #[must_use]
    pub fn unit() -> Self {
        Self::new(1.0)
    }

    /// Admission threshold of the fixed-load model: `⌊C / b̄⌋`.
    #[must_use]
    pub fn k_max(&self, capacity: f64) -> u64 {
        if capacity < self.threshold {
            0
        } else {
            (capacity / self.threshold).floor() as u64
        }
    }
}

impl Utility for Rigid {
    fn value(&self, b: f64) -> f64 {
        if b >= self.threshold {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "rigid"
    }

    fn derivative(&self, _b: f64) -> f64 {
        // Zero almost everywhere; the step at b̄ has no classical derivative.
        0.0
    }

    fn knots(&self) -> Vec<f64> {
        vec![self.threshold]
    }

    fn value_slice(&self, bs: &[f64], out: &mut [f64]) {
        assert_eq!(bs.len(), out.len(), "bandwidth/output slices must match");
        let t = self.threshold;
        // A compare-and-select loop (no call, no branch): auto-vectorizes
        // and is bitwise identical to `value` per element.
        for (o, &b) in out.iter_mut().zip(bs) {
            *o = if b >= t { 1.0 } else { 0.0 };
        }
    }

    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, _scratch: &mut [f64], out: &mut [f64]) {
        assert!(kf > 0.0, "admission level must be positive");
        assert_eq!(cs.len(), out.len(), "capacity/output slices must match");
        let t = self.threshold;
        // One compare-select pass, no scratch round-trip. The division is
        // kept (rather than comparing `cs[i] >= t·kf`) so the comparison
        // operand is the *same rounded quotient* the scalar composition
        // sees — this override is bitwise identical to the default
        // divide-then-value_slice path, not merely tolerance-close.
        for (o, &c) in out.iter_mut().zip(cs) {
            *o = if c / kf >= t { 1.0 } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shape() {
        let u = Rigid::unit();
        assert_eq!(u.value(0.0), 0.0);
        assert_eq!(u.value(0.999), 0.0);
        assert_eq!(u.value(1.0), 1.0);
        assert_eq!(u.value(100.0), 1.0);
    }

    #[test]
    fn k_max_floors_capacity() {
        let u = Rigid::unit();
        assert_eq!(u.k_max(0.5), 0);
        assert_eq!(u.k_max(1.0), 1);
        assert_eq!(u.k_max(99.999), 99);
        assert_eq!(u.k_max(100.0), 100);
        let u2 = Rigid::new(2.0);
        assert_eq!(u2.k_max(100.0), 50);
    }

    #[test]
    #[should_panic(expected = "rigid threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = Rigid::new(0.0);
    }
}
