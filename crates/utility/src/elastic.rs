//! Elastic applications: strictly concave utility everywhere.
//!
//! Traditional data applications (mail, file transfer) tolerate delay and
//! extract diminishing returns from extra bandwidth, so `π` is strictly
//! concave and `V(k) = k·π(C/k)` is strictly increasing in `k` — the
//! best-effort architecture is ideal for them (paper §2). These families
//! serve as baselines and as the "elastic" case of the retrying footnote in
//! §5.1 (`π(b) = 1 − e^{−b}`).

use crate::traits::Utility;

/// `π(b) = 1 − e^{−r·b}`: the elastic exponential utility the paper mentions
/// explicitly (`r = 1` in its footnote).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialElastic {
    /// Rate `r > 0`; larger means the application saturates faster.
    pub rate: f64,
}

impl ExponentialElastic {
    /// New elastic exponential utility with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "elastic rate must be positive");
        Self { rate }
    }
}

impl Default for ExponentialElastic {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Utility for ExponentialElastic {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            -(-self.rate * b).exp_m1()
        }
    }

    fn name(&self) -> &'static str {
        "elastic-exp"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * b).exp()
        }
    }

    fn value_portable(&self, b: f64) -> f64 {
        // Polynomial 1 − e^{−rate·b} (no libm): ≤ 8 ULPs from `value`,
        // bit-identical on every platform.
        if b <= 0.0 {
            0.0
        } else {
            bevra_num::one_minus_exp_neg(self.rate * b)
        }
    }

    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        // Fused dispatched kernel: branch-free clamp + 1 − e^{−rate·b} on
        // one vector path; b = 0 gives x = 0 ⇒ π = 0 exactly, matching
        // `value`.
        bevra_num::one_minus_exp_neg_scaled_slice(bs, self.rate, out);
    }
}

/// `π(b) = b / (s + b)`: a hyperbolic saturating utility, strictly concave,
/// approaching 1 algebraically rather than exponentially. Useful as an
/// elastic counterpart to the algebraic-tail inelastic families of §3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturating {
    /// Half-saturation point `s > 0`: `π(s) = 1/2`.
    pub scale: f64,
}

impl Saturating {
    /// New saturating utility with half-saturation `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "saturating scale must be positive");
        Self { scale }
    }
}

impl Default for Saturating {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Utility for Saturating {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            b / (self.scale + b)
        }
    }

    fn name(&self) -> &'static str {
        "elastic-saturating"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b < 0.0 {
            0.0
        } else {
            let d = self.scale + b;
            self.scale / (d * d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{classify, Curvature};

    #[test]
    fn exponential_limits() {
        let u = ExponentialElastic::default();
        assert_eq!(u.value(0.0), 0.0);
        assert!((u.value(50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn both_classify_concave() {
        assert_eq!(classify(&ExponentialElastic::default()), Curvature::ConcaveAtOrigin);
        assert_eq!(classify(&Saturating::default()), Curvature::ConcaveAtOrigin);
    }

    #[test]
    fn total_utility_increasing_in_k() {
        // The §2 result: for strictly concave π, V(k) = k·π(C/k) increases
        // with k, so admission control never helps.
        let u = ExponentialElastic::default();
        let c = 10.0;
        let mut prev = 0.0;
        for k in 1..200u32 {
            let v = f64::from(k) * u.value(c / f64::from(k));
            assert!(v > prev, "V must increase: k={k}");
            prev = v;
        }
    }

    #[test]
    fn derivatives_match_finite_difference() {
        for b in [0.1, 1.0, 3.0] {
            let u = ExponentialElastic::new(0.7);
            let fd = (u.value(b + 1e-7) - u.value(b - 1e-7)) / 2e-7;
            assert!((u.derivative(b) - fd).abs() < 1e-6);
            let s = Saturating::new(2.0);
            let fd = (s.value(b + 1e-7) - s.value(b - 1e-7)) / 2e-7;
            assert!((s.derivative(b) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn saturating_half_point() {
        let u = Saturating::new(3.0);
        assert!((u.value(3.0) - 0.5).abs() < 1e-15);
    }
}
