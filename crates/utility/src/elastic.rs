//! Elastic applications: strictly concave utility everywhere.
//!
//! Traditional data applications (mail, file transfer) tolerate delay and
//! extract diminishing returns from extra bandwidth, so `π` is strictly
//! concave and `V(k) = k·π(C/k)` is strictly increasing in `k` — the
//! best-effort architecture is ideal for them (paper §2). These families
//! serve as baselines and as the "elastic" case of the retrying footnote in
//! §5.1 (`π(b) = 1 − e^{−b}`).

use crate::traits::Utility;

/// `π(b) = 1 − e^{−r·b}`: the elastic exponential utility the paper mentions
/// explicitly (`r = 1` in its footnote).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialElastic {
    /// Rate `r > 0`; larger means the application saturates faster.
    pub rate: f64,
}

impl ExponentialElastic {
    /// New elastic exponential utility with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "elastic rate must be positive");
        Self { rate }
    }
}

impl Default for ExponentialElastic {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Utility for ExponentialElastic {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            -(-self.rate * b).exp_m1()
        }
    }

    fn name(&self) -> &'static str {
        "elastic-exp"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * b).exp()
        }
    }

    fn value_portable(&self, b: f64) -> f64 {
        // Polynomial 1 − e^{−rate·b} (no libm): ≤ 8 ULPs from `value`,
        // bit-identical on every platform.
        if b <= 0.0 {
            0.0
        } else {
            bevra_num::one_minus_exp_neg(self.rate * b)
        }
    }

    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        // Fused dispatched kernel: branch-free clamp + 1 − e^{−rate·b} on
        // one vector path; b = 0 gives x = 0 ⇒ π = 0 exactly, matching
        // `value`.
        bevra_num::one_minus_exp_neg_scaled_slice(bs, self.rate, out);
    }

    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, _scratch: &mut [f64], out: &mut [f64]) {
        assert!(kf > 0.0, "admission level must be positive");
        // The division by k is absorbed into the rate:
        // rate·(C/k) = (rate/k)·C up to one rounding each way, so the
        // whole grid evaluates on one vector path with no scratch
        // round-trip. A few ULPs from the divide-then-slice composition —
        // inside the fast kernels' 1e-13 budget (property-tested in
        // `tests/batch_parity.rs`). C ≤ 0 clamps to exactly 0 inside the
        // kernel, matching `value`.
        bevra_num::one_minus_exp_neg_scaled_slice(cs, self.rate / kf, out);
    }
}

/// `π(b) = b / (s + b)`: a hyperbolic saturating utility, strictly concave,
/// approaching 1 algebraically rather than exponentially. Useful as an
/// elastic counterpart to the algebraic-tail inelastic families of §3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saturating {
    /// Half-saturation point `s > 0`: `π(s) = 1/2`.
    pub scale: f64,
}

impl Saturating {
    /// New saturating utility with half-saturation `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "saturating scale must be positive");
        Self { scale }
    }
}

impl Default for Saturating {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Utility for Saturating {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            b / (self.scale + b)
        }
    }

    fn name(&self) -> &'static str {
        "elastic-saturating"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b < 0.0 {
            0.0
        } else {
            let d = self.scale + b;
            self.scale / (d * d)
        }
    }

    fn value_slice(&self, bs: &[f64], out: &mut [f64]) {
        assert_eq!(bs.len(), out.len(), "bandwidth/output slices must match");
        let s = self.scale;
        // Branchless select + one divide per lane: auto-vectorizes and is
        // bitwise identical to `value` per element.
        for (o, &b) in out.iter_mut().zip(bs) {
            *o = if b > 0.0 { b / (s + b) } else { 0.0 };
        }
    }

    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, _scratch: &mut [f64], out: &mut [f64]) {
        assert!(kf > 0.0, "admission level must be positive");
        assert_eq!(cs.len(), out.len(), "capacity/output slices must match");
        let sk = self.scale * kf;
        // (C/k) / (s + C/k) = C / (s·k + C): one divide per lane instead of
        // two and no scratch round-trip. The algebra is exact in ℝ but the
        // roundings differ, so this is tolerance-class (≤ a few ULPs, well
        // inside the fast kernels' 1e-13 budget). C ≤ 0 selects exactly 0,
        // matching `value`.
        for (o, &c) in out.iter_mut().zip(cs) {
            *o = if c > 0.0 { c / (sk + c) } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{classify, Curvature};

    #[test]
    fn exponential_limits() {
        let u = ExponentialElastic::default();
        assert_eq!(u.value(0.0), 0.0);
        assert!((u.value(50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn both_classify_concave() {
        assert_eq!(classify(&ExponentialElastic::default()), Curvature::ConcaveAtOrigin);
        assert_eq!(classify(&Saturating::default()), Curvature::ConcaveAtOrigin);
    }

    #[test]
    fn total_utility_increasing_in_k() {
        // The §2 result: for strictly concave π, V(k) = k·π(C/k) increases
        // with k, so admission control never helps.
        let u = ExponentialElastic::default();
        let c = 10.0;
        let mut prev = 0.0;
        for k in 1..200u32 {
            let v = f64::from(k) * u.value(c / f64::from(k));
            assert!(v > prev, "V must increase: k={k}");
            prev = v;
        }
    }

    #[test]
    fn derivatives_match_finite_difference() {
        for b in [0.1, 1.0, 3.0] {
            let u = ExponentialElastic::new(0.7);
            let fd = (u.value(b + 1e-7) - u.value(b - 1e-7)) / 2e-7;
            assert!((u.derivative(b) - fd).abs() < 1e-6);
            let s = Saturating::new(2.0);
            let fd = (s.value(b + 1e-7) - s.value(b - 1e-7)) / 2e-7;
            assert!((s.derivative(b) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn saturating_half_point() {
        let u = Saturating::new(3.0);
        assert!((u.value(3.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn saturating_value_slice_bitwise() {
        let u = Saturating::new(2.5);
        let bs: Vec<f64> = (-3..40).map(|i| f64::from(i) * 0.37).collect();
        let mut out = vec![0.0; bs.len()];
        u.value_slice(&bs, &mut out);
        for (&b, &o) in bs.iter().zip(&out) {
            assert_eq!(o.to_bits(), u.value(b).to_bits(), "b={b}");
        }
    }

    #[test]
    fn capacity_slice_fast_within_budget() {
        // The grid overrides re-associate the division by k; check the
        // declared ≤ 1e-13 relative budget against divide-then-value for
        // both elastic families over representative grids and levels.
        let exp = ExponentialElastic::new(0.8);
        let sat = Saturating::new(1.7);
        let cs: Vec<f64> = (0..200).map(|i| 0.05 + f64::from(i) * 5.11).collect();
        let mut scratch = vec![0.0; cs.len()];
        let mut out = vec![0.0; cs.len()];
        for kf in [1.0, 3.0, 47.0, 1000.0] {
            exp.value_capacity_slice_fast(&cs, kf, &mut scratch, &mut out);
            for (&c, &o) in cs.iter().zip(&out) {
                let want = exp.value(c / kf);
                assert!((o - want).abs() <= 1e-13 * want.max(1e-300), "exp c={c} k={kf}");
            }
            sat.value_capacity_slice_fast(&cs, kf, &mut scratch, &mut out);
            for (&c, &o) in cs.iter().zip(&out) {
                let want = sat.value(c / kf);
                assert!((o - want).abs() <= 1e-13 * want.max(1e-300), "sat c={c} k={kf}");
            }
        }
    }

    #[test]
    fn capacity_slice_fast_zero_and_negative_capacity() {
        let exp = ExponentialElastic::default();
        let sat = Saturating::default();
        let cs = [-2.0, 0.0, 1.0];
        let mut scratch = [0.0; 3];
        let mut out = [9.0; 3];
        exp.value_capacity_slice_fast(&cs, 2.0, &mut scratch, &mut out);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.0);
        sat.value_capacity_slice_fast(&cs, 2.0, &mut scratch, &mut out);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.0);
    }
}
