//! The continuum model's piecewise-linear adaptive utility (paper §3.2).

use crate::traits::Utility;

/// Piecewise-linear "ramp" utility parameterized by adaptivity `a ∈ (0, 1]`:
///
/// ```text
/// π(b) = 0              for b ≤ a
/// π(b) = (b − a)/(1 − a) for a ≤ b ≤ 1
/// π(b) = 1              for b ≥ 1
/// ```
///
/// The paper substitutes this for Eq. 2 in the continuum model because it
/// keeps the integrals tractable. `a → 1` recovers the rigid utility with
/// `b̄ = 1`; decreasing `a` means increasing adaptivity; at `a → 0` the
/// function is concave (elastic) and the reservation advantage vanishes.
/// For all `a > 0`, `k_max(C) = C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ramp {
    /// Lower ramp threshold `a ∈ (0, 1]`.
    pub a: f64,
}

impl Ramp {
    /// New ramp utility.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < a ≤ 1`.
    #[must_use]
    pub fn new(a: f64) -> Self {
        assert!(a > 0.0 && a <= 1.0, "ramp parameter must satisfy 0 < a <= 1");
        Self { a }
    }

    /// The coefficient `H(a, z) = 1 + a(1 − a^{z−2})/(1 − a)` that appears
    /// throughout the algebraic-load closed forms (see
    /// `bevra-core::continuum::closed_algebraic`). Continuous at `a = 1`,
    /// where it equals `z − 1` (the rigid value).
    #[must_use]
    pub fn h_coefficient(&self, z: f64) -> f64 {
        if (1.0 - self.a).abs() < 1e-9 {
            return z - 1.0;
        }
        1.0 + self.a * (1.0 - self.a.powf(z - 2.0)) / (1.0 - self.a)
    }
}

impl Utility for Ramp {
    fn value(&self, b: f64) -> f64 {
        if self.a >= 1.0 {
            // Degenerate rigid case.
            return if b >= 1.0 { 1.0 } else { 0.0 };
        }
        if b <= self.a {
            0.0
        } else if b >= 1.0 {
            1.0
        } else {
            (b - self.a) / (1.0 - self.a)
        }
    }

    fn name(&self) -> &'static str {
        "ramp"
    }

    fn derivative(&self, b: f64) -> f64 {
        if self.a < 1.0 && b > self.a && b < 1.0 {
            1.0 / (1.0 - self.a)
        } else {
            0.0
        }
    }

    fn knots(&self) -> Vec<f64> {
        vec![self.a, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_shape() {
        let u = Ramp::new(0.25);
        assert_eq!(u.value(0.0), 0.0);
        assert_eq!(u.value(0.25), 0.0);
        assert!((u.value(0.625) - 0.5).abs() < 1e-15);
        assert_eq!(u.value(1.0), 1.0);
        assert_eq!(u.value(5.0), 1.0);
    }

    #[test]
    fn a_equal_one_is_rigid() {
        let u = Ramp::new(1.0);
        assert_eq!(u.value(0.999_999), 0.0);
        assert_eq!(u.value(1.0), 1.0);
    }

    #[test]
    fn h_coefficient_limits() {
        let z = 3.0;
        // a → 1 gives the rigid value z − 1 = 2.
        assert!((Ramp::new(1.0).h_coefficient(z) - 2.0).abs() < 1e-12);
        assert!((Ramp::new(0.999_999_999).h_coefficient(z) - 2.0).abs() < 1e-6);
        // a → 0⁺ gives 1 (no reservation advantage term).
        assert!((Ramp::new(1e-9).h_coefficient(z) - 1.0).abs() < 1e-8);
        // At z = 3: H = 1 + a(1 − a)/(1 − a) = 1 + a.
        for a in [0.2, 0.5, 0.8] {
            assert!((Ramp::new(a).h_coefficient(3.0) - (1.0 + a)).abs() < 1e-12);
        }
    }

    #[test]
    fn derivative_on_ramp_segment() {
        let u = Ramp::new(0.5);
        assert_eq!(u.derivative(0.75), 2.0);
        assert_eq!(u.derivative(0.25), 0.0);
        assert_eq!(u.derivative(1.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "ramp parameter")]
    fn zero_a_rejected() {
        let _ = Ramp::new(0.0);
    }
}
