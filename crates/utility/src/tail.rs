//! Utility functions with algebraic (power-law) approach to saturation
//! (paper §3.3, footnote 8).
//!
//! The paper notes that its Eq.-2 adaptive family approaches 1
//! exponentially, and that families approaching 1 *algebraically*
//! (`π(b) ≈ 1 − b^{−τ}`) interact qualitatively differently with algebraic
//! load distributions: the asymptotic behaviour of the bandwidth gap `Δ(C)`
//! then depends on the relation between the utility exponent `τ` and the
//! load exponent `z` (`Δ ~ C` if `τ > z−2`, `Δ ~ C^{τ+3−z}` if `τ < z−2`,
//! decreasing when `τ < z−3`).

use crate::traits::Utility;

/// The tractable algebraic-tail form the paper uses in §3.3:
///
/// ```text
/// π(b) = 0          for b ≤ 1
/// π(b) = 1 − b^{−τ}  for b > 1
/// ```
///
/// It captures the slow approach to full quality at high bandwidth and
/// deliberately ignores the low-`b` region (the paper's own simplification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgebraicTail {
    /// Tail exponent `τ > 0`.
    pub tau: f64,
}

impl AlgebraicTail {
    /// New algebraic-tail utility.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive.
    #[must_use]
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self { tau }
    }
}

impl Utility for AlgebraicTail {
    fn value(&self, b: f64) -> f64 {
        if b <= 1.0 {
            0.0
        } else {
            1.0 - b.powf(-self.tau)
        }
    }

    fn name(&self) -> &'static str {
        "algebraic-tail"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b <= 1.0 {
            0.0
        } else {
            self.tau * b.powf(-self.tau - 1.0)
        }
    }

    fn knots(&self) -> Vec<f64> {
        vec![1.0]
    }
}

/// The low-bandwidth power-law variant the paper also investigated
/// (footnote 8):
///
/// ```text
/// π(b) = b^r  for b ≤ 1,    π(b) = 1  for b > 1
/// ```
///
/// Convex at the origin (inelastic) whenever `r > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLow {
    /// Low-end exponent `r > 0`.
    pub r: f64,
}

impl PowerLow {
    /// New power-low utility.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive.
    #[must_use]
    pub fn new(r: f64) -> Self {
        assert!(r > 0.0, "r must be positive");
        Self { r }
    }
}

impl Utility for PowerLow {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else if b >= 1.0 {
            1.0
        } else {
            b.powf(self.r)
        }
    }

    fn name(&self) -> &'static str {
        "power-low"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b <= 0.0 || b >= 1.0 {
            0.0
        } else {
            self.r * b.powf(self.r - 1.0)
        }
    }

    fn knots(&self) -> Vec<f64> {
        vec![1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{classify, Curvature};

    #[test]
    fn algebraic_tail_shape() {
        let u = AlgebraicTail::new(2.0);
        assert_eq!(u.value(0.5), 0.0);
        assert_eq!(u.value(1.0), 0.0);
        assert!((u.value(2.0) - 0.75).abs() < 1e-15);
        assert!((u.value(100.0) - 0.9999).abs() < 1e-12);
    }

    #[test]
    fn algebraic_tail_approaches_one_algebraically() {
        let u = AlgebraicTail::new(1.5);
        for b in [10.0, 100.0, 1000.0f64] {
            let deficit = 1.0 - u.value(b);
            assert!((deficit - b.powf(-1.5)).abs() < 1e-15);
        }
    }

    #[test]
    fn power_low_convexity_depends_on_r() {
        assert_eq!(classify(&PowerLow::new(2.0)), Curvature::ConvexAtOrigin);
        assert_eq!(classify(&PowerLow::new(0.5)), Curvature::ConcaveAtOrigin);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let u = AlgebraicTail::new(2.5);
        for b in [1.5, 3.0, 10.0] {
            let fd = (u.value(b + 1e-7) - u.value(b - 1e-7)) / 2e-7;
            assert!((u.derivative(b) - fd).abs() < 1e-5, "b={b}");
        }
        let p = PowerLow::new(3.0);
        for b in [0.2, 0.5, 0.9] {
            let fd = (p.value(b + 1e-7) - p.value(b - 1e-7)) / 2e-7;
            assert!((p.derivative(b) - fd).abs() < 1e-5, "b={b}");
        }
    }
}
