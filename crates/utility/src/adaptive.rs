//! The paper's adaptive utility function — Equation 2 and Figure 1.

use crate::kappa::KAPPA;
use crate::traits::Utility;

/// Rate- and delay-adaptive audio/video utility (paper Eq. 2):
///
/// ```text
/// π(b) = 1 − e^{ −b² / (κ + b) }
/// ```
///
/// Human perception makes tiny bandwidths nearly worthless
/// (`π(b) ≈ b²/κ` for small `b` — convex near the origin, hence inelastic)
/// while quality saturates at high bandwidth (`π(b) ≈ 1 − e^{−b}` for large
/// `b`). The constant κ = 0.62086 is calibrated so that the fixed-load
/// optimum is `k_max(C) = C`, directly comparable to the rigid case with
/// `b̄ = 1` (paper footnote 4); see [`crate::kappa::solve_kappa`] for the
/// calibration equation and solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveExp {
    /// Shape constant κ > 0.
    pub kappa: f64,
}

impl AdaptiveExp {
    /// Adaptive utility with an explicit κ.
    ///
    /// # Panics
    ///
    /// Panics if `kappa` is not strictly positive.
    #[must_use]
    pub fn new(kappa: f64) -> Self {
        assert!(kappa > 0.0, "kappa must be positive");
        Self { kappa }
    }

    /// The paper's calibration κ = 0.62086 (footnote 4).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(KAPPA)
    }

    /// Exponent `b²/(κ+b)`, exposed for closed-form manipulations.
    #[must_use]
    pub fn exponent(&self, b: f64) -> f64 {
        b * b / (self.kappa + b)
    }
}

impl Default for AdaptiveExp {
    fn default() -> Self {
        Self::paper()
    }
}

impl Utility for AdaptiveExp {
    fn value(&self, b: f64) -> f64 {
        if b <= 0.0 {
            0.0
        } else {
            -(-self.exponent(b)).exp_m1()
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn derivative(&self, b: f64) -> f64 {
        if b < 0.0 {
            return 0.0;
        }
        // d/db [b²/(κ+b)] = (b² + 2κb)/(κ+b)².
        let d = self.kappa + b;
        let g = (b * b + 2.0 * self.kappa * b) / (d * d);
        g * (-self.exponent(b)).exp()
    }

    fn value_portable(&self, b: f64) -> f64 {
        // Same branch structure as `value`, but the transcendental goes
        // through the branch-free polynomial instead of libm `exp_m1`:
        // within 8 ULPs of `value`, bit-identical on every platform.
        if b <= 0.0 {
            0.0
        } else {
            bevra_num::one_minus_exp_neg(self.exponent(b))
        }
    }

    fn value_slice_fast(&self, bs: &[f64], out: &mut [f64]) {
        // Fused dispatched kernel: clamp b to [0, ∞) so the exponent is
        // well defined (κ > 0 keeps the denominator positive), exponent
        // and 1 − e^{−x} on one vector path. b = 0 gives x = 0 ⇒ π = 0
        // exactly, matching `value`.
        bevra_num::one_minus_exp_neg_adaptive_slice(bs, self.kappa, out);
    }

    fn value_capacity_slice_fast(&self, cs: &[f64], kf: f64, _scratch: &mut [f64], out: &mut [f64]) {
        assert!(kf > 0.0, "admission level must be positive");
        // Grid form x = C²/(κk² + Ck): the per-lane division by k is
        // absorbed into the exponent's own division, halving the packed
        // divides in the batched welfare kernels (where this is the hot
        // call). Tolerance-budgeted against the split form — see
        // `bevra_num::one_minus_exp_neg_adaptive_grid`.
        bevra_num::one_minus_exp_neg_adaptive_grid(cs, kf, self.kappa, out);
    }

    fn accumulate_pi_kspan_fast(
        &self,
        c: f64,
        k0: f64,
        pmfs: &[f64],
        sums: &mut [f64; bevra_num::KSPAN_ACCS],
        comps: &mut [f64; bevra_num::KSPAN_ACCS],
    ) -> bool {
        // One vectorized walk over a span of admission levels for a single
        // capacity — the inner loop of the fused B+R grid pass. Contract
        // (determinism, cross-tier bitwise, 1e-13 budget) documented on
        // `bevra_num::one_minus_exp_neg_adaptive_kspan`.
        bevra_num::one_minus_exp_neg_adaptive_kspan(c, self.kappa, k0, pmfs, sums, comps);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{classify, Curvature};

    #[test]
    fn boundary_values() {
        let u = AdaptiveExp::paper();
        assert_eq!(u.value(0.0), 0.0);
        assert!(u.value(1000.0) > 1.0 - 1e-12);
    }

    #[test]
    fn small_b_quadratic_asymptote() {
        // Paper: for small b, π(b) ≈ b²/κ.
        let u = AdaptiveExp::paper();
        for b in [1e-3, 1e-4] {
            let approx = b * b / u.kappa;
            assert!((u.value(b) - approx).abs() < approx * 1e-2, "b={b}");
        }
    }

    #[test]
    fn large_b_exponential_asymptote() {
        // Paper: for large b, π(b) ≈ 1 − e^{−b} (the exponent → b − κ ... →
        // b asymptotically). Check the ratio of the tails.
        let u = AdaptiveExp::paper();
        let b = 10.0;
        let tail = 1.0 - u.value(b);
        let want = (-(b * b) / (u.kappa + b)).exp();
        assert!((tail - want).abs() < 1e-12 * want.max(1e-30), "tail {tail} vs {want}");
        // And the exponent approaches b − κ for large b.
        let b = 40.0;
        assert!((u.exponent(b) - (b - u.kappa)).abs() < 0.02);
    }

    #[test]
    fn classified_inelastic() {
        assert_eq!(classify(&AdaptiveExp::paper()), Curvature::ConvexAtOrigin);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let u = AdaptiveExp::paper();
        for b in [0.05, 0.3, 1.0, 2.5, 10.0] {
            let fd = (u.value(b + 1e-7) - u.value(b - 1e-7)) / 2e-7;
            assert!((u.derivative(b) - fd).abs() < 1e-6, "b={b}");
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        let u = AdaptiveExp::paper();
        let mut prev = -1.0;
        for i in 0..=4000 {
            let b = f64::from(i) * 0.005;
            let v = u.value(b);
            assert!(v >= prev);
            prev = v;
        }
    }
}
