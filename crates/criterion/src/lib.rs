//! Offline stand-in for the subset of the Criterion benchmarking API this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! crate is unavailable. This package keeps the bench sources unchanged —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — and implements a small adaptive timing harness:
//! each benchmark is warmed up, an iteration count is chosen to fill the
//! measurement window, and the per-iteration mean, median, and minimum are
//! printed.
//!
//! Environment knobs:
//!
//! * `BEVRA_BENCH_MS` — measurement window per benchmark in milliseconds
//!   (default 300).
//! * `BEVRA_BENCH_JSON` — where the machine-readable results land:
//!   `off` disables the export, any other value is the output path. The
//!   default is `BENCH_sweep.json` at the workspace root. See
//!   EXPERIMENTS.md § "Benchmark artifact schema".
//!
//! Besides printing the human-readable summary, every benchmark records
//! its result in a process-global registry; `criterion_main!` merges the
//! registry into the JSON artifact on exit (read–modify–write keyed by
//! benchmark name, so running one bench target refreshes only its own
//! rows). A benchmark that sweeps a grid can declare the grid size with
//! [`Bencher::points`] so the artifact carries per-point normalization.

use std::hint;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Measurement window per benchmark.
fn measure_window() -> Duration {
    let ms = std::env::var("BEVRA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// One finished benchmark, as recorded in the JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (the `bench_function` argument).
    pub name: String,
    /// Median per-iteration wall time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration wall time in nanoseconds.
    pub mean_ns: f64,
    /// Minimum per-iteration wall time in nanoseconds.
    pub min_ns: f64,
    /// Number of timing samples collected.
    pub samples: u64,
    /// Grid points covered per iteration (1 unless the bench declared
    /// otherwise via [`Bencher::points`]).
    pub points: u64,
    /// Measured package energy per iteration in joules, when the bench
    /// recorded one via [`Bencher::record_joules`] (typically from the
    /// optional RAPL probe in `bevra-obs`). `None` serializes as JSON
    /// `null`; consumers treat it as informational and never gate on it.
    pub joules_per_sweep: Option<f64>,
}

impl BenchResult {
    /// Median nanoseconds per grid point.
    #[must_use]
    pub fn ns_per_point(&self) -> f64 {
        self.median_ns / self.points.max(1) as f64
    }
}

/// Results recorded so far in this process, drained by
/// [`write_results`].
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run `f` as a named benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::new(), window: measure_window(), points: 1, joules: None };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Per-benchmark timing loop. Obtained inside [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    /// Per-iteration wall times collected during the measurement window.
    samples: Vec<Duration>,
    window: Duration,
    points: u64,
    joules: Option<f64>,
}

impl Bencher {
    /// Time repeated calls of `f`, adaptively choosing the iteration count
    /// to fill the measurement window.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and cost estimate: run until ~10% of the window is spent.
        let warm_budget = self.window / 10;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warm_budget || warm_iters < 1 {
            hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Batch size: aim for ≥ 30 samples over the window, each batch of
        // equal size so the per-iteration estimate is stable.
        let budget = self.window - warm_budget;
        let target_samples = 30u64;
        let per_sample = budget / target_samples as u32;
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
        if self.samples.is_empty() {
            // Extremely slow body: one batch is the whole measurement.
            let t0 = Instant::now();
            hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Declare how many grid points one iteration covers, so the JSON
    /// artifact can report nanoseconds per point (default 1).
    pub fn points(&mut self, n: usize) {
        self.points = n.max(1) as u64;
    }

    /// Record measured energy per iteration (joules) for the JSON
    /// artifact, typically from `bevra_obs::energy::EnergyProbe` around a
    /// counted re-run of the benchmark body. Non-finite or non-positive
    /// values are dropped; the default (`None`) serializes as `null` and
    /// no downstream gate keys on the field.
    pub fn record_joules(&mut self, joules: Option<f64>) {
        self.joules = joules.filter(|j| j.is_finite() && *j > 0.0);
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples — bencher.iter never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<44} median {:>12} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            sorted.len()
        );
        let result = BenchResult {
            name: name.to_string(),
            median_ns: median.as_nanos() as f64,
            mean_ns: mean.as_nanos() as f64,
            min_ns: min.as_nanos() as f64,
            samples: sorted.len() as u64,
            points: self.points,
            joules_per_sweep: self.joules,
        };
        RESULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(result);
    }
}

/// Where the JSON artifact goes: `BEVRA_BENCH_JSON` (a path, or `off` to
/// disable), defaulting to `BENCH_sweep.json` at the workspace root.
fn results_path() -> Option<PathBuf> {
    match std::env::var("BEVRA_BENCH_JSON").ok().as_deref() {
        Some("off") => None,
        Some(p) => Some(PathBuf::from(p)),
        None => {
            // This crate lives at `<root>/crates/criterion`.
            let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            Some(root.ancestors().nth(2)?.join("BENCH_sweep.json"))
        }
    }
}

fn json_result_line(r: &BenchResult) -> String {
    // Names come from bench sources and contain no characters needing
    // JSON escapes; keep one result per line so merges stay line-based.
    let joules = match r.joules_per_sweep {
        Some(j) => format!("{j:.6}"),
        None => "null".to_string(),
    };
    format!(
        "    {{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\
         \"samples\":{},\"points\":{},\"ns_per_point\":{:.2},\"joules_per_sweep\":{}}}",
        r.name, r.median_ns, r.mean_ns, r.min_ns, r.samples, r.points,
        r.ns_per_point(),
        joules,
    )
}

/// The `"name"` field of one artifact result line, if present.
#[must_use]
pub fn result_line_name(line: &str) -> Option<&str> {
    let rest = line.split("\"name\":\"").nth(1)?;
    rest.split('"').next()
}

/// Merge this process's recorded benchmark results into the JSON
/// artifact (see module docs) and clear the registry. Called by
/// `criterion_main!` after all groups have run; harmless to call with an
/// empty registry.
pub fn write_results() {
    let fresh: Vec<BenchResult> =
        std::mem::take(&mut *RESULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
    if fresh.is_empty() {
        return;
    }
    let Some(path) = results_path() else { return };

    // Keep prior results whose names this run did not refresh. The file
    // is our own line-oriented output, so a line scan is a full parse.
    let mut kept: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            if let Some(name) = result_line_name(line) {
                if !fresh.iter().any(|r| r.name == name) {
                    kept.push(line.trim_end_matches(',').to_string());
                }
            }
        }
    }

    let mut lines: Vec<String> = kept;
    lines.extend(fresh.iter().map(json_result_line));
    let body = format!(
        "{{\n  \"schema\": \"bevra-bench-v1\",\n  \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("criterion shim: could not write {}: {e}", path.display());
    } else {
        println!("bench results merged into {}", path.display());
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a named group runner, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group (generated by `criterion_group!`).
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the named groups, mirroring Criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("BEVRA_BENCH_MS", "20");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn result_lines_carry_their_name() {
        let r = BenchResult {
            name: "kernel_sweep_batched".into(),
            median_ns: 1234.5,
            mean_ns: 1300.0,
            min_ns: 1200.0,
            samples: 30,
            points: 48,
            joules_per_sweep: None,
        };
        let line = json_result_line(&r);
        assert_eq!(result_line_name(&line), Some("kernel_sweep_batched"));
        assert!(line.contains("\"points\":48"));
        assert!(line.contains("\"ns_per_point\":25.72"));
        assert!(line.contains("\"joules_per_sweep\":null"), "no probe → null: {line}");
        let with_energy = BenchResult { joules_per_sweep: Some(0.0425), ..r };
        assert!(
            json_result_line(&with_energy).contains("\"joules_per_sweep\":0.042500"),
            "measured energy serialized"
        );
        assert_eq!(result_line_name("{\"schema\": \"bevra-bench-v1\""), None);
    }

    #[test]
    fn write_results_merges_by_name() {
        let path = std::env::temp_dir().join(format!("bevra-bench-{}.json", std::process::id()));
        let stale = BenchResult {
            name: "merge_stale".into(),
            median_ns: 1.0,
            mean_ns: 1.0,
            min_ns: 1.0,
            samples: 1,
            points: 1,
            joules_per_sweep: None,
        };
        let kept = BenchResult { name: "merge_kept".into(), ..stale.clone() };
        std::fs::write(
            &path,
            format!(
                "{{\n  \"schema\": \"bevra-bench-v1\",\n  \"results\": [\n{},\n{}\n  ]\n}}\n",
                json_result_line(&stale),
                json_result_line(&kept)
            ),
        )
        .expect("seed artifact");

        std::env::set_var("BEVRA_BENCH_JSON", &path);
        RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(BenchResult { name: "merge_stale".into(), median_ns: 9.0, ..stale.clone() });
        write_results();
        std::env::remove_var("BEVRA_BENCH_JSON");

        let merged = std::fs::read_to_string(&path).expect("merged artifact");
        assert!(merged.contains("bevra-bench-v1"));
        assert!(merged.contains("merge_kept"), "unrelated result dropped: {merged}");
        assert_eq!(
            merged.matches("merge_stale").count(),
            1,
            "stale result not replaced: {merged}"
        );
        assert!(merged.contains("\"median_ns\":9.0"), "refresh lost: {merged}");
        let _ = std::fs::remove_file(&path);
    }
}
