//! Cached SIMD-tier detection and the `BEVRA_SIMD` override.
//!
//! Every dispatched slice kernel in this crate ([`crate::fastexp`],
//! [`crate::sum`]) compiles one portable body at several vector widths
//! behind the bit-parity contract (identical IEEE lane arithmetic, never
//! FMA), so *which* tier runs is purely a throughput decision. This module
//! is the single place that decision is made:
//!
//! * [`detected`] probes the CPU once per call (the `std_detect` macros
//!   cache internally) and reports the widest supported [`Level`];
//! * [`resolve`] applies the `BEVRA_SIMD` override to a detected level —
//!   a pure function, unit-testable like the registry's kernel resolver;
//! * [`level`] caches the resolved result process-wide, warning once (via
//!   [`crate::env::warn_malformed_env`]) when the override is garbage or
//!   names a tier the machine cannot run, then degrading to the detected
//!   level.
//!
//! `BEVRA_SIMD` accepts `scalar`, `avx2`, `avx512`, or `neon`
//! (case-insensitive). Requesting a *narrower* tier than detected is always
//! honored — that is how the parity suite and CI force-compare tiers — but
//! a tier the hardware lacks degrades with a warning rather than crashing
//! mid-sweep.

use std::sync::atomic::{AtomicU8, Ordering};

/// The vector-width tiers a dispatched kernel can run at.
///
/// Ordering is by lane width: `Scalar < Neon = Avx2 < Avx512` in lanes
/// (NEON and AVX2 both carry 128/256-bit f64 traffic on their respective
/// architectures; they never coexist on one machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Portable body at the compile-target baseline (SSE2 on x86-64).
    Scalar,
    /// 256-bit AVX2 wrappers (x86-64).
    Avx2,
    /// 512-bit AVX-512F wrappers (x86-64).
    Avx512,
    /// 128-bit NEON wrappers (aarch64).
    Neon,
}

impl Level {
    /// Stable lowercase name, used by `BEVRA_SIMD`, the capability record,
    /// and the ledger schema.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
            Level::Avx512 => "avx512",
            Level::Neon => "neon",
        }
    }

    /// Whether a kernel dispatched at `self` may run when the hardware
    /// supports `detected`. Narrower tiers of the same architecture are
    /// always runnable; `Scalar` runs everywhere.
    #[must_use]
    pub fn runnable_at(self, detected: Level) -> bool {
        match self {
            Level::Scalar => true,
            Level::Avx2 => matches!(detected, Level::Avx2 | Level::Avx512),
            Level::Avx512 => detected == Level::Avx512,
            Level::Neon => detected == Level::Neon,
        }
    }

    fn parse(raw: &str) -> Option<Level> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "scalar" | "none" | "portable" => Some(Level::Scalar),
            "avx2" => Some(Level::Avx2),
            "avx512" | "avx512f" => Some(Level::Avx512),
            "neon" => Some(Level::Neon),
            _ => None,
        }
    }
}

/// Widest tier the running CPU supports. Pure hardware probe — the
/// `BEVRA_SIMD` override is *not* applied here (see [`level`]).
#[must_use]
pub fn detected() -> Level {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return Level::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Level::Avx2;
        }
        Level::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return Level::Neon;
        }
        Level::Scalar
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Level::Scalar
    }
}

/// Apply a `BEVRA_SIMD` request to a detected tier. Pure, so the whole
/// override policy is unit-testable without touching the environment:
///
/// * no request → detected level, no warning;
/// * a known tier the hardware can run → honored;
/// * a known tier the hardware cannot run, or garbage → detected level
///   plus a warning message for the caller to surface once.
#[must_use]
pub fn resolve(request: Option<&str>, detected: Level) -> (Level, Option<String>) {
    match request {
        None => (detected, None),
        Some(raw) => match Level::parse(raw) {
            Some(req) if req.runnable_at(detected) => (req, None),
            Some(req) => (
                detected,
                Some(format!(
                    "requested SIMD tier {:?} not supported by this CPU (detected {:?}); using {:?}",
                    req.as_str(),
                    detected.as_str(),
                    detected.as_str()
                )),
            ),
            None => (
                detected,
                Some(format!(
                    "unknown value {raw:?} (expected scalar|avx2|avx512|neon); using {:?}",
                    detected.as_str()
                )),
            ),
        },
    }
}

/// Cached resolved level: 0 = uninitialized, otherwise `level as u8 + 1`.
static RESOLVED: AtomicU8 = AtomicU8::new(0);

fn encode(level: Level) -> u8 {
    match level {
        Level::Scalar => 1,
        Level::Avx2 => 2,
        Level::Avx512 => 3,
        Level::Neon => 4,
    }
}

fn decode(code: u8) -> Option<Level> {
    match code {
        1 => Some(Level::Scalar),
        2 => Some(Level::Avx2),
        3 => Some(Level::Avx512),
        4 => Some(Level::Neon),
        _ => None,
    }
}

/// The process-wide SIMD tier every dispatched kernel runs at: the detected
/// hardware level, overridden by `BEVRA_SIMD` when set and runnable.
///
/// The environment is consulted once; a malformed or unrunnable override
/// warns once on stderr (the workspace's malformed-environment contract)
/// and degrades to the detected level. Two racing first calls resolve the
/// same value, so the race is benign.
#[must_use]
pub fn level() -> Level {
    if let Some(cached) = decode(RESOLVED.load(Ordering::Relaxed)) {
        return cached;
    }
    let hw = detected();
    let request = std::env::var("BEVRA_SIMD").ok();
    let (resolved, warning) = resolve(request.as_deref(), hw);
    if let Some(detail) = warning {
        crate::env::warn_malformed_env("bevra-num", "BEVRA_SIMD", &detail);
    }
    RESOLVED.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Test hook: pin the resolved level (bypassing detection and
/// `BEVRA_SIMD`). The parity suite uses this to compare tiers inside one
/// process. Panics if `forced` cannot run on this CPU — forcing a tier the
/// hardware lacks would make the next dispatched kernel fault.
#[doc(hidden)]
pub fn force_level(forced: Level) {
    assert!(
        forced.runnable_at(detected()),
        "cannot force SIMD level {:?}: not runnable on this CPU (detected {:?})",
        forced.as_str(),
        detected().as_str()
    );
    RESOLVED.store(encode(forced), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for level in [Level::Scalar, Level::Avx2, Level::Avx512, Level::Neon] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse(" AVX512F "), Some(Level::Avx512));
        assert_eq!(Level::parse("none"), Some(Level::Scalar));
        assert_eq!(Level::parse("sse9"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn resolve_without_request_is_detected_level() {
        for hw in [Level::Scalar, Level::Avx2, Level::Avx512, Level::Neon] {
            assert_eq!(resolve(None, hw), (hw, None));
        }
    }

    #[test]
    fn resolve_honors_runnable_narrowing() {
        assert_eq!(resolve(Some("scalar"), Level::Avx512).0, Level::Scalar);
        assert_eq!(resolve(Some("avx2"), Level::Avx512).0, Level::Avx2);
        assert_eq!(resolve(Some("avx2"), Level::Avx2).0, Level::Avx2);
        assert_eq!(resolve(Some("neon"), Level::Neon).0, Level::Neon);
    }

    #[test]
    fn resolve_degrades_unrunnable_request_with_warning() {
        let (level, warning) = resolve(Some("avx512"), Level::Avx2);
        assert_eq!(level, Level::Avx2);
        assert!(warning.unwrap().contains("not supported"));
        let (level, warning) = resolve(Some("neon"), Level::Avx512);
        assert_eq!(level, Level::Avx512);
        assert!(warning.is_some());
    }

    #[test]
    fn resolve_degrades_garbage_with_warning() {
        let (level, warning) = resolve(Some("turbo9000"), Level::Avx2);
        assert_eq!(level, Level::Avx2);
        assert!(warning.unwrap().contains("unknown value"));
    }

    #[test]
    fn detected_is_stable_and_level_is_runnable() {
        assert_eq!(detected(), detected());
        assert!(level().runnable_at(detected()));
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    #[should_panic(expected = "cannot force SIMD level")]
    fn forcing_neon_on_x86_panics() {
        force_level(Level::Neon);
    }
}
