//! Compensated summation and infinite-series evaluation.
//!
//! The discrete variable-load model sums series like
//! `Σ_k P(k)·k·π(C/k)` whose terms first grow (Poisson mass climbing toward
//! the mean) and then decay. Two hazards matter: floating-point cancellation
//! when accumulating many small terms into a large sum, and premature
//! truncation before the mode of a unimodal term sequence. [`NeumaierSum`]
//! addresses the first, [`sum_series`] the second.

use crate::error::{NumError, NumResult};

/// Neumaier's improved Kahan–Babuška compensated accumulator.
///
/// Tracks a running compensation term so that the final sum has an error of
/// a few ULPs regardless of term ordering or magnitude disparity — important
/// when a Poisson tail of `~10⁻³⁰⁰` terms follows bulk terms of order one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// New accumulator starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term.
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

#[inline(always)]
fn masked_neumaier_step_body(
    scale: f64,
    terms: &[f64],
    mask: &[f64],
    sums: &mut [f64],
    comps: &mut [f64],
) {
    for i in 0..terms.len() {
        // Multiplying by the mask (1.0 live / 0.0 retired) adds an exact
        // +0.0 to retired lanes, which leaves a nonnegative Neumaier
        // accumulator unchanged — no branch needed.
        let v = scale * terms[i] * mask[i];
        let s = sums[i];
        let t = s + v;
        let corr = if s.abs() >= v.abs() { (s - t) + v } else { (v - t) + s };
        comps[i] += corr;
        sums[i] = t;
    }
}

macro_rules! isa_step_wrapper {
    ($modname:ident, $arch:literal, $feat:literal) => {
        #[cfg(target_arch = $arch)]
        mod $modname {
            //! Wider-lane instantiation of the masked step (same pattern
            //! as the `fastexp` wrappers: identical per-element IEEE
            //! arithmetic — no FMA contraction — on wider lanes, so
            //! dispatch is purely a throughput decision and results are
            //! bitwise identical).
            #[target_feature(enable = $feat)]
            pub unsafe fn masked_step(
                scale: f64,
                terms: &[f64],
                mask: &[f64],
                sums: &mut [f64],
                comps: &mut [f64],
            ) {
                super::masked_neumaier_step_body(scale, terms, mask, sums, comps);
            }
        }
    };
}

isa_step_wrapper!(avx2, "x86_64", "avx2");
isa_step_wrapper!(avx512, "x86_64", "avx512f");
isa_step_wrapper!(neon, "aarch64", "neon");

/// One lane-parallel, mask-gated step of Neumaier accumulation:
/// for every `i`, add `scale·terms[i]·mask[i]` to the SoA accumulator
/// `(sums[i], comps[i])` exactly as [`NeumaierSum::add`] would (same
/// operations, same rounding), with the branch expressed as a select so
/// the loop compiles to packed min/max/compare instructions. `mask[i]`
/// must be `1.0` (live) or `0.0` (retired); retired lanes receive an
/// exact `+0.0`, a no-op on the nonnegative accumulators the welfare
/// kernels maintain. Bitwise deterministic on every ISA.
///
/// # Panics
///
/// Panics if the four slices do not all have `terms`'s length.
pub fn masked_neumaier_step(
    scale: f64,
    terms: &[f64],
    mask: &[f64],
    sums: &mut [f64],
    comps: &mut [f64],
) {
    let n = terms.len();
    assert!(
        mask.len() == n && sums.len() == n && comps.len() == n,
        "accumulator slices must match the term slice"
    );
    crate::fastexp::dispatch_simd!(
        masked_step(scale, terms, mask, sums, comps),
        masked_neumaier_step_body(scale, terms, mask, sums, comps)
    );
}

/// Sum `Σ_{k=start}^{∞} term(k)` for a nonnegative term sequence that is
/// eventually decreasing (e.g. unimodal, like Poisson or geometric masses).
///
/// Terms are accumulated with compensation. Truncation happens only after
/// the sequence has been observed to decrease for `GUARD` consecutive terms
/// *and* the current term falls below `tail_tol · max(|sum|, 1)`; this
/// prevents stopping on the rising flank of a unimodal sequence or on an
/// incidental zero (e.g. a rigid utility that is zero until `k` crosses a
/// threshold).
///
/// # Errors
///
/// [`NumError::MaxIterations`] if `max_terms` terms do not suffice,
/// [`NumError::NonFinite`] if a term is NaN/∞.
pub fn sum_series(
    mut term: impl FnMut(u64) -> f64,
    start: u64,
    tail_tol: f64,
    max_terms: u64,
) -> NumResult<f64> {
    const GUARD: u32 = 8;
    let mut acc = NeumaierSum::new();
    let mut prev = f64::INFINITY;
    let mut decreasing_run = 0u32;
    let mut k = start;
    let mut count = 0u64;
    while count < max_terms {
        let t = term(k);
        if !t.is_finite() {
            return Err(NumError::NonFinite { what: "series term", at: k as f64 });
        }
        acc.add(t);
        if t < prev {
            decreasing_run += 1;
        } else {
            decreasing_run = 0;
        }
        let total = acc.total();
        if decreasing_run >= GUARD && t <= tail_tol * total.abs().max(1.0) {
            return Ok(total);
        }
        prev = t;
        k += 1;
        count += 1;
    }
    Err(NumError::MaxIterations { what: "sum_series", iterations: max_terms as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neumaier_beats_naive_on_cancellation() {
        // 1 + 1e100 + 1 - 1e100 = 2 exactly with compensation, 0 naively.
        let mut acc = NeumaierSum::new();
        for v in [1.0, 1e100, 1.0, -1e100] {
            acc.add(v);
        }
        assert_eq!(acc.total(), 2.0);
    }

    #[test]
    fn neumaier_from_iterator() {
        let acc: NeumaierSum = (0..1000).map(|i| i as f64 * 0.001).collect();
        assert!((acc.total() - 499.5).abs() < 1e-9);
    }

    #[test]
    fn masked_step_matches_scalar_neumaier_bitwise() {
        let n = 257; // off the vector width on purpose
        let terms: Vec<f64> = (0..n).map(|i| (i as f64 * 0.731).sin().abs() * 1e-3).collect();
        let mask: Vec<f64> = (0..n).map(|i| if i % 5 == 0 { 0.0 } else { 1.0 }).collect();
        let mut sums = vec![0.0; n];
        let mut comps = vec![0.0; n];
        let mut refs: Vec<NeumaierSum> = vec![NeumaierSum::new(); n];
        for step in 0..40 {
            let scale = 0.9 + step as f64 * 0.01;
            masked_neumaier_step(scale, &terms, &mask, &mut sums, &mut comps);
            for i in 0..n {
                if mask[i] != 0.0 {
                    refs[i].add(scale * terms[i]);
                }
            }
        }
        for i in 0..n {
            assert_eq!(
                (sums[i] + comps[i]).to_bits(),
                refs[i].total().to_bits(),
                "lane {i} diverged from scalar NeumaierSum"
            );
        }
    }

    #[test]
    #[should_panic(expected = "accumulator slices must match")]
    fn masked_step_length_mismatch_panics() {
        let mut sums = [0.0; 2];
        let mut comps = [0.0; 2];
        masked_neumaier_step(1.0, &[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], &mut sums, &mut comps);
    }

    #[test]
    fn geometric_series_sums_to_closed_form() {
        let r: f64 = 0.9;
        let v = sum_series(|k| r.powi(k as i32), 0, 1e-16, 10_000).unwrap();
        assert!((v - 1.0 / (1.0 - r)).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn unimodal_series_not_truncated_on_rise() {
        // Poisson(50) masses: rise until k = 50 then fall. The sum of all
        // masses is 1.
        let nu: f64 = 50.0;
        let v = sum_series(
            |k| {
                let lk = k as f64;
                (lk * nu.ln() - nu - crate::special::ln_gamma(lk + 1.0)).exp()
            },
            0,
            1e-16,
            10_000,
        )
        .unwrap();
        assert!((v - 1.0).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn series_with_leading_zeros_survives() {
        // Zero until k = 20, then geometric: the guard prevents stopping on
        // the leading zeros alone... but a run of 8 equal zeros does not
        // count as decreasing, so we never stop early.
        let v = sum_series(|k| if k < 20 { 0.0 } else { 0.5f64.powi(k as i32 - 20) }, 0, 1e-15, 1000)
            .unwrap();
        assert!((v - 2.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn max_terms_is_enforced() {
        let err = sum_series(|_| 1.0, 0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::MaxIterations { .. }));
    }

    #[test]
    fn nan_term_is_reported() {
        let err = sum_series(|k| if k == 5 { f64::NAN } else { 0.5 }, 0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::NonFinite { .. }));
    }
}
