//! Validated parsing of numeric environment overrides.
//!
//! Several workspace knobs are plain counts read from the environment —
//! `BEVRA_THREADS` (worker threads, `bevra-engine`) and `BEVRA_CHECK_CASES`
//! (property-test cases, `bevra-check`). They share one validation policy:
//! an override must be an integer in `1..=max`, and anything else — `"0"`,
//! negatives, garbage, values beyond the cap — silently degrades to the
//! caller's default instead of panicking or producing an absurd
//! configuration. This module is that policy, written once.

/// Parse a count-valued override. `Some(n)` iff the trimmed string is an
/// integer in `1..=max`; `None` (use the default) otherwise.
///
/// ```
/// use bevra_num::env::parse_bounded_count;
/// assert_eq!(parse_bounded_count(" 8 ", 512), Some(8));
/// assert_eq!(parse_bounded_count("0", 512), None);
/// assert_eq!(parse_bounded_count("-3", 512), None);
/// assert_eq!(parse_bounded_count("513", 512), None);
/// assert_eq!(parse_bounded_count("lots", 512), None);
/// ```
#[must_use]
pub fn parse_bounded_count(raw: &str, max: usize) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if (1..=max).contains(&n) => Some(n),
        _ => None,
    }
}

/// Read the environment variable `name` and parse it with
/// [`parse_bounded_count`], falling back to `default` when the variable is
/// unset or invalid.
#[must_use]
pub fn env_count(name: &str, max: usize, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| parse_bounded_count(&v, max))
        .unwrap_or(default)
}

/// Parse a positive-real-valued override. `Some(x)` iff the trimmed
/// string is a finite float with `0 < x ≤ max`; `None` otherwise.
///
/// ```
/// use bevra_num::env::parse_positive_f64;
/// assert_eq!(parse_positive_f64(" 0.25 ", 1e9), Some(0.25));
/// assert_eq!(parse_positive_f64("0", 1e9), None);
/// assert_eq!(parse_positive_f64("inf", 1e9), None);
/// assert_eq!(parse_positive_f64("nan", 1e9), None);
/// ```
#[must_use]
pub fn parse_positive_f64(raw: &str, max: f64) -> Option<f64> {
    match raw.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 && x <= max => Some(x),
        _ => None,
    }
}

/// Read the environment variable `name` and parse it with
/// [`parse_positive_f64`], falling back to `default` when the variable is
/// unset or invalid.
#[must_use]
pub fn env_positive_f64(name: &str, max: f64, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| parse_positive_f64(&v, max))
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_f64_accepts_and_rejects() {
        assert_eq!(parse_positive_f64("2", 10.0), Some(2.0));
        assert_eq!(parse_positive_f64("1e-6", 10.0), Some(1e-6));
        for raw in ["0", "-1.5", "", "abc", "inf", "-inf", "nan", "11"] {
            assert_eq!(parse_positive_f64(raw, 10.0), None, "raw = {raw:?}");
        }
    }

    #[test]
    fn accepts_in_range_integers() {
        assert_eq!(parse_bounded_count("1", 16), Some(1));
        assert_eq!(parse_bounded_count("16", 16), Some(16));
        assert_eq!(parse_bounded_count("  5\n", 16), Some(5));
    }

    #[test]
    fn rejects_zero_negative_garbage_and_huge() {
        for raw in ["0", "-1", "", "  ", "abc", "3.5", "17", "99999999999999999999"] {
            assert_eq!(parse_bounded_count(raw, 16), None, "raw = {raw:?}");
        }
    }

    #[test]
    fn env_count_falls_back_on_missing_variable() {
        assert_eq!(env_count("BEVRA_TEST_UNSET_VARIABLE_XYZ", 16, 7), 7);
    }
}
