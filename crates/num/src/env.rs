//! Validated parsing of numeric environment overrides.
//!
//! Several workspace knobs are plain counts read from the environment —
//! `BEVRA_THREADS` (worker threads, `bevra-engine`) and `BEVRA_CHECK_CASES`
//! (property-test cases, `bevra-check`). They share one validation policy:
//! an override must be an integer in `1..=max`, and anything else — `"0"`,
//! negatives, garbage, values beyond the cap — silently degrades to the
//! caller's default instead of panicking or producing an absurd
//! configuration. This module is that policy, written once.

/// Parse a count-valued override. `Some(n)` iff the trimmed string is an
/// integer in `1..=max`; `None` (use the default) otherwise.
///
/// ```
/// use bevra_num::env::parse_bounded_count;
/// assert_eq!(parse_bounded_count(" 8 ", 512), Some(8));
/// assert_eq!(parse_bounded_count("0", 512), None);
/// assert_eq!(parse_bounded_count("-3", 512), None);
/// assert_eq!(parse_bounded_count("513", 512), None);
/// assert_eq!(parse_bounded_count("lots", 512), None);
/// ```
#[must_use]
pub fn parse_bounded_count(raw: &str, max: usize) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if (1..=max).contains(&n) => Some(n),
        _ => None,
    }
}

/// Read the environment variable `name` and parse it with
/// [`parse_bounded_count`], falling back to `default` when the variable is
/// unset or invalid.
#[must_use]
pub fn env_count(name: &str, max: usize, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| parse_bounded_count(&v, max))
        .unwrap_or(default)
}

/// Parse a positive-real-valued override. `Some(x)` iff the trimmed
/// string is a finite float with `0 < x ≤ max`; `None` otherwise.
///
/// ```
/// use bevra_num::env::parse_positive_f64;
/// assert_eq!(parse_positive_f64(" 0.25 ", 1e9), Some(0.25));
/// assert_eq!(parse_positive_f64("0", 1e9), None);
/// assert_eq!(parse_positive_f64("inf", 1e9), None);
/// assert_eq!(parse_positive_f64("nan", 1e9), None);
/// ```
#[must_use]
pub fn parse_positive_f64(raw: &str, max: f64) -> Option<f64> {
    match raw.trim().parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 && x <= max => Some(x),
        _ => None,
    }
}

/// Read the environment variable `name` and parse it with
/// [`parse_positive_f64`], falling back to `default` when the variable is
/// unset or invalid.
#[must_use]
pub fn env_positive_f64(name: &str, max: f64, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| parse_positive_f64(&v, max))
        .unwrap_or(default)
}

/// Upper bound accepted for millisecond-valued overrides
/// (`BEVRA_DEADLINE_MS` and the `RetryPolicy` grammar): about 11.5 days.
/// Larger values are always a typo, never a deadline.
pub const MAX_MILLIS: u64 = 1_000_000_000;

/// Parse a millisecond-valued override. `Some(ms)` iff the trimmed string
/// is an integer in `1..=`[`MAX_MILLIS`]; `None` otherwise.
///
/// ```
/// use bevra_num::env::parse_millis;
/// assert_eq!(parse_millis(" 250 "), Some(250));
/// assert_eq!(parse_millis("0"), None);
/// assert_eq!(parse_millis("1000000000001"), None);
/// assert_eq!(parse_millis("soon"), None);
/// ```
#[must_use]
pub fn parse_millis(raw: &str) -> Option<u64> {
    match raw.trim().parse::<u64>() {
        Ok(ms) if (1..=MAX_MILLIS).contains(&ms) => Some(ms),
        _ => None,
    }
}

/// The workspace's malformed-environment contract, shared by
/// `BEVRA_FAULTS`, `BEVRA_RETRY`, `BEVRA_DEADLINE_MS` and
/// `BEVRA_CHECKPOINT`: a value that fails to parse is reported **once**
/// per `(component, variable)` pair on stderr and then ignored — a typo'd
/// knob degrades to the default, it never aborts a run and never spams a
/// sweep's worth of warnings.
pub fn warn_malformed_env(component: &str, var: &str, detail: &str) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static WARNED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let key = format!("{component}\u{1f}{var}");
    let mut guard = WARNED.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let seen = guard.get_or_insert_with(HashSet::new);
    if seen.insert(key) {
        eprintln!("{component}: ignoring malformed {var}: {detail}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_f64_accepts_and_rejects() {
        assert_eq!(parse_positive_f64("2", 10.0), Some(2.0));
        assert_eq!(parse_positive_f64("1e-6", 10.0), Some(1e-6));
        for raw in ["0", "-1.5", "", "abc", "inf", "-inf", "nan", "11"] {
            assert_eq!(parse_positive_f64(raw, 10.0), None, "raw = {raw:?}");
        }
    }

    #[test]
    fn accepts_in_range_integers() {
        assert_eq!(parse_bounded_count("1", 16), Some(1));
        assert_eq!(parse_bounded_count("16", 16), Some(16));
        assert_eq!(parse_bounded_count("  5\n", 16), Some(5));
    }

    #[test]
    fn rejects_zero_negative_garbage_and_huge() {
        for raw in ["0", "-1", "", "  ", "abc", "3.5", "17", "99999999999999999999"] {
            assert_eq!(parse_bounded_count(raw, 16), None, "raw = {raw:?}");
        }
    }

    #[test]
    fn env_count_falls_back_on_missing_variable() {
        assert_eq!(env_count("BEVRA_TEST_UNSET_VARIABLE_XYZ", 16, 7), 7);
    }

    #[test]
    fn millis_accepts_in_range_and_rejects_empty_garbage_huge() {
        assert_eq!(parse_millis("1"), Some(1));
        assert_eq!(parse_millis(" 30000 "), Some(30_000));
        assert_eq!(parse_millis(&MAX_MILLIS.to_string()), Some(MAX_MILLIS));
        for raw in ["0", "-5", "", "   ", "abc", "1.5", "1e3", "1000000001", "99999999999999999999"]
        {
            assert_eq!(parse_millis(raw), None, "raw = {raw:?}");
        }
    }

    #[test]
    fn warn_malformed_env_never_panics_and_dedupes() {
        // Observable behavior is one stderr line per (component, var); here
        // we only assert it is callable repeatedly without side effects on
        // parsing state.
        for _ in 0..3 {
            warn_malformed_env("bevra-test", "BEVRA_TEST_VAR", "garbage");
        }
    }
}
