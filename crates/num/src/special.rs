//! Special functions: `ln Γ` and the Lambert `W` function.
//!
//! `ln_gamma` underlies numerically stable Poisson probabilities
//! (`P(k) = exp(k ln ν − ν − ln Γ(k+1))`). The two real branches of Lambert
//! `W` solve the welfare first-order conditions of §4: for exponential loads
//! the optimal best-effort capacity satisfies `p = βC e^{−βC}`, i.e.
//! `βC = −W(−p)` with the economically relevant (largest-capacity) solution
//! on the `W₋₁` branch.

use crate::error::{NumError, NumResult};

/// Lanczos coefficients (g = 7, n = 9), standard double-precision set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_81,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// Lanczos approximation, accurate to ~1e-13 relative over the positive
/// reals. Returns `+∞` for `x = 0` (pole) and NaN for negative input, which
/// this workspace never produces.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    if x <= 0.0 {
        return if x == 0.0 { f64::INFINITY } else { f64::NAN };
    }
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    let half_ln_2pi = 0.918_938_533_204_672_7; // ln(2π)/2
    half_ln_2pi + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Principal branch `W₀` of the Lambert W function: the solution `w ≥ −1` of
/// `w e^w = x`, defined for `x ≥ −1/e`.
///
/// Halley iteration from a branch-appropriate initial guess; converges to
/// machine precision in a handful of steps.
///
/// # Errors
///
/// [`NumError::InvalidInput`] for `x < −1/e` (no real solution).
pub fn lambert_w0(x: f64) -> NumResult<f64> {
    let inv_e = (-1.0f64).exp();
    if x < -inv_e - 1e-15 {
        return Err(NumError::InvalidInput { what: "lambert_w0 requires x >= -1/e" });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    let x = x.max(-inv_e);
    // Initial guess: series near the branch point, log asymptote for large x.
    let mut w = if x < -0.25 {
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).sqrt();
        -1.0 + p - p * p / 3.0
    } else if x < 1.0 {
        // w ≈ x(1 − x + 1.5x²) near zero.
        x * (1.0 - x + 1.5 * x * x)
    } else {
        let l = x.ln();
        l - l.ln().max(0.0)
    };
    halley(x, &mut w)?;
    Ok(w)
}

/// Secondary real branch `W₋₁`: the solution `w ≤ −1` of `w e^w = x`,
/// defined for `−1/e ≤ x < 0`.
///
/// # Errors
///
/// [`NumError::InvalidInput`] outside the domain.
pub fn lambert_wm1(x: f64) -> NumResult<f64> {
    let inv_e = (-1.0f64).exp();
    if !(x < 0.0) || x < -inv_e - 1e-15 {
        return Err(NumError::InvalidInput { what: "lambert_wm1 requires -1/e <= x < 0" });
    }
    let x = x.max(-inv_e);
    // Initial guess: near the branch point use the square-root expansion,
    // near zero use the double-log asymptote w ≈ ln(−x) − ln(−ln(−x)).
    let mut w = if x > -0.25 {
        let l1 = (-x).ln();
        let l2 = (-l1).ln();
        l1 - l2
    } else {
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).sqrt();
        -1.0 - p - p * p / 3.0
    };
    halley(x, &mut w)?;
    Ok(w)
}

/// Halley's iteration on `f(w) = w e^w − x`, quadratically-cubically
/// convergent; mutates `w` in place.
fn halley(x: f64, w: &mut f64) -> NumResult<()> {
    for _ in 0..64 {
        let ew = w.exp();
        let f = *w * ew - x;
        if f == 0.0 {
            return Ok(());
        }
        let denom = ew * (*w + 1.0) - (*w + 2.0) * f / (2.0 * *w + 2.0);
        let dw = f / denom;
        if !dw.is_finite() {
            // Derivative vanishes at the branch point w = −1; the current
            // iterate is as good as Halley can make it there.
            break;
        }
        *w -= dw;
        if dw.abs() <= 1e-15 * (1.0 + w.abs()) {
            return Ok(());
        }
    }
    // Accept the best iterate if the residual is already tiny (happens at
    // the branch point where the derivative vanishes).
    let residual = *w * w.exp() - x;
    if residual.abs() <= 1e-10 * (1.0 + x.abs()) {
        Ok(())
    } else {
        Err(NumError::MaxIterations { what: "lambert halley", iterations: 64 })
    }
}

/// Erlang-B blocking probability: an M/M/c/c loss system with `servers`
/// circuits and `offered` erlangs blocks a fraction
///
/// ```text
/// B(c, a) = (a^c/c!) / Σ_{j=0}^{c} a^j/j!
/// ```
///
/// of arrivals. Computed by the standard stable recurrence
/// `B_0 = 1, B_j = a·B_{j−1}/(j + a·B_{j−1})`. This is the telephony
/// ancestor of the paper's reservation blocking; the simulator's
/// admission-controlled runs are validated against it.
///
/// # Panics
///
/// Panics on negative offered load.
#[must_use]
pub fn erlang_b(servers: u64, offered: f64) -> f64 {
    assert!(offered >= 0.0, "offered load must be nonnegative");
    if offered == 0.0 {
        return 0.0;
    }
    let mut b = 1.0f64;
    for j in 1..=servers {
        b = offered * b / (j as f64 + offered * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_reference_values() {
        // Classic engineering-table values.
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        // B(2, 1) = (1/2)/(1 + 1 + 1/2) = 0.2.
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        // 10 circuits at 5 erlangs ≈ 1.84% blocking (standard table).
        assert!((erlang_b(10, 5.0) - 0.018_385).abs() < 1e-5, "{}", erlang_b(10, 5.0));
        // Heavily overloaded: blocking → 1 − c/a.
        assert!((erlang_b(10, 100.0) - (1.0 - 10.0 / 100.0)).abs() < 0.01);
    }

    #[test]
    fn erlang_b_monotonicity() {
        // Decreasing in servers, increasing in load.
        assert!(erlang_b(20, 15.0) < erlang_b(15, 15.0));
        assert!(erlang_b(20, 18.0) > erlang_b(20, 12.0));
        assert_eq!(erlang_b(5, 0.0), 0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for (n, fact) in [(1u32, 1.0f64), (2, 1.0), (3, 2.0), (5, 24.0), (10, 362_880.0)] {
            let got = ln_gamma(f64::from(n));
            assert!((got - fact.ln()).abs() < 1e-12, "Γ({n}): {got} vs {}", fact.ln());
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let got = ln_gamma(0.5);
        assert!((got - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence_large_argument() {
        // Γ(x+1) = x·Γ(x) must hold to near machine precision everywhere,
        // including large arguments where Stirling dominates.
        for x in [0.7, 3.3, 42.0, 1000.5, 12345.25] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() <= 1e-11 * (1.0 + lhs.abs()), "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn ln_gamma_stirling_asymptote() {
        // For large x, lnΓ(x) ≈ (x−1/2)ln x − x + ln(2π)/2 + 1/(12x).
        let x = 1000.5f64;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!((ln_gamma(x) - stirling).abs() < 1e-7, "got {}", ln_gamma(x));
    }

    #[test]
    fn w0_roundtrip() {
        for x in [-0.3, -0.1, 0.1, 0.5, 1.0, 2.0, 10.0, 1e6] {
            let w = lambert_w0(x).unwrap();
            assert!((w * w.exp() - x).abs() <= 1e-9 * (1.0 + x.abs()), "x={x} w={w}");
        }
    }

    #[test]
    fn wm1_roundtrip() {
        for x in [-0.367, -0.3, -0.1, -0.01, -1e-6, -1e-12] {
            let w = lambert_wm1(x).unwrap();
            assert!((w * w.exp() - x).abs() <= 1e-9 * (1.0 + x.abs()), "x={x} w={w}");
            assert!(w <= -1.0 + 1e-6, "wm1 branch violated: x={x} w={w}");
        }
    }

    #[test]
    fn branches_agree_at_branch_point() {
        let x = -(-1.0f64).exp();
        let w0 = lambert_w0(x).unwrap();
        let wm1 = lambert_wm1(x).unwrap();
        assert!((w0 + 1.0).abs() < 1e-5, "w0 at branch point: {w0}");
        assert!((wm1 + 1.0).abs() < 1e-5, "wm1 at branch point: {wm1}");
    }

    #[test]
    fn domains_are_enforced() {
        assert!(lambert_w0(-1.0).is_err());
        assert!(lambert_wm1(0.1).is_err());
        assert!(lambert_wm1(-1.0).is_err());
    }

    #[test]
    fn welfare_capacity_uses_wm1() {
        // p = βC e^{−βC} with β = 0.01: the larger root βC = −W₋₁(−p).
        let beta = 0.01;
        let p = 0.05;
        let bc = -lambert_wm1(-p).unwrap();
        let c = bc / beta;
        assert!((beta * c * (-beta * c).exp() - p).abs() < 1e-12);
        assert!(c > 1.0 / beta, "must be the large-capacity branch");
    }
}
