//! One-dimensional maximization.
//!
//! Two places in the paper's analysis need a 1-D maximizer:
//!
//! * the admission threshold `k_max(C) = argmax_k k·π(C/k)` in its continuous
//!   relaxation, and
//! * the welfare-optimal capacity `C(p) = argmax_C V(C) − pC` of the
//!   variable-capacity model (§4).
//!
//! Both objectives are unimodal on the region of interest, so golden-section
//! search after a doubling bracket is sufficient and robust.

use crate::error::{NumError, NumResult};

/// Location and value of a maximum found by [`golden_section_max`] or
/// [`maximize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Maximum {
    /// Abscissa of the maximum.
    pub x: f64,
    /// Objective value at [`Maximum::x`].
    pub value: f64,
}

/// Inverse golden ratio, `(√5 − 1)/2`.
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Golden-section search for the maximum of a unimodal `f` on `[lo, hi]`.
///
/// Shrinks the interval by the golden ratio each step; terminates when the
/// interval is shorter than `tol` (absolute, plus a relative epsilon guard).
/// If `f` is not unimodal the result is a local maximum within the interval.
///
/// # Errors
///
/// [`NumError::InvalidInput`] if `lo > hi` or `tol <= 0`.
pub fn golden_section_max(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> NumResult<Maximum> {
    if lo > hi {
        return Err(NumError::InvalidInput { what: "golden_section_max requires lo <= hi" });
    }
    if !(tol > 0.0) {
        return Err(NumError::InvalidInput { what: "golden_section_max requires tol > 0" });
    }
    let mut a = lo;
    let mut b = hi;
    let mut x1 = b - INV_PHI * (b - a);
    let mut x2 = a + INV_PHI * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    // 400 iterations shrink any representable interval below f64 resolution.
    for _ in 0..400 {
        if (b - a).abs() <= tol + f64::EPSILON * (a.abs() + b.abs()) {
            break;
        }
        if f1 < f2 {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + INV_PHI * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - INV_PHI * (b - a);
            f1 = f(x1);
        }
    }
    let x = 0.5 * (a + b);
    // Report the best of the evaluated points (interior probes included) so
    // the returned value never under-reports the maximum.
    let fx = f(x);
    let (bx, bf) = [(x, fx), (x1, f1), (x2, f2)]
        .into_iter()
        .max_by(|p, q| p.1.total_cmp(&q.1))
        .unwrap_or((x, fx)); // literal 3-element array: the fallback never fires
    Ok(Maximum { x: bx, value: bf })
}

/// Starting from `x0`, expand upward with doubling steps until the objective
/// stops improving, returning `(a, b)` guaranteed to contain the maximum of a
/// unimodal function that initially increases at `x0`.
///
/// If the function is already decreasing at `x0 + initial_step`, the bracket
/// degenerates to `(x0, x0 + initial_step)`, which is still valid for
/// golden-section search.
///
/// # Errors
///
/// [`NumError::NoBracket`] if the objective is still increasing at `max_hi`
/// (the maximum lies beyond the allowed search range).
pub fn bracket_maximum(
    mut f: impl FnMut(f64) -> f64,
    x0: f64,
    initial_step: f64,
    max_hi: f64,
) -> NumResult<(f64, f64)> {
    if !(initial_step > 0.0) {
        return Err(NumError::InvalidInput { what: "initial_step must be > 0" });
    }
    let mut prev_x = x0;
    let mut prev_f = f(x0);
    let mut step = initial_step;
    let mut lo = x0;
    loop {
        let x = (prev_x + step).min(max_hi);
        let fx = f(x);
        if fx < prev_f {
            // Decreasing: the max is in [lo, x].
            return Ok((lo, x));
        }
        if x >= max_hi {
            return Err(NumError::NoBracket { what: "maximum before max_hi" });
        }
        lo = prev_x;
        prev_x = x;
        prev_f = fx;
        step *= 2.0;
    }
}

/// Convenience wrapper: bracket from `x0` then refine by golden-section.
///
/// Intended for unimodal objectives like welfare `V(C) − pC` over capacity.
///
/// # Errors
///
/// Propagates bracketing or search failures.
pub fn maximize(
    mut f: impl FnMut(f64) -> f64,
    x0: f64,
    initial_step: f64,
    max_hi: f64,
    tol: f64,
) -> NumResult<Maximum> {
    let (a, b) = bracket_maximum(&mut f, x0, initial_step, max_hi)?;
    golden_section_max(f, a, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_parabola_peak() {
        let m = golden_section_max(|x| -(x - 3.0) * (x - 3.0) + 7.0, 0.0, 10.0, 1e-10).unwrap();
        assert!((m.x - 3.0).abs() < 1e-7);
        assert!((m.value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn golden_degenerate_interval() {
        let m = golden_section_max(|x| x, 2.0, 2.0, 1e-10).unwrap();
        assert_eq!(m.x, 2.0);
        assert_eq!(m.value, 2.0);
    }

    #[test]
    fn bracket_then_refine_welfare_like_objective() {
        // V(C) = 1 - exp(-C), p = 0.1: optimum at C = ln(1/p) = ln 10.
        let p = 0.1;
        let m = maximize(|c: f64| 1.0 - (-c).exp() - p * c, 0.0, 0.5, 1e6, 1e-10).unwrap();
        assert!((m.x - (1.0f64 / p).ln()).abs() < 1e-6, "got {}", m.x);
    }

    #[test]
    fn bracket_reports_unbounded_objective() {
        let err = bracket_maximum(|x| x, 0.0, 1.0, 100.0).unwrap_err();
        assert!(matches!(err, NumError::NoBracket { .. }));
    }

    #[test]
    fn bracket_immediate_decrease() {
        let (a, b) = bracket_maximum(|x| -x, 0.0, 1.0, 100.0).unwrap();
        assert_eq!((a, b), (0.0, 1.0));
        let m = golden_section_max(|x| -x, a, b, 1e-10).unwrap();
        assert!(m.x < 1e-6);
    }

    #[test]
    fn golden_rejects_bad_inputs() {
        assert!(golden_section_max(|x| x, 1.0, 0.0, 1e-10).is_err());
        assert!(golden_section_max(|x| x, 0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn maximize_peak_far_from_origin() {
        let m = maximize(|x: f64| -((x - 512.0) / 100.0).powi(2), 0.0, 1.0, 1e9, 1e-8).unwrap();
        assert!((m.x - 512.0).abs() < 1e-4);
    }
}
