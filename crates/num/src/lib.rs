//! Numerical substrate for the `bevra` workspace.
//!
//! The analysis in Breslau & Shenker's *"Best-Effort versus Reservations"*
//! (SIGCOMM 1998) needs a modest but reliable numerical toolkit: bracketed
//! root finding (for the bandwidth gap `Δ(C)` and the equalizing price ratio
//! `γ(p)`), one-dimensional maximization (for `k_max(C)` and the welfare
//! capacity `C(p)`), numerical quadrature including semi-infinite and
//! endpoint-singular integrals (the continuum model), careful series
//! summation (the discrete model), and a few special functions (`ln Γ` for
//! Poisson probabilities, Lambert `W` for the closed-form welfare optima).
//!
//! The Rust numeric ecosystem is thin, so this crate implements everything
//! from scratch with the same design goals as the networking guides this
//! repository follows: simplicity and robustness over cleverness, exhaustive
//! documentation, and no macro or type tricks.
//!
//! All routines operate on `f64`, are deterministic, and return
//! [`error::NumError`] instead of panicking on bad input.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0` they also reject NaN, which is exactly the precondition the
// routines need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod env;
pub mod error;
pub mod fastexp;
pub mod fixed_point;
pub mod int_search;
pub mod optimize;
pub mod quad;
pub mod roots;
pub mod simd;
pub mod special;
pub mod sum;

pub use env::{env_count, parse_bounded_count};
pub use error::{NumError, NumResult};
pub use fastexp::{
    kspan_total, one_minus_exp_neg, one_minus_exp_neg_adaptive_grid,
    one_minus_exp_neg_adaptive_kspan, one_minus_exp_neg_adaptive_slice,
    one_minus_exp_neg_scaled_slice, one_minus_exp_neg_slice, KSPAN_ACCS,
};
pub use fixed_point::fixed_point;
pub use int_search::{argmax_unimodal_u64, first_true_u64};
pub use optimize::{bracket_maximum, golden_section_max, maximize, Maximum};
pub use quad::{integrate, integrate_to_inf, tanh_sinh};
pub use roots::{bisect, brent, expand_bracket_up, Bracket};
pub use special::{erlang_b, lambert_w0, lambert_wm1, ln_gamma};
pub use sum::{masked_neumaier_step, sum_series, NeumaierSum};

/// Default absolute/relative tolerance used across the workspace when a
/// caller does not specify one. Chosen so that figure-level quantities are
/// accurate far beyond plotting resolution while keeping iteration counts
/// small.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Machine-epsilon-scaled comparison: `a` and `b` agree to within `tol`
/// absolutely or relatively, whichever is looser.
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
    }
}
