//! Bracketed one-dimensional root finding.
//!
//! The analysis layer uses these to invert monotone functions: the bandwidth
//! gap `Δ(C)` solves `B(C + Δ) = R(C)` with `B` nondecreasing, and the
//! equalizing price ratio `γ(p)` solves `W_R(p̂) = W_B(p)` with `W_R`
//! nonincreasing. Both are textbook bracketed problems, so we provide plain
//! bisection (always safe, used as the ablation baseline) and Brent's method
//! (the default: inverse quadratic interpolation with a bisection fallback).

use crate::error::{NumError, NumResult};

/// An interval `[lo, hi]` whose endpoints have opposite function signs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// `f(lo)`.
    pub f_lo: f64,
    /// `f(hi)`.
    pub f_hi: f64,
}

/// Expand an interval upward from `lo` by repeated doubling of the step until
/// `f` changes sign, returning the resulting [`Bracket`].
///
/// `f(lo)` must be finite. This is used e.g. to bracket `Δ(C)`: start at
/// `Δ = 0` where `B(C) − R(C) ≤ 0` and grow until `B(C + Δ) ≥ R(C)`.
///
/// # Errors
///
/// [`NumError::NoBracket`] if no sign change is found before `max_hi`,
/// [`NumError::NonFinite`] if `f` returns NaN.
pub fn expand_bracket_up(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    initial_step: f64,
    max_hi: f64,
) -> NumResult<Bracket> {
    if !(initial_step > 0.0) {
        return Err(NumError::InvalidInput { what: "initial_step must be > 0" });
    }
    let f_lo = f(lo);
    if f_lo.is_nan() {
        return Err(NumError::NonFinite { what: "expand_bracket_up", at: lo });
    }
    if f_lo == 0.0 {
        return Ok(Bracket { lo, hi: lo, f_lo, f_hi: f_lo });
    }
    let mut step = initial_step;
    let mut prev = lo;
    let mut f_prev = f_lo;
    loop {
        let hi = (prev + step).min(max_hi);
        let f_hi = f(hi);
        if f_hi.is_nan() {
            return Err(NumError::NonFinite { what: "expand_bracket_up", at: hi });
        }
        if f_hi == 0.0 || (f_prev < 0.0) != (f_hi < 0.0) {
            return Ok(Bracket { lo: prev, hi, f_lo: f_prev, f_hi });
        }
        if hi >= max_hi {
            return Err(NumError::NoBracket { what: "sign change before max_hi" });
        }
        prev = hi;
        f_prev = f_hi;
        step *= 2.0;
    }
}

/// Bisection on a bracketing interval. Robust and used as the ablation
/// baseline against [`brent`].
///
/// # Errors
///
/// [`NumError::InvalidInput`] if the endpoints do not bracket a sign change,
/// [`NumError::MaxIterations`] if the interval fails to shrink below `tol`
/// (practically unreachable: 200 halvings cover any finite interval).
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> NumResult<f64> {
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if (f_lo < 0.0) == (f_hi < 0.0) {
        return Err(NumError::InvalidInput { what: "bisect endpoints must bracket a root" });
    }
    const MAX_ITER: usize = 200;
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        if (hi - lo).abs() <= tol + f64::EPSILON * mid.abs() {
            return Ok(mid);
        }
        let f_mid = f(mid);
        if f_mid == 0.0 {
            return Ok(mid);
        }
        if (f_mid < 0.0) == (f_lo < 0.0) {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(NumError::MaxIterations { what: "bisect", iterations: MAX_ITER })
}

/// Brent's method: root of `f` on a bracketing interval `[lo, hi]`.
///
/// Combines inverse quadratic interpolation, the secant rule, and bisection;
/// converges superlinearly on smooth functions while never leaving the
/// bracket. This is the standard derivative-free workhorse (Brent 1973).
///
/// # Errors
///
/// [`NumError::InvalidInput`] if the endpoints do not bracket a sign change,
/// [`NumError::MaxIterations`] if convergence is not reached in 200 steps.
pub fn brent(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> NumResult<f64> {
    // Fault-injection site: a `numerr:num/roots/brent` rule forces the
    // non-convergence path (e.g. the bandwidth-gap solver's NaN fallback).
    if bevra_faults::forced_numerr("num/roots/brent", lo.to_bits() ^ hi.to_bits()) {
        return Err(NumError::MaxIterations { what: "brent (fault-injected)", iterations: 0 });
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if (fa < 0.0) == (fb < 0.0) {
        return Err(NumError::InvalidInput { what: "brent endpoints must bracket a root" });
    }
    // `c` is the previous iterate; `d`/`e` track the last two step sizes so
    // interpolation can be rejected when it stops making progress.
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    const MAX_ITER: usize = 200;
    for _ in 0..MAX_ITER {
        if fb.abs() > fc.abs() {
            // Ensure b is the best approximation, with c on the other side.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation (secant if a == c).
            let s = fb / fa;
            let (mut p, mut q) = if a == c {
                (2.0 * xm * s, 1.0 - s)
            } else {
                let q = fa / fc;
                let r = fb / fc;
                (
                    s * (2.0 * xm * q * (q - r) - (b - a) * (r - 1.0)),
                    (q - 1.0) * (r - 1.0) * (s - 1.0),
                )
            };
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                // Interpolation accepted.
                e = d;
                d = p / q;
            } else {
                // Fall back to bisection.
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        b += if d.abs() > tol1 { d } else { tol1.copysign(xm) };
        fb = f(b);
        if (fb > 0.0) == (fc > 0.0) {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(NumError::MaxIterations { what: "brent", iterations: MAX_ITER })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2() {
        let root = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_matches_bisect_on_transcendental() {
        // The Δ(C) equation for exponential loads: βΔ = ln(1 + β(C + Δ)).
        let beta = 0.01;
        let c = 400.0;
        let f = |d: f64| beta * d - (1.0 + beta * (c + d)).ln();
        let b1 = bisect(f, 0.0, 10_000.0, 1e-10).unwrap();
        let b2 = brent(f, 0.0, 10_000.0, 1e-12).unwrap();
        assert!((b1 - b2).abs() < 1e-6, "bisect {b1} vs brent {b2}");
    }

    #[test]
    fn brent_rejects_non_bracketing_interval() {
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-10).unwrap_err();
        assert!(matches!(err, NumError::InvalidInput { .. }));
    }

    #[test]
    fn bisect_rejects_non_bracketing_interval() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-10).unwrap_err();
        assert!(matches!(err, NumError::InvalidInput { .. }));
    }

    #[test]
    fn expand_bracket_up_grows_until_sign_change() {
        let br = expand_bracket_up(|x| x - 1000.0, 0.0, 1.0, 1e9).unwrap();
        assert!(br.f_lo < 0.0 && br.f_hi >= 0.0);
        assert!(br.lo <= 1000.0 && br.hi >= 1000.0);
        let root = brent(|x| x - 1000.0, br.lo, br.hi, 1e-12).unwrap();
        assert!((root - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn expand_bracket_up_reports_failure() {
        let err = expand_bracket_up(|_| -1.0, 0.0, 1.0, 100.0).unwrap_err();
        assert!(matches!(err, NumError::NoBracket { .. }));
    }

    #[test]
    fn expand_bracket_zero_at_start() {
        let br = expand_bracket_up(|x| x, 0.0, 1.0, 10.0).unwrap();
        assert_eq!(br.lo, 0.0);
        assert_eq!(br.hi, 0.0);
    }

    #[test]
    fn brent_endpoint_root() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn brent_handles_steep_function() {
        // f rises through zero extremely steeply; Brent must stay bracketed.
        let root = brent(|x| (1e8 * (x - 0.3)).tanh(), 0.0, 1.0, 1e-13).unwrap();
        assert!((root - 0.3).abs() < 1e-7);
    }
}
