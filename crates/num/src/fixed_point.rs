//! Damped fixed-point iteration.
//!
//! The retrying extension (paper §5.2) inflates the offered load until it is
//! self-consistent: the effective mean load `L̂` satisfies
//! `L̂ = L·(1 + D(L̂))` where `D` is the expected number of retries at load
//! `L̂`. The map is a contraction in the regimes of interest; damping keeps
//! it stable near heavy blocking where the plain iteration can oscillate.

use crate::error::{NumError, NumResult};

/// Iterate `x ← (1 − damping)·x + damping·g(x)` from `x0` until successive
/// iterates agree to `tol` (relative), or fail after `max_iter` steps.
///
/// `damping = 1` is the undamped Picard iteration; `0 < damping < 1` trades
/// speed for stability.
///
/// # Errors
///
/// [`NumError::InvalidInput`] for a damping factor outside `(0, 1]`,
/// [`NumError::NonFinite`] if `g` produces NaN/∞,
/// [`NumError::MaxIterations`] if convergence is not reached.
pub fn fixed_point(
    mut g: impl FnMut(f64) -> f64,
    x0: f64,
    damping: f64,
    tol: f64,
    max_iter: usize,
) -> NumResult<f64> {
    if !(damping > 0.0 && damping <= 1.0) {
        return Err(NumError::InvalidInput { what: "damping must be in (0, 1]" });
    }
    let mut x = x0;
    for _ in 0..max_iter {
        let gx = g(x);
        if !gx.is_finite() {
            return Err(NumError::NonFinite { what: "fixed point map", at: x });
        }
        let next = (1.0 - damping) * x + damping * gx;
        if (next - x).abs() <= tol * (1.0 + x.abs()) {
            return Ok(next);
        }
        x = next;
    }
    Err(NumError::MaxIterations { what: "fixed_point", iterations: max_iter })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_cosine_fixed_point() {
        // The Dottie number: x = cos x ≈ 0.739085.
        let x = fixed_point(|x| x.cos(), 1.0, 1.0, 1e-12, 1000).unwrap();
        assert!((x - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn damping_stabilizes_oscillatory_map() {
        // g(x) = 2.8(1 - x)x (logistic) has an unstable-ish approach
        // undamped; with damping 0.5 it converges to 1 - 1/2.8.
        let x = fixed_point(|x| 2.8 * (1.0 - x) * x, 0.3, 0.5, 1e-12, 10_000).unwrap();
        assert!((x - (1.0 - 1.0 / 2.8)).abs() < 1e-8, "got {x}");
    }

    #[test]
    fn load_inflation_shape() {
        // L̂ = L (1 + θ(L̂)) with θ growing in load: converges above L.
        let l = 100.0;
        let theta = |lh: f64| 0.1 * (lh / 200.0).min(1.0);
        let lh = fixed_point(|x| l * (1.0 + theta(x)), l, 1.0, 1e-12, 1000).unwrap();
        assert!(lh > l);
        assert!((lh - l * (1.0 + theta(lh))).abs() < 1e-8);
    }

    #[test]
    fn invalid_damping_rejected() {
        assert!(fixed_point(|x| x, 0.0, 0.0, 1e-10, 10).is_err());
        assert!(fixed_point(|x| x, 0.0, 1.5, 1e-10, 10).is_err());
    }

    #[test]
    fn divergence_is_reported() {
        let err = fixed_point(|x| 2.0 * x + 1.0, 1.0, 1.0, 1e-12, 50).unwrap_err();
        assert!(matches!(err, NumError::MaxIterations { .. } | NumError::NonFinite { .. }));
    }
}
