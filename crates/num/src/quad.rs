//! Numerical quadrature.
//!
//! The continuum variable-load model (paper §3.2) evaluates
//! `V(C) = ∫ P(k)·(admitted share utility) dk` over `[0, ∞)` for load
//! densities with exponential or power-law tails. Three routines cover the
//! cases that arise:
//!
//! * [`integrate`] — adaptive Simpson on a finite interval with smooth
//!   integrands (the bounded part of every continuum integral);
//! * [`tanh_sinh`] — double-exponential quadrature on a finite interval,
//!   robust to integrable endpoint singularities (the `v^{z−3}` factors that
//!   appear when power-law tails are mapped to `[0, 1]`);
//! * [`integrate_to_inf`] — semi-infinite integrals via the substitution
//!   `x = a + t/(1−t)`, delegating to [`tanh_sinh`] so that slowly decaying
//!   tails (which become endpoint singularities after the substitution) are
//!   still handled accurately.

use crate::error::{NumError, NumResult};

/// Adaptive Simpson quadrature of `f` on `[a, b]` to absolute tolerance
/// `tol`.
///
/// Classic recursive bisection with the Richardson error estimate
/// `|S_left + S_right − S_whole| / 15`. Suitable for smooth integrands; for
/// endpoint singularities use [`tanh_sinh`].
///
/// # Errors
///
/// [`NumError::NonFinite`] if the integrand returns NaN/∞ at an evaluation
/// point, [`NumError::MaxIterations`] if the recursion depth limit (60) is
/// hit, which indicates a non-integrable feature.
pub fn integrate(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> NumResult<f64> {
    if a == b {
        return Ok(0.0);
    }
    if !(tol > 0.0) {
        return Err(NumError::InvalidInput { what: "integrate requires tol > 0" });
    }
    // Fault-injection site: a `numerr:num/quad/integrate` rule forces the
    // non-convergence path callers must degrade through.
    if bevra_faults::forced_numerr("num/quad/integrate", a.to_bits() ^ b.to_bits()) {
        return Err(NumError::MaxIterations { what: "adaptive simpson (fault-injected)", iterations: 0 });
    }
    let fa = eval(&mut f, a)?;
    let fb = eval(&mut f, b)?;
    let m = 0.5 * (a + b);
    let fm = eval(&mut f, m)?;
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&mut f, a, b, fa, fm, fb, whole, tol, 60)
}

fn eval(f: &mut impl FnMut(f64) -> f64, x: f64) -> NumResult<f64> {
    let v = f(x);
    if v.is_finite() {
        Ok(v)
    } else {
        Err(NumError::NonFinite { what: "integrand", at: x })
    }
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive(
    f: &mut impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> NumResult<f64> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = eval(f, lm)?;
    let frm = eval(f, rm)?;
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        // Richardson extrapolation: the composite estimate plus the
        // extrapolated error term gives an O(h^6) result.
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(NumError::MaxIterations { what: "adaptive simpson", iterations: 60 });
    }
    let l = adaptive(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let r = adaptive(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(l + r)
}

/// Tanh-sinh (double-exponential) quadrature of `f` on `(a, b)`.
///
/// The substitution `x = mid + half·tanh(π/2·sinh t)` clusters nodes
/// double-exponentially toward the endpoints, so integrable endpoint
/// singularities (e.g. `x^{−1/2}`) are integrated to near machine precision
/// without ever evaluating `f` exactly at the endpoints. Levels are doubled
/// until two successive refinements agree to `tol`.
///
/// `f` receives the plain abscissa; if your integrand is singular at an
/// endpoint and needs the endpoint distance at full precision (e.g.
/// `1/√(b−x)` where `b − x` underflows), use [`tanh_sinh_xc`].
///
/// # Errors
///
/// [`NumError::MaxIterations`] if 12 refinement levels do not reach `tol`,
/// [`NumError::NonFinite`] on NaN integrand values (infinities at interior
/// points are treated as errors; endpoint blowups are avoided by
/// construction).
pub fn tanh_sinh(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> NumResult<f64> {
    tanh_sinh_xc(|x, _| f(x), a, b, tol)
}

/// Tanh-sinh quadrature with endpoint-distance information, `f(x, xc)`.
///
/// `xc` is the signed distance to the *nearest* endpoint, computed without
/// cancellation: `xc = x − a > 0` when the node lies in the left half of the
/// interval and `xc = x − b < 0` in the right half. An integrand singular at
/// `b` should evaluate itself from `−xc` rather than recomputing `b − x`,
/// which loses all precision once the node is within machine epsilon of `b`.
/// This mirrors the design of Boost.Math's `tanh_sinh` integrator.
///
/// # Errors
///
/// As [`tanh_sinh`].
pub fn tanh_sinh_xc(
    mut f: impl FnMut(f64, f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
) -> NumResult<f64> {
    if a == b {
        return Ok(0.0);
    }
    if !(tol > 0.0) {
        return Err(NumError::InvalidInput { what: "tanh_sinh requires tol > 0" });
    }
    // Fault-injection site, mirroring `integrate`.
    if bevra_faults::forced_numerr("num/quad/tanh_sinh", a.to_bits() ^ b.to_bits()) {
        return Err(NumError::MaxIterations { what: "tanh_sinh (fault-injected)", iterations: 0 });
    }
    let half = 0.5 * (b - a);
    // Transformed integrand including the Jacobian. Node offsets from the
    // nearest endpoint use `1 ± tanh(u) = e^{±u}/cosh(u)`, which keeps full
    // relative precision however close the node is to the endpoint.
    let mut g = |t: f64| -> NumResult<f64> {
        let u = std::f64::consts::FRAC_PI_2 * t.sinh();
        // cosh(u) can overflow for |t| beyond ~3.5; the weight underflows to
        // zero there, so treat those nodes as negligible.
        let cosh_u = u.cosh();
        let w = std::f64::consts::FRAC_PI_2 * t.cosh() / (cosh_u * cosh_u);
        if !w.is_finite() || w == 0.0 {
            return Ok(0.0);
        }
        let (x, xc) = if u < 0.0 {
            // Distance from a: half·(1 + tanh u) = half·e^u / cosh u.
            let d = half * u.exp() / cosh_u;
            (a + d, d)
        } else {
            // Distance from b: half·(1 − tanh u) = half·e^{−u} / cosh u.
            let d = half * (-u).exp() / cosh_u;
            (b - d, -d)
        };
        if xc == 0.0 {
            // Offset underflowed entirely (|u| ≳ 700); weight is negligible.
            return Ok(0.0);
        }
        let v = f(x, xc);
        if v.is_finite() {
            Ok(half * w * v)
        } else {
            Err(NumError::NonFinite { what: "tanh_sinh integrand", at: x })
        }
    };
    // t beyond ±4 contributes below f64 resolution for any integrable f.
    const T_MAX: f64 = 4.0;
    let mut h = 1.0;
    let mut sum = g(0.0)?;
    // Level 0: nodes at multiples of h = 1.
    let mut k = 1;
    loop {
        let t = h * k as f64;
        if t > T_MAX {
            break;
        }
        sum += g(t)? + g(-t)?;
        k += 1;
    }
    let mut estimate = h * sum;
    const MAX_LEVEL: usize = 12;
    for _level in 1..=MAX_LEVEL {
        h *= 0.5;
        // Add the new midpoints (odd multiples of the new h).
        let mut new_sum = 0.0;
        let mut j = 1;
        loop {
            let t = h * j as f64;
            if t > T_MAX {
                break;
            }
            new_sum += g(t)? + g(-t)?;
            j += 2;
        }
        sum += new_sum;
        let new_estimate = h * sum;
        let err = (new_estimate - estimate).abs();
        estimate = new_estimate;
        if err <= tol * (1.0 + estimate.abs()) {
            return Ok(estimate);
        }
    }
    Err(NumError::MaxIterations { what: "tanh_sinh", iterations: MAX_LEVEL })
}

/// Integral of `f` over `[a, ∞)` to tolerance `tol`.
///
/// Uses the substitution `x = a + t/(1 − t)` mapping `[0, 1) → [a, ∞)` with
/// Jacobian `1/(1 − t)²`, then [`tanh_sinh`] on `[0, 1]`. A power-law tail
/// `f ~ x^{−s}` becomes `(1 − t)^{s−2}` near `t = 1`: integrable whenever the
/// original integral converges (`s > 1`), and handled by the
/// double-exponential node clustering even for `1 < s < 2` where it is a
/// genuine singularity.
///
/// # Errors
///
/// Propagates [`tanh_sinh`] failures; a divergent integral surfaces as
/// `MaxIterations` or `NonFinite`.
pub fn integrate_to_inf(mut f: impl FnMut(f64) -> f64, a: f64, tol: f64) -> NumResult<f64> {
    tanh_sinh_xc(
        |t, xc| {
            // Near t = 1 the distance 1 − t must come from the integrator's
            // cancellation-free offset, not from recomputing 1 − t.
            let om = if xc < 0.0 { -xc } else { 1.0 - t };
            let x = a + t / om;
            f(x) / (om * om)
        },
        0.0,
        1.0,
        tol,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_polynomial_is_nearly_exact() {
        let v = integrate(|x| 3.0 * x * x, 0.0, 2.0, 1e-12).unwrap();
        assert!((v - 8.0).abs() < 1e-10);
    }

    #[test]
    fn simpson_exponential() {
        let v = integrate(|x| (-x).exp(), 0.0, 10.0, 1e-12).unwrap();
        assert!((v - (1.0 - (-10.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn simpson_zero_width() {
        assert_eq!(integrate(|x| x, 3.0, 3.0, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn tanh_sinh_smooth() {
        let v = tanh_sinh(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn tanh_sinh_endpoint_singularity() {
        // ∫₀¹ x^{-1/2} dx = 2, singular at 0.
        let v = tanh_sinh(|x| 1.0 / x.sqrt(), 0.0, 1.0, 1e-12).unwrap();
        assert!((v - 2.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn tanh_sinh_both_endpoints_singular() {
        // ∫₀¹ 1/√(x(1-x)) dx = π. The 1−x factor must be computed from the
        // integrator's endpoint distance or the right-hand singular mass is
        // lost to rounding.
        let v = tanh_sinh_xc(
            |x, xc| {
                let (xa, xb) = if xc > 0.0 { (xc, 1.0 - x) } else { (x, -xc) };
                1.0 / (xa * xb).sqrt()
            },
            0.0,
            1.0,
            1e-12,
        )
        .unwrap();
        assert!((v - std::f64::consts::PI).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn tanh_sinh_xc_signs_match_halves() {
        // xc is positive in the left half, negative in the right half, and
        // consistent with x.
        let v = tanh_sinh_xc(
            |x, xc| {
                if xc > 0.0 {
                    assert!(x <= 1.5 + 1e-12, "left-half node x={x}");
                    assert!((x - 1.0 - xc).abs() <= 1e-12 * (1.0 + x.abs()));
                } else {
                    assert!(x >= 1.5 - 1e-12, "right-half node x={x}");
                    assert!((x - 2.0 - xc).abs() <= 1e-12 * (1.0 + x.abs()));
                }
                1.0
            },
            1.0,
            2.0,
            1e-12,
        )
        .unwrap();
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn semi_infinite_exponential_tail() {
        let v = integrate_to_inf(|x| (-x).exp(), 0.0, 1e-12).unwrap();
        assert!((v - 1.0).abs() < 1e-10, "got {v}");
    }

    #[test]
    fn semi_infinite_power_law_tail() {
        // ∫₁^∞ x^{-3} dx = 1/2.
        let v = integrate_to_inf(|x| x.powi(-3), 1.0, 1e-12).unwrap();
        assert!((v - 0.5).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn semi_infinite_slow_power_law() {
        // ∫₁^∞ x^{-1.5} dx = 2: exponent in (1, 2) ⇒ transformed endpoint
        // singularity, the case tanh-sinh exists for.
        let v = integrate_to_inf(|x| x.powf(-1.5), 1.0, 1e-11).unwrap();
        assert!((v - 2.0).abs() < 1e-7, "got {v}");
    }

    #[test]
    fn semi_infinite_paper_mean_integral() {
        // Mean of the continuum algebraic load: ∫₁^∞ k (z-1) k^{-z} dk
        // = (z-1)/(z-2); z = 3 gives 2.
        let z = 3.0;
        let v = integrate_to_inf(|k| k * (z - 1.0) * k.powf(-z), 1.0, 1e-11).unwrap();
        assert!((v - 2.0).abs() < 1e-8, "got {v}");
    }

    #[test]
    fn nonfinite_integrand_is_reported() {
        let err = integrate(|x| 1.0 / (x - 0.5), 0.0, 1.0, 1e-10);
        assert!(err.is_err());
    }
}
