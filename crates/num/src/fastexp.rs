//! Fast, vectorization-friendly evaluation of `1 − e^{−x}` for `x ≥ 0`.
//!
//! The blocking-probability kernels spend most of their time evaluating
//! utilities of the form `1 − e^{−x}` (exponential-elastic and adaptive
//! satisfaction curves). `libm`'s `exp_m1` is accurate to < 1 ULP but is a
//! scalar call with internal branching, so the loop over a load table cannot
//! auto-vectorize. This module provides [`one_minus_exp_neg`], a branch-free
//! polynomial evaluation with a bounded error (a few ULPs, see the tests)
//! whose slice form [`one_minus_exp_neg_slice`] compiles to packed SIMD.
//!
//! # Algorithm
//!
//! For `x ∈ [0, 38]` (beyond which `1 − e^{−x}` is 1 to machine precision):
//!
//! 1. Range-reduce: `n = round(x·log2 e)` so `x = n·ln 2 − u` with
//!    `|u| ≤ ln 2 / 2 + ε`. The rounding uses the magic-constant trick
//!    (`t + 2^52` leaves `n` in the low mantissa bits — see the
//!    `ROUND_MAGIC` constant) so no float→integer conversion is needed, and the
//!    reduction uses a two-term split of `ln 2` (`LN2_HI` exact in 42
//!    bits, `LN2_LO` the remainder) so `n·ln 2 − x` is computed without
//!    cancellation error.
//! 2. Evaluate `e^u − 1` by a degree-14 Taylor polynomial (truncation
//!    error < 1e-16 relative on the reduced range), organized in Estrin
//!    form so the dependency chain is ~4 fused levels instead of 13 —
//!    the kernels are latency-bound, and the short chain lets unrolled
//!    SIMD iterations overlap.
//! 3. Reconstruct: `1 − e^{−x} = (1 − 2^{−n}) − 2^{−n}·(e^u − 1)`, where
//!    both `2^{−n}` (an exponent-field store, with `n` read straight out of
//!    the magic sum's mantissa) and `1 − 2^{−n}` (Sterbenz for `n ≤ 53`)
//!    are exact. For `n = 0` this collapses to `−(e^u − 1)` with no
//!    cancellation.
//!
//! Every step is expressible with `f64` lane arithmetic plus lane-local
//! bit operations, all of which lower to baseline x86-64 / NEON packed
//! instructions, so the slice loop auto-vectorizes — and produces
//! identical bit patterns on every ISA (no FMA contraction is used; the
//! magic trick assumes the IEEE default round-to-nearest mode, which Rust
//! guarantees).
//!
//! The result is deterministic: the same input bits always produce the same
//! output bits, on every platform, scalar or vectorized.

/// High 42 bits of `ln 2`; `n · LN2_HI` is exact for `|n| < 2^20`.
const LN2_HI: f64 = f64::from_bits(0x3FE6_2E42_FEE0_0000);
/// Low-order remainder: `LN2_HI + LN2_LO` ≈ `ln 2` to ~107 bits.
const LN2_LO: f64 = f64::from_bits(0x3DEA_39EF_3579_3C76);
/// `log2 e`, used to pick the reduction integer `n`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// Inputs above this give `1 − e^{−x} = 1.0` exactly in `f64`.
const SATURATE: f64 = 38.0;
/// `2^52`: adding it to `t ∈ [0, 2^51)` rounds `t` to the nearest
/// integer (round-to-nearest-even, the IEEE default mode) in the
/// mantissa's low bits — the classic branch-and-conversion-free
/// float→integer rounding. Rust's saturating `as i32` cast compiles to a
/// scalar convert plus NaN/range fix-ups that block vectorization; this
/// trick stays in plain f64/bit lane arithmetic.
const ROUND_MAGIC: f64 = 4_503_599_627_370_496.0;

/// Taylor coefficients of the reduced polynomial
/// `p(u) = Σ_{j=0}^{13} u^j / (j+1)!`, so `e^u − 1 = u·p(u)`. Ascending
/// order (`INV_FACT[j] = 1/(j+1)!`) for the Estrin evaluation below.
const INV_FACT: [f64; 14] = [
    1.0,                     // 1/1!
    1.0 / 2.0,               // 1/2!
    1.0 / 6.0,               // 1/3!
    1.0 / 24.0,              // 1/4!
    1.0 / 120.0,             // 1/5!
    1.0 / 720.0,             // 1/6!
    1.0 / 5_040.0,           // 1/7!
    1.0 / 40_320.0,          // 1/8!
    1.0 / 362_880.0,         // 1/9!
    1.0 / 3_628_800.0,       // 1/10!
    1.0 / 39_916_800.0,      // 1/11!
    1.0 / 479_001_600.0,     // 1/12!
    1.0 / 6_227_020_800.0,   // 1/13!
    1.0 / 87_178_291_200.0,  // 1/14!
];

/// `1 − e^{−x}` for `x ≥ 0`, accurate to a few ULPs (see module docs).
///
/// Negative, NaN, or infinite inputs are not part of the contract the
/// welfare kernels need; they are clamped into `[0, 38]` (NaN maps to `0`,
/// like negative inputs), so the function is total and never produces a
/// non-finite output.
#[inline(always)]
#[must_use]
pub fn one_minus_exp_neg(x: f64) -> f64 {
    // Branch-free clamp into [0, SATURATE]. `min`/`max` lower to
    // minpd/maxpd; NaN propagates to the saturated branch (returns 1.0).
    let x = if x > 0.0 { x } else { 0.0 };
    let x = if x < SATURATE { x } else { SATURATE };

    // n = round(x·log2 e) with no float→integer conversion: adding
    // `ROUND_MAGIC` rounds `t ∈ [0, 55]` to the nearest integer in the
    // low mantissa bits, and subtracting it back recovers `n` as an exact
    // f64. Everything is add/sub/bitcast — packed lane instructions on
    // every ISA — whereas Rust's saturating `as i32` cast lowers to a
    // scalar convert plus NaN fix-ups that serializes the vector loop.
    let y = x * LOG2_E + ROUND_MAGIC;
    let nf = y - ROUND_MAGIC; // n as an exact small-integer f64, 0 ≤ n ≤ 55

    // u = n·ln2 − x, |u| ≤ ln2/2 + ε: split reduction avoids cancellation.
    let u = (nf * LN2_HI - x) + nf * LN2_LO;

    // e^u − 1 = u·p(u) with p evaluated by Estrin's scheme: pair the 14
    // ascending coefficients, then combine pairs with u², u⁴, u⁸. Same
    // operation count as Horner (±3 multiplies) but the dependency chain
    // shrinks from 13 mul+add pairs to ~4 levels, which is what the
    // out-of-order core needs to keep the SIMD pipes full — the welfare
    // kernels are latency-bound here, not throughput-bound.
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let q0 = INV_FACT[0] + INV_FACT[1] * u;
    let q1 = INV_FACT[2] + INV_FACT[3] * u;
    let q2 = INV_FACT[4] + INV_FACT[5] * u;
    let q3 = INV_FACT[6] + INV_FACT[7] * u;
    let q4 = INV_FACT[8] + INV_FACT[9] * u;
    let q5 = INV_FACT[10] + INV_FACT[11] * u;
    let q6 = INV_FACT[12] + INV_FACT[13] * u;
    let r0 = q0 + u2 * q1;
    let r1 = q2 + u2 * q3;
    let r2 = q4 + u2 * q5;
    let s0 = r0 + u4 * r1;
    let s1 = r2 + u4 * q6;
    let p = s0 + u8 * s1;
    let em = u * p;

    // 2^{−n} exactly, by storing the exponent field. `y = 2^52 + n`
    // exactly, so `n` sits in the low mantissa bits of `y` (n ≤ 55 < 2^8).
    // n ∈ [0, 55] keeps the biased exponent `1023 − n` in [968, 1023] —
    // always a normal number.
    let c = f64::from_bits((1023 - (y.to_bits() & 0xFF)) << 52);
    // 1 − 2^{−n} is exact (Sterbenz for n ≤ 1, exact representable anyway
    // for n ≤ 53; for n ∈ {54, 55} the rounding error is ≤ 2^{−54}, far
    // below the polynomial's own error).
    let s = 1.0 - c;

    s - c * em
}

/// A reduced-degree variant of [`one_minus_exp_neg`] for the k-span
/// kernel below: same range reduction and reconstruction, but the Taylor
/// polynomial keeps 12 coefficients instead of 14 (truncation ≈ 5e-16
/// relative on the reduced range — far below the fast kernels' 1e-13
/// budget but *not* bitwise equal to the 14-term evaluation) and the
/// low-side clamp is dropped because k-span callers guarantee `x ≥ 0`.
/// Private on purpose: every caller must go through the k-span API whose
/// tolerance class is declared.
#[inline(always)]
fn one_minus_exp_neg_pos12(x: f64) -> f64 {
    let x = if x < SATURATE { x } else { SATURATE };
    let y = x * LOG2_E + ROUND_MAGIC;
    let nf = y - ROUND_MAGIC;
    let u = (nf * LN2_HI - x) + nf * LN2_LO;
    let u2 = u * u;
    let u4 = u2 * u2;
    let u8 = u4 * u4;
    let q0 = INV_FACT[0] + INV_FACT[1] * u;
    let q1 = INV_FACT[2] + INV_FACT[3] * u;
    let q2 = INV_FACT[4] + INV_FACT[5] * u;
    let q3 = INV_FACT[6] + INV_FACT[7] * u;
    let q4 = INV_FACT[8] + INV_FACT[9] * u;
    let q5 = INV_FACT[10] + INV_FACT[11] * u;
    let r0 = q0 + u2 * q1;
    let r1 = q2 + u2 * q3;
    let r2 = q4 + u2 * q5;
    let s0 = r0 + u4 * r1;
    let p = s0 + u8 * r2;
    let em = u * p;
    let c = f64::from_bits((1023 - (y.to_bits() & 0xFF)) << 52);
    let s = 1.0 - c;
    s - c * em
}

// ---------------------------------------------------------------------
// Slice kernels.
//
// Each public slice function has one portable `#[inline(always)]` body.
// On x86-64 / aarch64 the same body is additionally compiled inside
// `#[target_feature]` wrappers (AVX2, AVX-512F, NEON) and selected at
// runtime via [`crate::simd::level`]: the baseline build only assumes
// SSE2 (2 lanes), while the wrappers let LLVM widen the identical loop
// to 4 or 8 lanes. The *per-element arithmetic is the same
// instruction-for-instruction semantics at every tier* — plain IEEE
// mul/add/div/min/max/convert, never FMA contraction — so all paths
// produce bitwise-identical results and the dispatch is purely a
// throughput decision (the welfare kernels spend most of their time
// here; see `bevra_core::discrete_batch`).

#[inline(always)]
fn plain_body(xs: &[f64], out: &mut [f64]) {
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = one_minus_exp_neg(x);
    }
}

#[inline(always)]
fn adaptive_body(bs: &[f64], kappa: f64, out: &mut [f64]) {
    for (o, &b) in out.iter_mut().zip(bs) {
        let b = if b > 0.0 { b } else { 0.0 };
        let x = b * b / (kappa + b);
        *o = one_minus_exp_neg(x);
    }
}

#[inline(always)]
fn scaled_body(bs: &[f64], rate: f64, out: &mut [f64]) {
    for (o, &b) in out.iter_mut().zip(bs) {
        let b = if b > 0.0 { b } else { 0.0 };
        *o = one_minus_exp_neg(rate * b);
    }
}

#[inline(always)]
fn adaptive_grid_body(cs: &[f64], kf: f64, kappa: f64, out: &mut [f64]) {
    // x = b²/(κ+b) with b = C/k, rewritten with both numerator and
    // denominator multiplied by k²:  x = C² / (κk² + Ck).  One division
    // per lane instead of the two a split "divide then exponent" pass
    // needs — packed division is the most expensive lane instruction in
    // the welfare kernels, so this halves their fixed cost. The rewritten
    // form rounds differently from the split form by a few ULPs (both
    // evaluate x with ~4 roundings), well inside the fast path's
    // tolerance budget; `kf·kf` is exact for the table lengths in use
    // (k < 2^26).
    let a = kappa * (kf * kf);
    for (o, &c) in out.iter_mut().zip(cs) {
        let x = (c * c) / (a + c * kf);
        // Lanes with C ≤ 0 must yield π = 0 (the select also discards
        // any Inf/NaN a nonpositive denominator could produce).
        let x = if c > 0.0 { x } else { 0.0 };
        *o = one_minus_exp_neg(x);
    }
}

/// Number of stride-interleaved Neumaier sub-accumulators every k-span
/// kernel uses, at **every** ISA tier. Fixing the count (rather than
/// matching the vector width) fixes the summation order, so the k-span
/// results are bitwise identical across scalar/AVX2/AVX-512/NEON — the
/// same contract the slice kernels keep.
pub const KSPAN_ACCS: usize = 8;

#[inline(always)]
fn adaptive_kspan_body(
    c: f64,
    kappa: f64,
    k0: f64,
    pmfs: &[f64],
    sums: &mut [f64; KSPAN_ACCS],
    comps: &mut [f64; KSPAN_ACCS],
) {
    // x = b²/(κ+b) for b = C/k, rewritten as C² / (k·(κk + C)): one packed
    // division per admission level, with the factored denominator saving a
    // multiply over the `κk² + Ck` expansion used by the capacity-grid
    // slice kernel (the two forms round differently by a few ULPs; both
    // are inside the declared k-span tolerance).
    let c2 = c * c;
    let mut base = k0;
    let chunks = pmfs.chunks_exact(KSPAN_ACCS);
    let rem = chunks.remainder();
    for chunk in chunks {
        for j in 0..KSPAN_ACCS {
            let kf = base + j as f64;
            let x = c2 / (kf * (kappa * kf + c));
            let pi = one_minus_exp_neg_pos12(x);
            let v = chunk[j] * kf * pi;
            let s = sums[j];
            let t = s + v;
            let corr = if s.abs() >= v.abs() { (s - t) + v } else { (v - t) + s };
            comps[j] += corr;
            sums[j] = t;
        }
        base += KSPAN_ACCS as f64;
    }
    for (j, &p) in rem.iter().enumerate() {
        let kf = base + j as f64;
        let x = c2 / (kf * (kappa * kf + c));
        let pi = one_minus_exp_neg_pos12(x);
        let v = p * kf * pi;
        let s = sums[j];
        let t = s + v;
        let corr = if s.abs() >= v.abs() { (s - t) + v } else { (v - t) + s };
        comps[j] += corr;
        sums[j] = t;
    }
}

macro_rules! isa_wrappers {
    ($modname:ident, $arch:literal, $feat:literal) => {
        #[cfg(target_arch = $arch)]
        mod $modname {
            //! Wider-lane instantiations of the portable bodies (see the
            //! section comment above: identical arithmetic, wider lanes).
            #[target_feature(enable = $feat)]
            pub unsafe fn plain(xs: &[f64], out: &mut [f64]) {
                super::plain_body(xs, out);
            }

            #[target_feature(enable = $feat)]
            pub unsafe fn adaptive(bs: &[f64], kappa: f64, out: &mut [f64]) {
                super::adaptive_body(bs, kappa, out);
            }

            #[target_feature(enable = $feat)]
            pub unsafe fn scaled(bs: &[f64], rate: f64, out: &mut [f64]) {
                super::scaled_body(bs, rate, out);
            }

            #[target_feature(enable = $feat)]
            pub unsafe fn adaptive_grid(cs: &[f64], kf: f64, kappa: f64, out: &mut [f64]) {
                super::adaptive_grid_body(cs, kf, kappa, out);
            }

            #[target_feature(enable = $feat)]
            pub unsafe fn adaptive_kspan(
                c: f64,
                kappa: f64,
                k0: f64,
                pmfs: &[f64],
                sums: &mut [f64; super::KSPAN_ACCS],
                comps: &mut [f64; super::KSPAN_ACCS],
            ) {
                super::adaptive_kspan_body(c, kappa, k0, pmfs, sums, comps);
            }
        }
    };
}

isa_wrappers!(avx2, "x86_64", "avx2");
isa_wrappers!(avx512, "x86_64", "avx512f");
isa_wrappers!(neon, "aarch64", "neon");

/// Dispatch a kernel invocation to the resolved SIMD tier: one arm per
/// `#[target_feature]` wrapper module, falling through to the portable
/// body. Every tier computes bit-identical results (see the slice-kernel
/// section comment), so this is purely a throughput decision.
macro_rules! dispatch_simd {
    ($func:ident ( $($arg:expr),* ), $portable:expr) => {
        match crate::simd::level() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `simd::level()` only reports tiers the running CPU
            // supports (detection-checked, and `force_level` asserts it).
            crate::simd::Level::Avx512 => unsafe { avx512::$func($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above — AVX2 support was verified at detection.
            crate::simd::Level::Avx2 => unsafe { avx2::$func($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            // SAFETY: as above — NEON support was verified at detection.
            crate::simd::Level::Neon => unsafe { neon::$func($($arg),*) },
            _ => $portable,
        }
    };
}

pub(crate) use dispatch_simd;

/// Evaluate [`one_minus_exp_neg`] over a slice.
///
/// `out[i] = 1 − e^{−xs[i]}`. The loop body is branch-free and
/// auto-vectorizes; results are bitwise identical to calling the scalar
/// function element-by-element (on every ISA — see the slice-kernel
/// section comment).
///
/// # Panics
///
/// Panics if `xs` and `out` have different lengths.
pub fn one_minus_exp_neg_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "input/output slices must match");
    dispatch_simd!(plain(xs, out), plain_body(xs, out));
}

/// The adaptive-utility satisfaction curve over a bandwidth slice:
/// `out[i] = 1 − e^{−b²/(κ+b)}` with `b = max(bs[i], 0)` (so `b = 0`
/// gives exactly 0, matching the scalar utility). Fusing the exponent
/// into the dispatched kernel keeps the whole evaluation on the widest
/// available vector path; bitwise identical to computing the exponent
/// scalar-side and calling [`one_minus_exp_neg`] per element.
///
/// # Panics
///
/// Panics if `bs` and `out` have different lengths.
pub fn one_minus_exp_neg_adaptive_slice(bs: &[f64], kappa: f64, out: &mut [f64]) {
    assert_eq!(bs.len(), out.len(), "input/output slices must match");
    dispatch_simd!(adaptive(bs, kappa, out), adaptive_body(bs, kappa, out));
}

/// The adaptive satisfaction curve evaluated directly on a **capacity
/// grid** at admission level `k`: `out[i] = 1 − e^{−x}` with
/// `x = C² / (κk² + Ck)` — algebraically equal to `b²/(κ+b)` for
/// `b = C/k`, but computed with a single packed division per lane where
/// the split "bandwidths then exponent" pass needs two (and nonpositive
/// capacities yield exactly 0). Deterministic, but *not* bitwise equal to
/// the split form: the rewritten exponent rounds differently by a few
/// ULPs, within the fast kernels' tolerance budget (see the property
/// test `adaptive_grid_matches_split_form_closely`). Callers needing the
/// bitwise-to-scalar composition must divide first and use
/// [`one_minus_exp_neg_adaptive_slice`].
///
/// # Panics
///
/// Panics if `cs` and `out` have different lengths.
pub fn one_minus_exp_neg_adaptive_grid(cs: &[f64], kf: f64, kappa: f64, out: &mut [f64]) {
    assert_eq!(cs.len(), out.len(), "input/output slices must match");
    dispatch_simd!(adaptive_grid(cs, kf, kappa, out), adaptive_grid_body(cs, kf, kappa, out));
}

/// The exponential-elastic curve over a bandwidth slice:
/// `out[i] = 1 − e^{−rate·b}` with `b = max(bs[i], 0)`. Same fusion and
/// bitwise contract as [`one_minus_exp_neg_adaptive_slice`].
///
/// # Panics
///
/// Panics if `bs` and `out` have different lengths.
pub fn one_minus_exp_neg_scaled_slice(bs: &[f64], rate: f64, out: &mut [f64]) {
    assert_eq!(bs.len(), out.len(), "input/output slices must match");
    dispatch_simd!(scaled(bs, rate, out), scaled_body(bs, rate, out));
}

/// Fused per-capacity k-span walk of the adaptive satisfaction series:
/// for one capacity `c > 0`, accumulate `pmfs[i] · k · π(c/k)` for
/// `k = k0, k0+1, …, k0+pmfs.len()−1` into [`KSPAN_ACCS`]
/// stride-interleaved Neumaier accumulator pairs, where
/// `π(b) = 1 − e^{−b²/(κ+b)}`.
///
/// This is the inner loop of the fused B+R grid pass
/// (`bevra_core::discrete_batch`): instead of the slice kernels' outer-k /
/// inner-capacity layout (one call pair per admission level), one call
/// walks a whole span of levels for one capacity, so the per-level call
/// and mask overhead vanishes and the loop runs at the full width of the
/// resolved SIMD tier.
///
/// Numerical contract: **deterministic and bitwise identical across ISA
/// tiers** (the sub-accumulator count is fixed, so the summation order
/// never depends on the vector width), but **not** bitwise equal to the
/// slice-kernel composition — the exponent uses the factored denominator
/// `k·(κk + c)` and a 12-coefficient reduced polynomial, both a few ULPs
/// off the 14-coefficient slice forms and far inside the fast kernels'
/// 1e-13 relative budget (see `adaptive_kspan_matches_slice_form_closely`).
///
/// Resume the walk by calling again with the next `k0` and the same
/// accumulators; read the running total with [`kspan_total`]. `k0` and
/// the implied `k` values must be exactly representable (`k < 2^53`;
/// callers use table indices `< 2^26`).
pub fn one_minus_exp_neg_adaptive_kspan(
    c: f64,
    kappa: f64,
    k0: f64,
    pmfs: &[f64],
    sums: &mut [f64; KSPAN_ACCS],
    comps: &mut [f64; KSPAN_ACCS],
) {
    dispatch_simd!(
        adaptive_kspan(c, kappa, k0, pmfs, sums, comps),
        adaptive_kspan_body(c, kappa, k0, pmfs, sums, comps)
    );
}

/// Collapse k-span accumulators into one compensated total, in the fixed
/// order `sums[0], comps[0], sums[1], comps[1], …` — part of the k-span
/// bitwise contract (any fixed order works; this one is it).
#[must_use]
pub fn kspan_total(sums: &[f64; KSPAN_ACCS], comps: &[f64; KSPAN_ACCS]) -> f64 {
    let mut acc = 0.0f64;
    let mut corr = 0.0f64;
    for j in 0..KSPAN_ACCS {
        for v in [sums[j], comps[j]] {
            let t = acc + v;
            corr += if acc.abs() >= v.abs() { (acc - t) + v } else { (v - t) + acc };
            acc = t;
        }
    }
    acc + corr
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ULP distance between two finite doubles of the same sign region.
    fn ulp_diff(a: f64, b: f64) -> u64 {
        let ia = a.to_bits() as i64;
        let ib = b.to_bits() as i64;
        ia.abs_diff(ib)
    }

    fn reference(x: f64) -> f64 {
        -(-x).exp_m1()
    }

    #[test]
    fn matches_libm_within_ulp_budget() {
        // Dense logarithmic sweep over the full useful range plus a linear
        // sweep over the kernel's hot range [0, 8].
        let mut worst = 0u64;
        let mut probe = |x: f64| {
            let got = one_minus_exp_neg(x);
            let want = reference(x);
            let d = ulp_diff(got, want);
            if d > worst {
                worst = d;
            }
            assert!(
                d <= 8,
                "1-e^-x at x={x:e}: got {got:e} want {want:e} ({d} ulps)"
            );
        };
        let mut x = 1e-12;
        while x < 40.0 {
            probe(x);
            x *= 1.000_37;
        }
        for i in 0..200_000 {
            probe(f64::from(i) * 4e-5);
        }
        // The budget above is the contract; typical worst case is ~2-3 ULPs.
        assert!(worst <= 8, "worst ULP error {worst}");
    }

    #[test]
    fn exact_at_zero_and_saturated() {
        assert_eq!(one_minus_exp_neg(0.0), 0.0);
        assert_eq!(one_minus_exp_neg(-3.5), 0.0); // clamped
        assert_eq!(one_minus_exp_neg(50.0), 1.0); // saturated
        assert_eq!(one_minus_exp_neg(f64::INFINITY), 1.0);
        assert_eq!(one_minus_exp_neg(f64::NAN), 0.0); // clamped like negatives
    }

    #[test]
    fn monotone_on_grid() {
        let mut prev = -1.0;
        for i in 0..100_000 {
            let v = one_minus_exp_neg(f64::from(i) * 2e-4);
            assert!(v >= prev - 1e-15, "non-monotone at i={i}");
            prev = v;
        }
    }

    #[test]
    fn slice_matches_scalar_bitwise() {
        let xs: Vec<f64> = (0..4096).map(|i| f64::from(i) * 7.3e-3).collect();
        let mut out = vec![0.0; xs.len()];
        one_minus_exp_neg_slice(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o.to_bits(), one_minus_exp_neg(x).to_bits());
        }
    }

    #[test]
    fn fused_slices_match_their_scalar_compositions_bitwise() {
        let bs: Vec<f64> = (-64..4096).map(|i| f64::from(i) * 3.7e-3).collect();
        let mut out = vec![0.0; bs.len()];
        let kappa = 0.62086;
        one_minus_exp_neg_adaptive_slice(&bs, kappa, &mut out);
        for (&b, &o) in bs.iter().zip(&out) {
            let b = if b > 0.0 { b } else { 0.0 };
            let want = one_minus_exp_neg(b * b / (kappa + b));
            assert_eq!(o.to_bits(), want.to_bits(), "adaptive at b={b}");
        }
        let rate = 1.7;
        one_minus_exp_neg_scaled_slice(&bs, rate, &mut out);
        for (&b, &o) in bs.iter().zip(&out) {
            let b = if b > 0.0 { b } else { 0.0 };
            let want = one_minus_exp_neg(rate * b);
            assert_eq!(o.to_bits(), want.to_bits(), "scaled at b={b}");
        }
    }

    #[test]
    fn adaptive_grid_matches_split_form_closely() {
        let kappa = 0.62086;
        let cs: Vec<f64> = (-8..2048).map(|i| f64::from(i) * 0.49).collect();
        let mut grid = vec![0.0; cs.len()];
        for k in [1u64, 2, 7, 64, 4093, 262143] {
            let kf = k as f64;
            one_minus_exp_neg_adaptive_grid(&cs, kf, kappa, &mut grid);
            for (&c, &g) in cs.iter().zip(&grid) {
                let b = if c > 0.0 { c / kf } else { 0.0 };
                let want = one_minus_exp_neg(b * b / (kappa + b));
                // Not bitwise (the exponent is rounded differently), but
                // the relative gap must stay far below the fast kernels'
                // 1e-13 budget.
                let diff = (g - want).abs();
                assert!(
                    diff <= 1e-14 * want.abs().max(1e-300) + 1e-305,
                    "C={c} k={k}: grid {g:e} vs split {want:e}"
                );
                if c <= 0.0 {
                    assert_eq!(g, 0.0, "C={c} must clamp to exactly 0");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "slices must match")]
    fn slice_length_mismatch_panics() {
        let xs = [0.0; 3];
        let mut out = [0.0; 2];
        one_minus_exp_neg_slice(&xs, &mut out);
    }

    #[test]
    fn reduced_polynomial_stays_within_kspan_budget() {
        // The 12-coefficient variant must track the 14-coefficient
        // evaluation to ~5e-16 relative on the full input range.
        let mut x = 1e-12;
        while x < 40.0 {
            let got = one_minus_exp_neg_pos12(x);
            let want = one_minus_exp_neg(x);
            assert!(
                (got - want).abs() <= 4.0 * f64::EPSILON * want.abs().max(1e-300),
                "pos12 at x={x:e}: got {got:e} want {want:e}"
            );
            x *= 1.000_91;
        }
        assert_eq!(one_minus_exp_neg_pos12(0.0), 0.0);
        assert_eq!(one_minus_exp_neg_pos12(50.0), 1.0);
    }

    #[test]
    fn adaptive_kspan_matches_slice_form_closely() {
        // Walk a span with unit weights k·p = term shape used by the B
        // series; compare against the scalar composition through the
        // standard (14-coefficient, unfactored-denominator) path.
        let kappa = 0.62086;
        let len = 4099usize; // off the accumulator stride on purpose
        let pmfs: Vec<f64> = (0..len).map(|i| 1.0 / (1.0 + i as f64).powi(3)).collect();
        for c in [0.25, 5.0, 97.3, 1000.0] {
            let mut sums = [0.0; KSPAN_ACCS];
            let mut comps = [0.0; KSPAN_ACCS];
            // Split the walk mid-span to exercise resumability.
            one_minus_exp_neg_adaptive_kspan(c, kappa, 1.0, &pmfs[..1000], &mut sums, &mut comps);
            one_minus_exp_neg_adaptive_kspan(
                c,
                kappa,
                1001.0,
                &pmfs[1000..],
                &mut sums,
                &mut comps,
            );
            let got = kspan_total(&sums, &comps);
            let mut want = 0.0f64;
            for (i, &p) in pmfs.iter().enumerate() {
                let kf = 1.0 + i as f64;
                let b = c / kf;
                want += p * kf * one_minus_exp_neg(b * b / (kappa + b));
            }
            let rel = (got - want).abs() / want.abs().max(1e-300);
            assert!(rel <= 1e-13, "c={c}: kspan {got:e} vs slice-form {want:e} (rel {rel:e})");
        }
    }

    #[test]
    fn kspan_total_is_ordered_and_compensated() {
        let mut sums = [0.0; KSPAN_ACCS];
        let mut comps = [0.0; KSPAN_ACCS];
        sums[0] = 1.0;
        sums[1] = 1e100;
        sums[2] = 1.0;
        sums[3] = -1e100;
        assert_eq!(kspan_total(&sums, &comps), 2.0);
        comps[4] = 3.5;
        assert_eq!(kspan_total(&sums, &comps), 5.5);
    }
}
