//! Error type shared by all numerical routines.

use std::fmt;

/// Result alias for numerical routines.
pub type NumResult<T> = Result<T, NumError>;

/// Failure modes of the numerical routines in this crate.
///
/// Every routine that can fail returns one of these instead of panicking;
/// callers in the analysis crates either propagate them or translate them
/// into domain-specific errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A bracketing step could not find an interval with a sign change
    /// (root finding) or an interior maximum (optimization).
    NoBracket {
        /// Human-readable description of what was being bracketed.
        what: &'static str,
    },
    /// An iterative method ran out of iterations before converging.
    MaxIterations {
        /// The routine that failed to converge.
        what: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// The caller passed an argument outside the routine's domain.
    InvalidInput {
        /// Explanation of the violated precondition.
        what: &'static str,
    },
    /// The integrand / objective produced a non-finite value.
    NonFinite {
        /// Where the non-finite value appeared.
        what: &'static str,
        /// The abscissa at which it appeared, if known.
        at: f64,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::NoBracket { what } => write!(f, "failed to bracket {what}"),
            NumError::MaxIterations { what, iterations } => {
                write!(f, "{what} did not converge within {iterations} iterations")
            }
            NumError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            NumError::NonFinite { what, at } => {
                write!(f, "non-finite value in {what} at x = {at}")
            }
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumError::NoBracket { what: "the root of f" };
        assert_eq!(e.to_string(), "failed to bracket the root of f");
        let e = NumError::MaxIterations { what: "brent", iterations: 7 };
        assert!(e.to_string().contains("7 iterations"));
        let e = NumError::InvalidInput { what: "tol must be positive" };
        assert!(e.to_string().contains("tol must be positive"));
        let e = NumError::NonFinite { what: "integrand", at: 2.5 };
        assert!(e.to_string().contains("2.5"));
    }
}
