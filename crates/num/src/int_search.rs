//! Search over integer domains.
//!
//! The discrete model's admission threshold is
//! `k_max(C) = argmax_{k ∈ ℕ} k·π(C/k)` — the argmax of a unimodal integer
//! sequence (paper §2). [`argmax_unimodal_u64`] finds it in `O(log²)`
//! evaluations via doubling plus ternary search. [`first_true_u64`] performs
//! monotone predicate bisection, used for distribution quantiles.

use crate::error::{NumError, NumResult};

/// Argmax of a unimodal sequence `f(k)` over `k ∈ [lo, ∞)`.
///
/// "Unimodal" means *strictly* increasing up to the maximum value, which may
/// then be held on a plateau, followed by a nonincreasing tail (which may
/// itself contain plateaus). The search doubles an upper probe until the
/// sequence is observed to decrease, then ternary-searches the bracket.
/// Ties are broken toward the **smallest** maximizer: for a peak plateau
/// the returned index is its left edge.
///
/// # Errors
///
/// [`NumError::NoBracket`] if the sequence is still increasing (or still
/// flat, never having decreased) at `max_k`.
pub fn argmax_unimodal_u64(
    mut f: impl FnMut(u64) -> f64,
    lo: u64,
    max_k: u64,
) -> NumResult<u64> {
    // Phase 1: find hi with f(hi) < f(hi/2-ish), i.e. past the peak.
    let mut prev_k = lo;
    let mut prev_v = f(lo);
    let mut step = 1u64;
    let mut bracket_lo = lo;
    let bracket_hi;
    loop {
        let k = prev_k.saturating_add(step).min(max_k);
        let v = f(k);
        if v < prev_v {
            bracket_hi = k;
            break;
        }
        if k >= max_k {
            return Err(NumError::NoBracket { what: "unimodal integer maximum before max_k" });
        }
        // Advance the lower bracket only on a *strict* increase: the
        // invariant is f(bracket_lo) < max(f over probes), which keeps the
        // smallest maximizer inside [bracket_lo, bracket_hi] even when the
        // doubling probes walk along a peak plateau (equal values must not
        // push the bracket past the plateau's left edge).
        if v > prev_v {
            bracket_lo = prev_k;
        }
        prev_k = k;
        prev_v = v;
        step = step.saturating_mul(2);
    }
    // Phase 2: ternary search on [bracket_lo, bracket_hi].
    let mut a = bracket_lo;
    let mut b = bracket_hi;
    while b - a > 2 {
        let m1 = a + (b - a) / 3;
        let m2 = b - (b - a) / 3;
        if f(m1) < f(m2) {
            a = m1 + 1;
        } else {
            // On f(m1) > f(m2) the peak is at or left of m2. On equality the
            // two probes lie on a plateau — at the peak (left edge ≤ m1) or
            // in the tail (peak < m1) — so the smallest maximizer is ≤ m2
            // either way and the right part can be discarded.
            b = m2;
        }
    }
    let mut best = a;
    let mut best_v = f(a);
    for k in (a + 1)..=b {
        let v = f(k);
        if v > best_v {
            best = k;
            best_v = v;
        }
    }
    Ok(best)
}

/// Smallest `k ∈ [lo, hi]` with `pred(k)` true, assuming `pred` is monotone
/// (false … false true … true). Returns `None` if `pred(hi)` is false.
pub fn first_true_u64(mut pred: impl FnMut(u64) -> bool, lo: u64, hi: u64) -> Option<u64> {
    if lo > hi || !pred(hi) {
        return None;
    }
    let (mut a, mut b) = (lo, hi);
    while a < b {
        let mid = a + (b - a) / 2;
        if pred(mid) {
            b = mid;
        } else {
            a = mid + 1;
        }
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_peak_of_discrete_parabola() {
        let f = |k: u64| -((k as f64 - 37.0).powi(2));
        assert_eq!(argmax_unimodal_u64(f, 0, 1_000_000).unwrap(), 37);
    }

    #[test]
    fn finds_kmax_of_rigid_total_utility() {
        // Rigid b̄ = 1, capacity C = 100: V(k) = k for k ≤ 100 else 0, so
        // k_max = 100. (Not unimodal in the strict sense at the cliff, but
        // the doubling phase still brackets it; verify the answer.)
        let c = 100.0;
        let f = |k: u64| {
            if k == 0 {
                return 0.0;
            }
            let b = c / k as f64;
            if b >= 1.0 {
                k as f64
            } else {
                0.0
            }
        };
        assert_eq!(argmax_unimodal_u64(f, 1, 1_000_000).unwrap(), 100);
    }

    #[test]
    fn peak_at_lower_bound() {
        let f = |k: u64| -(k as f64);
        assert_eq!(argmax_unimodal_u64(f, 5, 1_000_000).unwrap(), 5);
    }

    #[test]
    fn increasing_sequence_reports_no_bracket() {
        let err = argmax_unimodal_u64(|k| k as f64, 0, 1000).unwrap_err();
        assert!(matches!(err, NumError::NoBracket { .. }));
    }

    #[test]
    fn plateau_returns_a_maximizer() {
        let f = |k: u64| (k.min(10)) as f64; // rises to 10 then flat... not
                                             // decreasing, so cap applies.
        let err = argmax_unimodal_u64(f, 0, 100);
        // A flat tail never strictly decreases; the search correctly reports
        // that no decrease was observed rather than guessing.
        assert!(err.is_err());
    }

    #[test]
    fn first_true_basic() {
        assert_eq!(first_true_u64(|k| k >= 17, 0, 100), Some(17));
        assert_eq!(first_true_u64(|k| k >= 17, 0, 10), None);
        assert_eq!(first_true_u64(|_| true, 0, 10), Some(0));
    }

    #[test]
    fn first_true_single_point_domain() {
        assert_eq!(first_true_u64(|_| true, 5, 5), Some(5));
        assert_eq!(first_true_u64(|_| false, 5, 5), None);
    }
}
