//! Edge-case coverage for the numerical substrate: plateaued integer
//! argmax (ties toward smaller k), degenerate quadrature intervals, and
//! non-bracketing root-finder inputs (typed errors, never panics).

use bevra_num::{
    argmax_unimodal_u64, bisect, brent, expand_bracket_up, integrate, integrate_to_inf,
    tanh_sinh, NumError,
};

// ---------------------------------------------------------------- int_search

/// A peak plateau: rises to a flat top, then decreases. The reported argmax
/// must be the *smallest* k attaining the maximum.
#[test]
fn plateau_at_peak_ties_break_toward_smaller_k() {
    // f rises on [0, 10], is flat at 10 on [10, 20], then decreases.
    let f = |k: u64| {
        if k <= 10 {
            k as f64
        } else if k <= 20 {
            10.0
        } else {
            30.0 - k as f64
        }
    };
    assert_eq!(argmax_unimodal_u64(f, 0, 1_000_000).unwrap(), 10);
}

/// A two-point plateau straddling the peak of a discrete parabola.
#[test]
fn two_point_plateau_returns_left_maximizer() {
    // f(9) = f(10) = 100 is the shared maximum.
    let f = |k: u64| -((2 * k) as f64 - 19.0).abs() + 100.0;
    assert_eq!(argmax_unimodal_u64(f, 0, 1_000).unwrap(), 9);
}

/// Wide plateaus at several widths and offsets, swept to catch any
/// bracket-phase/ternary-phase interaction: the left edge must win.
#[test]
fn plateau_widths_and_offsets_always_return_left_edge() {
    for peak in [3u64, 17, 64, 1000] {
        for width in [1u64, 2, 5, 33] {
            let f = move |k: u64| {
                if k < peak {
                    k as f64
                } else if k < peak + width {
                    peak as f64
                } else {
                    peak as f64 - (k - peak - width + 1) as f64
                }
            };
            assert_eq!(
                argmax_unimodal_u64(f, 0, 1 << 40).unwrap(),
                peak,
                "peak={peak} width={width}"
            );
        }
    }
}

/// An everywhere-constant sequence never strictly decreases; the search
/// must report a typed bracketing failure rather than loop or guess.
#[test]
fn fully_flat_sequence_reports_no_bracket() {
    let err = argmax_unimodal_u64(|_| 1.0, 0, 10_000).unwrap_err();
    assert!(matches!(err, NumError::NoBracket { .. }));
}

// ---------------------------------------------------------------------- quad

/// Zero-width intervals integrate to exactly 0 for every rule, even when
/// the integrand is singular at the collapsed endpoint.
#[test]
fn zero_width_intervals_are_exactly_zero() {
    assert_eq!(integrate(|x| x.exp(), 2.0, 2.0, 1e-12).unwrap(), 0.0);
    assert_eq!(tanh_sinh(|x| 1.0 / x.sqrt(), 0.0, 0.0, 1e-12).unwrap(), 0.0);
    // The semi-infinite rule maps [a, ∞) to (0, 1]; its degenerate analogue
    // is an integrand that is zero everywhere.
    assert_eq!(integrate_to_inf(|_| 0.0, 5.0, 1e-12).unwrap(), 0.0);
}

/// A nonpositive tolerance is a typed precondition failure.
#[test]
fn quadrature_rejects_bad_tolerance() {
    assert!(matches!(
        integrate(|x| x, 0.0, 1.0, 0.0).unwrap_err(),
        NumError::InvalidInput { .. }
    ));
    assert!(matches!(
        tanh_sinh(|x| x, 0.0, 1.0, -1.0).unwrap_err(),
        NumError::InvalidInput { .. }
    ));
}

// --------------------------------------------------------------------- roots

/// f(a) and f(b) sharing a sign must yield `InvalidInput` from both
/// finders — never a panic, never a bogus root.
#[test]
fn same_sign_endpoints_are_typed_errors() {
    // Both endpoints positive.
    let err = bisect(|x| x * x + 1.0, -2.0, 2.0, 1e-10).unwrap_err();
    assert!(matches!(err, NumError::InvalidInput { .. }));
    let err = brent(|x| x * x + 1.0, -2.0, 2.0, 1e-10).unwrap_err();
    assert!(matches!(err, NumError::InvalidInput { .. }));
    // Both endpoints negative.
    let err = bisect(|x| -(x * x) - 0.5, -1.0, 1.0, 1e-10).unwrap_err();
    assert!(matches!(err, NumError::InvalidInput { .. }));
    let err = brent(|x| -(x * x) - 0.5, -1.0, 1.0, 1e-10).unwrap_err();
    assert!(matches!(err, NumError::InvalidInput { .. }));
}

/// A sign-preserving function defeats upward bracket expansion with a
/// typed `NoBracket`, not an infinite loop.
#[test]
fn bracket_expansion_with_no_sign_change_is_typed() {
    let err = expand_bracket_up(|x| 1.0 + x.abs(), 0.0, 0.5, 1e6).unwrap_err();
    assert!(matches!(err, NumError::NoBracket { .. }));
}

/// An exact root sitting on an endpoint short-circuits without iteration.
#[test]
fn endpoint_roots_returned_exactly() {
    assert_eq!(bisect(|x| x - 3.0, 3.0, 10.0, 1e-12).unwrap(), 3.0);
    assert_eq!(brent(|x| x - 10.0, 3.0, 10.0, 1e-12).unwrap(), 10.0);
}
