//! The property runner: seeded cases, greedy shrinking, replayable
//! failures.
//!
//! [`Checker::run`] executes a property over `N` generated cases. Each
//! case has its own seed, derived from the run's master seed with
//! [`rand::derive_seed`], so a failing case replays in isolation:
//! set `BEVRA_CHECK_REPLAY=<case seed>` (decimal or `0x…` hex, both
//! printed in the failure message) and rerun the same test.
//!
//! On failure, the runner shrinks greedily: it asks the strategy for
//! candidate simplifications (simplest first), moves to the first
//! candidate that still fails, and repeats until no candidate fails or
//! the step budget runs out. The final counterexample — together with
//! both seeds — is appended to `results/check-failures.jsonl` (see
//! [`crate::persist`]) and included in the panic message.
//!
//! Knobs, all environment-overridable for CI:
//!
//! | variable | effect |
//! |---|---|
//! | `BEVRA_CHECK_CASES` | cases per property (default 256) |
//! | `BEVRA_CHECK_SEED` | master seed (default: hash of the property name) |
//! | `BEVRA_CHECK_REPLAY` | run exactly one case by its derived seed |

use crate::persist::{self, FailureRecord};
use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Environment variable overriding the number of cases per property.
pub const CASES_ENV: &str = "BEVRA_CHECK_CASES";

/// Environment variable overriding the master seed of a run.
pub const SEED_ENV: &str = "BEVRA_CHECK_SEED";

/// Environment variable selecting a single case seed to replay.
pub const REPLAY_ENV: &str = "BEVRA_CHECK_REPLAY";

/// Cases per property when neither the builder nor [`CASES_ENV`] says
/// otherwise.
pub const DEFAULT_CASES: usize = 256;

/// Upper bound accepted from [`CASES_ENV`]; larger (or unparsable) values
/// fall back to [`DEFAULT_CASES`], per the workspace's shared
/// count-override policy ([`bevra_num::env::parse_bounded_count`]).
pub const MAX_CASES: usize = 1 << 20;

/// The ambient case count: [`CASES_ENV`] if it parses to an integer in
/// `1..=`[`MAX_CASES`], else [`DEFAULT_CASES`].
#[must_use]
pub fn default_cases() -> usize {
    bevra_num::env::env_count(CASES_ENV, MAX_CASES, DEFAULT_CASES)
}

/// Property helper: `Ok(())` if `cond` holds, else an error built from
/// `msg` (lazily, so the message formatting costs nothing on success).
///
/// # Errors
///
/// Returns `Err(msg())` when `cond` is false.
pub fn ensure(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

/// FNV-1a over the property name: a stable default master seed, so a
/// property's case sequence does not change when unrelated properties are
/// added or reordered.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parse a seed value in decimal or `0x…` hexadecimal.
fn parse_seed(raw: &str) -> Option<u64> {
    let t = raw.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// A configured property run: name, case count, master seed, shrink
/// budget.
#[derive(Debug, Clone)]
pub struct Checker {
    name: String,
    cases: usize,
    seed: u64,
    max_shrink_steps: usize,
}

impl Checker {
    /// A checker named `name`, with the ambient case count
    /// ([`default_cases`]) and a master seed from [`SEED_ENV`] or, by
    /// default, a hash of the name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let seed = std::env::var(SEED_ENV)
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or_else(|| fnv1a(name));
        Self { name: name.to_string(), cases: default_cases(), seed, max_shrink_steps: 400 }
    }

    /// Override the case count exactly.
    #[must_use]
    pub fn cases(mut self, n: usize) -> Self {
        self.cases = n.max(1);
        self
    }

    /// Divide the ambient case count by `divisor` (minimum 1 case) — for
    /// expensive properties that should still scale with
    /// `BEVRA_CHECK_CASES`.
    #[must_use]
    pub fn scale_cases(mut self, divisor: usize) -> Self {
        self.cases = (self.cases / divisor.max(1)).max(1);
        self
    }

    /// Override the master seed (wins over [`SEED_ENV`]).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap on property evaluations spent shrinking one failure
    /// (default 400).
    #[must_use]
    pub fn max_shrink_steps(mut self, n: usize) -> Self {
        self.max_shrink_steps = n;
        self
    }

    /// The master seed in effect.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.seed
    }

    /// Run the property over the configured number of cases.
    ///
    /// If [`REPLAY_ENV`] is set, exactly that case seed is executed
    /// instead (shrinking still applies on failure).
    ///
    /// # Panics
    ///
    /// Panics with the shrunk counterexample when the property is
    /// falsified.
    pub fn run<S, P>(&self, strategy: &S, property: P)
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        if let Some(case_seed) = std::env::var(REPLAY_ENV).ok().and_then(|v| parse_seed(&v)) {
            self.run_case(strategy, &property, case_seed, 0);
            return;
        }
        for index in 0..self.cases {
            let case_seed = rand::derive_seed(self.seed, index as u64);
            self.run_case(strategy, &property, case_seed, index);
        }
    }

    /// Run cases until `budget` elapses (at least one case), returning
    /// the number of cases executed. Used by the `check-sweep` fuzz
    /// driver; failures behave exactly as in [`Self::run`].
    ///
    /// # Panics
    ///
    /// Panics with the shrunk counterexample when the property is
    /// falsified.
    pub fn run_timeboxed<S, P>(&self, strategy: &S, property: P, budget: Duration) -> usize
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        let start = Instant::now();
        let mut index = 0usize;
        loop {
            let case_seed = rand::derive_seed(self.seed, index as u64);
            self.run_case(strategy, &property, case_seed, index);
            index += 1;
            if start.elapsed() >= budget {
                return index;
            }
        }
    }

    /// Execute one case from its derived seed.
    fn run_case<S, P>(&self, strategy: &S, property: &P, case_seed: u64, case_index: usize)
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        if let Err(message) = property(&value) {
            self.report_failure(strategy, property, value, message, case_seed, case_index);
        }
    }

    /// Shrink greedily, persist the record, and panic with the result.
    fn report_failure<S, P>(
        &self,
        strategy: &S,
        property: &P,
        original: S::Value,
        message: String,
        case_seed: u64,
        case_index: usize,
    ) -> !
    where
        S: Strategy,
        P: Fn(&S::Value) -> Result<(), String>,
    {
        let mut current = original.clone();
        let mut current_msg = message;
        let mut evals = 0usize;
        let mut accepted = 0usize;
        'outer: loop {
            for candidate in strategy.shrink(&current) {
                if evals >= self.max_shrink_steps {
                    break 'outer;
                }
                evals += 1;
                if let Err(msg) = property(&candidate) {
                    // Greedy: the first still-failing simplification
                    // becomes the new current value.
                    current = candidate;
                    current_msg = msg;
                    accepted += 1;
                    continue 'outer;
                }
            }
            break; // No candidate fails: local minimum reached.
        }
        let record = FailureRecord {
            property: self.name.clone(),
            master_seed: self.seed,
            case_index: case_index as u64,
            case_seed,
            shrink_steps: accepted as u64,
            original: format!("{original:?}"),
            shrunk: format!("{current:?}"),
            message: current_msg.clone(),
        };
        let persisted = persist::append_failure(&record).map_or_else(
            || "record could not be persisted".to_string(),
            |p| format!("record appended to {}", p.display()),
        );
        panic!(
            "property '{}' falsified (case {case_index}, case seed {case_seed} = {case_seed:#x})\n  \
             original: {original:?}\n  \
             shrunk ({accepted} accepted step(s), {evals} eval(s)): {current:?}\n  \
             error: {current_msg}\n  \
             replay: {REPLAY_ENV}={case_seed} reruns exactly this case\n  \
             {persisted}",
            self.name,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{int_range, uniform, vec_of};

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        let counted = std::cell::Cell::new(0usize);
        Checker::new("always-true").cases(64).run(&int_range(0, 100), |_| {
            counted.set(counted.get() + 1);
            Ok(())
        });
        seen += counted.get();
        assert_eq!(seen, 64);
    }

    #[test]
    fn cases_are_deterministic_under_fixed_seed() {
        let collect = |seed: u64| {
            let got = std::cell::RefCell::new(Vec::new());
            Checker::new("det").seed(seed).cases(16).run(&uniform(0.0, 1.0), |&x| {
                got.borrow_mut().push(x);
                Ok(())
            });
            got.into_inner()
        };
        assert_eq!(collect(9).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                   collect(9).iter().map(|x| x.to_bits()).collect::<Vec<_>>());
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn failure_shrinks_to_the_boundary() {
        // Property: x < 17. Minimal failing u64 is exactly 17; the greedy
        // shrinker must land on it from any failing start.
        let result = std::panic::catch_unwind(|| {
            Checker::new("ge-17")
                .cases(200)
                .seed(3)
                .run(&int_range(0, 10_000), |&x| ensure(x < 17, || format!("{x} >= 17")));
        });
        let msg = *result.expect_err("must falsify").downcast::<String>().unwrap();
        assert!(msg.contains("shrunk"), "{msg}");
        assert!(msg.contains(": 17\n"), "not minimal: {msg}");
    }

    #[test]
    fn vector_counterexamples_lose_irrelevant_elements() {
        // Property: no element exceeds 900. The shrunk witness must be a
        // single offending element at the boundary value 901.
        let result = std::panic::catch_unwind(|| {
            Checker::new("vec-bound").cases(300).seed(5).max_shrink_steps(2000).run(
                &vec_of(int_range(0, 1000), 1, 12),
                |v| ensure(v.iter().all(|&x| x <= 900), || "element > 900".to_string()),
            );
        });
        let msg = *result.expect_err("must falsify").downcast::<String>().unwrap();
        assert!(msg.contains("[901]"), "expected minimal witness [901]: {msg}");
    }

    #[test]
    fn timeboxed_runs_at_least_one_case() {
        let n = Checker::new("timebox").seed(1).run_timeboxed(
            &int_range(0, 10),
            |_| Ok(()),
            Duration::from_millis(1),
        );
        assert!(n >= 1);
    }

    #[test]
    fn ensure_formats_lazily() {
        assert_eq!(ensure(true, || unreachable!()), Ok(()));
        assert_eq!(ensure(false, || "boom".to_string()), Err("boom".to_string()));
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed(" 0xff "), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
