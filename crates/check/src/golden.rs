//! Golden-corpus CSV comparison with per-column ULP budgets.
//!
//! The report crate regenerates the paper's figure data as CSV; the
//! golden tests diff a freshly generated file against a committed golden
//! copy. Exact string equality is too brittle — the only legitimate
//! drift between environments is the last ULP of transcendental libm
//! calls (`exp`, `ln`), already observed for this repository's committed
//! `results/` (see `CHANGES.md`) — while a plain epsilon would hide real
//! regressions. So the diff is structural:
//!
//! * headers and non-numeric cells must match **exactly**;
//! * numeric cells must match within a **per-column ULP budget**
//!   (default 0: bitwise), reflecting how many transcendental calls feed
//!   each column.

use crate::diff::ulp_distance;

/// Compare a candidate CSV against a golden CSV.
///
/// `budgets` maps header names to ULP budgets; columns not listed get
/// `default_budget`. Cells that parse as `f64` on both sides are compared
/// by [`ulp_distance`]; all other cells (headers included) must be
/// byte-identical.
///
/// # Errors
///
/// Returns a message naming the first divergence: row and column, both
/// cell values, and — for numeric cells — the observed ULP distance
/// versus the column's budget.
pub fn compare_csv(
    golden: &str,
    candidate: &str,
    budgets: &[(&str, u64)],
    default_budget: u64,
) -> Result<(), String> {
    let g_lines: Vec<&str> = golden.lines().collect();
    let c_lines: Vec<&str> = candidate.lines().collect();
    if g_lines.len() != c_lines.len() {
        return Err(format!(
            "row count mismatch: golden has {} lines, candidate has {}",
            g_lines.len(),
            c_lines.len()
        ));
    }
    if g_lines.is_empty() {
        return Ok(());
    }
    let header: Vec<&str> = g_lines[0].split(',').collect();
    if g_lines[0] != c_lines[0] {
        return Err(format!(
            "header mismatch: golden {:?} vs candidate {:?}",
            g_lines[0], c_lines[0]
        ));
    }
    let budget_for = |col: usize| -> u64 {
        header
            .get(col)
            .and_then(|name| budgets.iter().find(|(n, _)| n == name))
            .map_or(default_budget, |(_, b)| *b)
    };
    for (row, (gl, cl)) in g_lines.iter().zip(&c_lines).enumerate().skip(1) {
        let g_cells: Vec<&str> = gl.split(',').collect();
        let c_cells: Vec<&str> = cl.split(',').collect();
        if g_cells.len() != c_cells.len() {
            return Err(format!(
                "row {row}: column count mismatch ({} vs {})",
                g_cells.len(),
                c_cells.len()
            ));
        }
        for (col, (gc, cc)) in g_cells.iter().zip(&c_cells).enumerate() {
            let name = header.get(col).copied().unwrap_or("?");
            match (gc.parse::<f64>(), cc.parse::<f64>()) {
                (Ok(gv), Ok(cv)) => {
                    let d = ulp_distance(gv, cv);
                    let budget = budget_for(col);
                    if d > budget {
                        return Err(format!(
                            "row {row}, column '{name}': {gc} vs {cc} differ by {d} ULPs \
                             (budget {budget})"
                        ));
                    }
                }
                _ => {
                    if gc != cc {
                        return Err(format!(
                            "row {row}, column '{name}': non-numeric cells differ: \
                             {gc:?} vs {cc:?}"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = "capacity,B,label\n1.0,0.5,adaptive\n2.0,0.75,adaptive\n";

    #[test]
    fn identical_files_pass_with_zero_budget() {
        assert_eq!(compare_csv(GOLDEN, GOLDEN, &[], 0), Ok(()));
    }

    #[test]
    fn one_ulp_drift_needs_a_budget() {
        let drifted = format!(
            "capacity,B,label\n1.0,{},adaptive\n2.0,0.75,adaptive\n",
            f64::from_bits(0.5f64.to_bits() + 1)
        );
        let err = compare_csv(GOLDEN, &drifted, &[], 0).unwrap_err();
        assert!(err.contains("column 'B'") && err.contains("1 ULPs"), "{err}");
        assert_eq!(compare_csv(GOLDEN, &drifted, &[("B", 1)], 0), Ok(()));
        // The budget is per-column: the same drift in 'capacity' still fails.
        let drifted_cap = GOLDEN.replace("2.0,", "2.0000000000000004,");
        assert!(compare_csv(GOLDEN, &drifted_cap, &[("B", 1)], 0).is_err());
    }

    #[test]
    fn text_cells_must_match_exactly() {
        let renamed = GOLDEN.replace("adaptive", "rigid");
        let err = compare_csv(GOLDEN, &renamed, &[("label", 99)], 99).unwrap_err();
        assert!(err.contains("non-numeric"), "{err}");
    }

    #[test]
    fn structural_mismatches_are_reported() {
        assert!(compare_csv(GOLDEN, "capacity,B,label\n", &[], 0)
            .unwrap_err()
            .contains("row count"));
        let wide = "capacity,B,label\n1.0,0.5,adaptive,extra\n2.0,0.75,adaptive\n";
        assert!(compare_csv(GOLDEN, wide, &[], 0).unwrap_err().contains("column count"));
        let header = GOLDEN.replace("capacity", "cap");
        assert!(compare_csv(GOLDEN, &header, &[], 0).unwrap_err().contains("header"));
    }
}
