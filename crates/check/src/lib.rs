//! Property-based testing and differential verification for the `bevra`
//! workspace.
//!
//! The workspace reproduces Breslau & Shenker's *"Best-Effort versus
//! Reservations"* (SIGCOMM 1998) along three largely independent
//! evaluation paths:
//!
//! 1. the **discrete analytics** (`bevra-core`'s [`DiscreteModel`] summed
//!    over tabulated load distributions),
//! 2. the **continuum model** (closed forms and adaptive quadrature), and
//! 3. the **Monte Carlo flow simulator** (`bevra-sim`).
//!
//! Having three routes to the same quantities is the repository's best
//! defence against quiet numerical regressions — *if* the routes are
//! actually compared. This crate supplies the machinery:
//!
//! * [`strategy`] — seeded random generators with **shrinking**: when a
//!   property fails, the framework walks candidate simplifications
//!   (numeric bisection toward anchor values such as `0`, `1`, or the
//!   paper's κ; dropping collection elements; tuple-wise minimization)
//!   and reports the simplest input that still fails;
//! * [`runner`] — the [`Checker`] driving `N` seeded cases per property
//!   (`BEVRA_CHECK_CASES` overrides the default 256), with every case
//!   seeded independently via [`rand::derive_seed`] so a failure is
//!   replayable in isolation (`BEVRA_CHECK_REPLAY=<case seed>`);
//! * [`persist`] — failure records appended as JSON lines to
//!   `results/check-failures.jsonl` so CI can upload them as artifacts;
//! * [`diff`] — the **tolerance ladder** used by the differential suite:
//!   exact-ULP equality for memoized-engine versus serial evaluation,
//!   absolute bounds for closed forms versus quadrature, an
//!   `O(1/k̄)` analytic bound for continuum versus discrete, and
//!   CLT-width confidence intervals for simulation versus analytics;
//! * [`scenario`] — the randomized scenario domain (load family ×
//!   utility family × capacity grid × admission policy) with a
//!   hand-written shrinker, plus [`check_scenario`], the differential
//!   oracle evaluated on every generated scenario;
//! * [`golden`] — CSV comparison with per-column ULP budgets for the
//!   golden-corpus snapshot tests over regenerated figure data.
//!
//! The `check-sweep` binary wraps the scenario oracle in a time-boxed
//! fuzz loop for CI and local soak testing.
//!
//! [`DiscreteModel`]: bevra_core::DiscreteModel
//! [`Checker`]: runner::Checker

pub mod chaos;
pub mod diff;
pub mod golden;
pub mod persist;
pub mod runner;
pub mod scenario;
pub mod strategy;

pub use chaos::{run_case as run_chaos_case, silence_injected_panics, ChaosStats};
pub use diff::{ulp_distance, Tolerance};
pub use golden::compare_csv;
pub use persist::FailureRecord;
pub use runner::{default_cases, ensure, Checker};
pub use scenario::{
    check_scenario, check_scenario_sim, LoadFamily, Scenario, ScenarioStrategy, UtilityFamily,
};
pub use strategy::{choice, int_range, just, uniform, vec_of, Strategy};
