//! Failure records, persisted as JSON lines.
//!
//! Every falsified property appends one line to
//! `results/check-failures.jsonl` (relative to the repository root;
//! `BEVRA_CHECK_DIR` overrides the directory). The record carries
//! everything needed to reproduce the failure without the original
//! process: the property name, the master and per-case seeds, and the
//! `Debug` renderings of the original and shrunk counterexamples. CI
//! uploads the file as an artifact when the verification job fails.
//!
//! The JSON is hand-rolled — the build environment has no serde — but the
//! emitted lines are plain, fully escaped JSON objects that any consumer
//! can parse.

use std::io::Write as _;
use std::path::PathBuf;

/// Environment variable overriding the directory failure records are
/// appended to (default: the repository's `results/`).
pub const DIR_ENV: &str = "BEVRA_CHECK_DIR";

/// File name of the failure journal inside the record directory.
pub const FAILURES_FILE: &str = "check-failures.jsonl";

/// One falsified property, with enough context to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// Name the property was registered under.
    pub property: String,
    /// The checker's master seed (the whole run derives from it).
    pub master_seed: u64,
    /// Index of the failing case within the run.
    pub case_index: u64,
    /// The derived per-case seed; `BEVRA_CHECK_REPLAY=<case_seed>`
    /// re-executes exactly this case.
    pub case_seed: u64,
    /// Number of accepted shrink steps between `original` and `shrunk`.
    pub shrink_steps: u64,
    /// `Debug` rendering of the originally generated counterexample.
    pub original: String,
    /// `Debug` rendering of the fully shrunk counterexample.
    pub shrunk: String,
    /// The property's error message for the shrunk counterexample.
    pub message: String,
}

impl FailureRecord {
    /// Serialize as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"property\":{},\"master_seed\":{},\"case_index\":{},\"case_seed\":{},\
             \"shrink_steps\":{},\"original\":{},\"shrunk\":{},\"message\":{}}}",
            json_string(&self.property),
            self.master_seed,
            self.case_index,
            self.case_seed,
            self.shrink_steps,
            json_string(&self.original),
            json_string(&self.shrunk),
            json_string(&self.message),
        )
    }
}

/// Escape `s` as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directory failure records land in: `BEVRA_CHECK_DIR` if set, else the
/// repository's `results/` (resolved from this crate's manifest, so the
/// destination does not depend on the test binary's working directory).
#[must_use]
pub fn failures_dir() -> PathBuf {
    std::env::var_os(DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"))
}

/// Full path of the failure journal.
#[must_use]
pub fn failures_path() -> PathBuf {
    failures_dir().join(FAILURES_FILE)
}

/// Append one record to the journal, creating directory and file as
/// needed. Returns the path on success; persistence is best-effort (a
/// read-only checkout must not turn a good failure report into an I/O
/// panic), so errors collapse to `None`.
pub fn append_failure(record: &FailureRecord) -> Option<PathBuf> {
    let dir = failures_dir();
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(FAILURES_FILE);
    let mut file =
        std::fs::OpenOptions::new().create(true).append(true).open(&path).ok()?;
    writeln!(file, "{}", record.to_json()).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_controls() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n\t\r"), "\"x\\n\\t\\r\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn record_serializes_as_one_json_line() {
        let rec = FailureRecord {
            property: "demo".into(),
            master_seed: 7,
            case_index: 3,
            case_seed: 0xDEAD,
            shrink_steps: 2,
            original: "Scenario { c: 97.3 }".into(),
            shrunk: "Scenario { c: 1.0 }".into(),
            message: "B(C) > 1".into(),
        };
        let json = rec.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"case_seed\":57005"));
        assert!(json.contains("\"property\":\"demo\""));
    }
}
